//! Umbrella crate for the PSP framework reproduction.
//!
//! `psp-suite` re-exports the workspace crates under one roof so the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`) have a single
//! dependency, and so downstream users can depend on one crate and pick the pieces
//! they need:
//!
//! * [`vehicle`] — E/E architectures, attack surfaces, reachability, standards
//!   graph, development life cycle;
//! * [`iso21434`] — the ISO/SAE-21434 TARA engine and its three attack-feasibility
//!   models;
//! * [`socialsim`] — the deterministic social-media corpus simulator;
//! * [`textmine`] — tokenisation, sentiment, TF-IDF, price mining, keyword
//!   learning;
//! * [`market`] — sales, market share, annual reports, pricing, break-even
//!   analysis;
//! * [`psp`] — the PSP dynamic TARA framework itself (SAI, weight generation,
//!   financial feasibility, dynamic TARA integration).
//!
//! # Quickstart
//!
//! ```
//! use psp_suite::psp::config::PspConfig;
//! use psp_suite::psp::keyword_db::KeywordDatabase;
//! use psp_suite::psp::workflow::PspWorkflow;
//! use psp_suite::socialsim::scenario;
//!
//! let corpus = scenario::excavator_europe(7);
//! let outcome = PspWorkflow::new(PspConfig::excavator_europe(), KeywordDatabase::excavator_seed())
//!     .run(&corpus);
//! assert_eq!(outcome.sai.top().unwrap().scenario, "dpf-tampering");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use iso21434;
pub use market;
pub use psp;
pub use socialsim;
pub use textmine;
pub use vehicle;
