//! The excavator financial case study (paper Figure 10, Figure 12, Equations 1-7).
//!
//! Mines the DPF-delete market from the European excavator scene, reproduces the
//! paper's MV / BEP / FC numbers and prints the break-even curve of Figure 11.
//!
//! ```text
//! cargo run --example excavator_financial
//! ```

use psp_suite::market::bep::BreakEvenAnalysis;
use psp_suite::market::datasets;
use psp_suite::psp::config::PspConfig;
use psp_suite::psp::financial::{FinancialAssessment, FinancialInputs};
use psp_suite::psp::keyword_db::KeywordDatabase;
use psp_suite::psp::sai::SaiList;
use psp_suite::socialsim::scenario;

fn main() {
    let corpus = scenario::excavator_europe(42);
    let config = PspConfig::excavator_europe();
    let db = KeywordDatabase::excavator_seed();
    let sai = SaiList::compute(&corpus, &db, &config);

    println!("SAI ranking for \"excavator, Europe\" (Figure 12):");
    for (scenario_name, score) in sai.scenario_ranking() {
        println!("  {scenario_name:<22} {score:>12.1}");
    }

    let assessment = FinancialAssessment::assess(
        "dpf-tampering",
        &sai,
        &datasets::excavator_sales_europe(),
        &datasets::annual_report(),
        &FinancialInputs::paper_excavator_example(),
    )
    .expect("calibrated example assesses");

    println!("\nFinancial model for DPF tampering (paper Section III):");
    println!(
        "  previous-year sales (VS)     = {}",
        assessment.vehicle_sales
    );
    println!(
        "  potential-attacker share PEA = {:.1}%",
        assessment.pea * 100.0
    );
    println!(
        "  potential attackers PAE      = {:.0}   (paper: {:.0})",
        assessment.pae,
        datasets::PAPER_PAE
    );
    println!(
        "  mined price PPIA             = {:.0} EUR (paper: {:.0} EUR)",
        assessment.ppia,
        datasets::PAPER_PPIA_EUR
    );
    println!(
        "  market value MV (Eq. 6)      = {:.0} EUR/yr (paper: {:.0})",
        assessment.market_value,
        datasets::PAPER_MV_EUR
    );
    println!(
        "  investment bound FC (Eq. 7)  = {:.0} EUR (paper: {:.0})",
        assessment.investment_bound,
        datasets::PAPER_FC_EUR
    );
    println!(
        "  forward fixed cost (Eq. 4)   = {:.0} EUR",
        assessment.forward_fixed_cost
    );
    println!(
        "  break-even volume (Eq. 3)    = {}",
        assessment
            .break_even_units
            .map_or("n/a".to_string(), |v| format!("{v:.0} units"))
    );
    println!("  profitable (blue zone)       = {}", assessment.profitable);
    println!("  financial feasibility rating = {}", assessment.rating);

    // Figure 11: the revenue / cost curves around the break-even point.
    println!("\nBreak-even curve (Figure 11):");
    let analysis = BreakEvenAnalysis::new(
        assessment.forward_fixed_cost,
        assessment.ppia,
        assessment.vcu,
        datasets::PAPER_COMPETITORS,
    );
    let max_units = assessment.pae * 2.0;
    println!(
        "  {:>8} {:>14} {:>14} {:>10}",
        "units", "revenue EUR", "cost EUR", "zone"
    );
    for point in analysis.curve(max_units, 9) {
        println!(
            "  {:>8.0} {:>14.0} {:>14.0} {:>10}",
            point.units,
            point.revenue,
            point.cost,
            if point.is_profitable() { "blue" } else { "red" }
        );
    }
    println!(
        "\nA secure anti-tampering DPF architecture should withstand an adversary \
         investment of up to {:.0} EUR.",
        assessment.investment_bound
    );
}
