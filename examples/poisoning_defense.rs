//! Poisoning defence: what happens to the PSP weights when an adversary floods the
//! social corpus with bot posts, and how the credibility filter recovers.
//!
//! The paper's future-work section plans "a filtering strategy for messages to
//! ensure we process only authentic posts and prevent attackers from poisoning the
//! data".  This example injects a bot campaign that pushes a *network*-flavoured
//! attack hashtag into the passenger-car scene, shows that an unfiltered PSP run is
//! misled, and that enabling the credibility filter restores the original table.
//!
//! ```text
//! cargo run --example poisoning_defense
//! ```

use psp_suite::psp::classify::AttackOrigin;
use psp_suite::psp::config::PspConfig;
use psp_suite::psp::keyword_db::{KeywordDatabase, KeywordProfile};
use psp_suite::psp::workflow::PspWorkflow;
use psp_suite::socialsim::poisoning::{filter_by_credibility, BotCampaign};
use psp_suite::socialsim::post::{Region, TargetApplication};
use psp_suite::socialsim::scenario;
use psp_suite::vehicle::attack_surface::AttackVector;

fn main() {
    // The attacker's goal: make remote attacks look dominant so the OEM spends its
    // budget on network hardening instead of the anti-tampering protections that
    // actually matter for the insider threat.
    let mut db = KeywordDatabase::passenger_car_seed();
    db.insert(KeywordProfile::manual(
        "otaunlock",
        "ecm-reprogramming",
        AttackVector::Network,
        AttackOrigin::Insider,
    ));

    let clean = scenario::passenger_car_europe(42);
    let mut poisoned = clean.clone();
    let injected = BotCampaign::new("otaunlock", 2_500, 2023)
        .targeting(Region::Europe, TargetApplication::PassengerCar)
        .inject(&mut poisoned, 7);
    println!("injected {injected} bot posts pushing #otaunlock");

    let config = PspConfig::passenger_car_europe();
    let baseline = PspWorkflow::new(config.clone(), db.clone()).run(&clean);
    let misled = PspWorkflow::new(config.clone(), db.clone()).run(&poisoned);
    let defended = PspWorkflow::new(config.with_poisoning_filter(0.25), db.clone()).run(&poisoned);

    for (label, outcome) in [
        ("clean corpus", &baseline),
        ("poisoned, no filter", &misled),
        ("poisoned, credibility filter", &defended),
    ] {
        let table = outcome
            .insider_table("ecm-reprogramming")
            .expect("scenario tuned");
        println!("\n[{label}]");
        println!("{table}");
    }

    // Show the filter quality numbers on the poisoned corpus.
    let (_, outcome) = filter_by_credibility(&poisoned, 0.25);
    println!(
        "credibility filter on the poisoned corpus: precision {:.2}, recall {:.2} \
         ({} removed, {} kept)",
        outcome.precision(),
        outcome.recall(),
        outcome.removed,
        outcome.kept
    );

    let misled_top = misled
        .insider_table("ecm-reprogramming")
        .expect("table")
        .ranking()[0];
    let defended_top = defended
        .insider_table("ecm-reprogramming")
        .expect("table")
        .ranking()[0];
    println!("\ntop-ranked vector: poisoned run = {misled_top}, defended run = {defended_top}");
}
