//! Quickstart: run the PSP workflow end to end on the excavator scene and print
//! the Social Attraction Index ranking plus the tuned weight tables.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use psp_suite::psp::config::PspConfig;
use psp_suite::psp::keyword_db::KeywordDatabase;
use psp_suite::psp::workflow::PspWorkflow;
use psp_suite::socialsim::scenario;

fn main() {
    // 1. Build (or load) the social corpus.  In the paper this is a Twitter query;
    //    here it is the deterministic excavator/Europe scene.
    let corpus = scenario::excavator_europe(42);
    println!("corpus: {} posts", corpus.len());

    // 2. Configure the PSP run: target application, region, scoring weights.
    let config = PspConfig::excavator_europe();
    let database = KeywordDatabase::excavator_seed();

    // 3. Run the workflow (Figure 7 of the paper, blocks 1-12).
    let outcome = PspWorkflow::new(config, database).run(&corpus);

    // 4. Inspect the SAI ranking (Figure 12).
    println!("\nSocial Attraction Index (top 5 keywords):");
    for entry in outcome.sai.entries().iter().take(5) {
        println!(
            "  {:<20} scenario={:<18} posts={:<5} SAI={:>12.1} p={:>5.1}%",
            entry.keyword,
            entry.scenario,
            entry.posts,
            entry.sai,
            entry.probability * 100.0
        );
    }

    println!("\nScenario ranking:");
    for (scenario, sai) in outcome.sai.scenario_ranking() {
        println!("  {scenario:<20} {sai:>12.1}");
    }

    // 5. Inspect the generated insider weight tables (Figure 8-B).
    println!("\nPSP insider weight tables:");
    for scenario in outcome.insider_scenarios() {
        let table = outcome.insider_table(scenario).expect("table exists");
        println!("--- {scenario}\n{table}");
    }
}
