//! Continuous monitoring: the "runtime model environment" the paper's conclusion
//! aims for, plus closing the loop with a control plan sized to the financial
//! investment bound.
//!
//! Runs the PSP analysis over sliding yearly windows (2015-2023), prints the
//! dominant attack vector per window, reports the year the trend inversion is
//! detected, and finally selects anti-tampering controls whose combined resistance
//! exceeds the adversary investment bound computed by the financial model.
//!
//! ```text
//! cargo run --example continuous_monitoring
//! ```

use psp_suite::iso21434::controls::{anti_tampering_catalogue, ControlPlan};
use psp_suite::market::datasets;
use psp_suite::psp::config::PspConfig;
use psp_suite::psp::financial::{FinancialAssessment, FinancialInputs};
use psp_suite::psp::keyword_db::KeywordDatabase;
use psp_suite::psp::monitoring::MonitoringSeries;
use psp_suite::psp::sai::SaiList;
use psp_suite::socialsim::scenario;
use psp_suite::vehicle::attack_surface::AttackVector;

fn main() {
    // Part 1: sliding-window monitoring of the ECM-reprogramming scene.
    let corpus = scenario::passenger_car_europe(42);
    let series = MonitoringSeries::run(
        &corpus,
        &KeywordDatabase::passenger_car_seed(),
        &PspConfig::passenger_car_europe(),
        "ecm-reprogramming",
        2015,
        2023,
        2,
    );

    println!("ECM reprogramming, 2-year sliding windows:");
    for observation in &series.observations {
        let dominant = observation
            .dominant
            .map_or("no evidence".to_string(), |v| v.to_string());
        let shares: Vec<String> = observation
            .vector_shares
            .iter()
            .filter(|(_, s)| *s > 0.0)
            .map(|(v, s)| format!("{v} {:.0}%", s * 100.0))
            .collect();
        println!(
            "  {}-{}  posts={:<5} dominant={:<10} [{}]",
            observation.from_year,
            observation.to_year,
            observation.posts,
            dominant,
            shares.join(", ")
        );
    }
    match series.inversion_year() {
        Some(year) => println!("trend inversion first visible in the window starting {year}"),
        None => println!("no trend inversion detected"),
    }

    // Part 2: size a control plan against the financial investment bound of the
    // excavator DPF case study.
    let excavator = scenario::excavator_europe(42);
    let sai = SaiList::compute(
        &excavator,
        &KeywordDatabase::excavator_seed(),
        &PspConfig::excavator_europe(),
    );
    let assessment = FinancialAssessment::assess(
        "dpf-tampering",
        &sai,
        &datasets::excavator_sales_europe(),
        &datasets::annual_report(),
        &FinancialInputs::paper_excavator_example(),
    )
    .expect("calibrated example assesses");

    println!(
        "\nDPF tampering investment bound (Eq. 7): {:.0} EUR — the protections must withstand at least this.",
        assessment.investment_bound
    );
    match ControlPlan::select_for(
        &anti_tampering_catalogue(),
        AttackVector::Local,
        assessment.investment_bound,
    ) {
        Some(plan) => {
            println!("selected controls (local / OBD attack route):");
            for control in plan.controls() {
                println!("  - {control}");
            }
            println!(
                "combined resistance {:.0} EUR at an implementation cost of {:.0} EUR",
                plan.resistance_for(AttackVector::Local),
                plan.total_cost()
            );
            println!(
                "residual feasibility for a Local attack initially rated High: {}",
                plan.residual_feasibility(
                    AttackVector::Local,
                    psp_suite::iso21434::feasibility::AttackFeasibilityRating::High
                )
            );
        }
        None => println!("the reference catalogue cannot reach the required resistance"),
    }
}
