//! Continuous monitoring: the "runtime model environment" the paper's conclusion
//! aims for, run as a *live-ingest loop* — plus closing the loop with a control
//! plan sized to the financial investment bound.
//!
//! Instead of analysing a frozen corpus in hindsight, this example replays the
//! ECM-reprogramming scene as it would have arrived: posts stream in year by
//! year into one warm `LiveMonitor`, whose engine absorbs each batch in
//! amortised O(batch) (in-place index append, no signal-cache wipe) and
//! re-evaluates the sliding-window analysis after every ingest.  The trend
//! inversion of Figure 9 is reported the moment the evidence for it lands.
//! At the end, the warm series is checked bit-for-bit against a cold
//! full-rebuild run — the equivalence the property tests pin down.
//!
//! ```text
//! cargo run --example continuous_monitoring
//! ```

use psp_suite::iso21434::controls::{anti_tampering_catalogue, ControlPlan};
use psp_suite::market::datasets;
use psp_suite::psp::config::PspConfig;
use psp_suite::psp::engine::WindowAxis;
use psp_suite::psp::financial::{FinancialAssessment, FinancialInputs};
use psp_suite::psp::keyword_db::KeywordDatabase;
use psp_suite::psp::monitoring::{LiveMonitor, MonitoringSeries};
use psp_suite::psp::sai::SaiList;
use psp_suite::socialsim::corpus::Corpus;
use psp_suite::socialsim::post::Post;
use psp_suite::socialsim::scenario;
use psp_suite::socialsim::time::DateWindow;
use psp_suite::vehicle::attack_surface::AttackVector;
use std::collections::BTreeMap;

fn main() {
    // Part 1: live sliding-window monitoring of the ECM-reprogramming scene.
    // The generated scene is replayed as a stream: one ingest batch per year.
    let full = scenario::passenger_car_europe(42);
    let mut by_year: BTreeMap<i32, Vec<Post>> = BTreeMap::new();
    for post in full.posts() {
        by_year
            .entry(post.date().year())
            .or_default()
            .push(post.clone());
    }

    let db = KeywordDatabase::passenger_car_seed();
    let config = PspConfig::passenger_car_europe();
    let mut monitor = LiveMonitor::new(
        Corpus::new(),
        db.clone(),
        config.clone(),
        "ecm-reprogramming",
        2,
    );

    println!("ECM reprogramming, 2-year sliding windows, live ingestion:");
    let mut detected: Option<i32> = None;
    for (year, batch) in by_year {
        let receipt = monitor.ingest(batch);
        let series = monitor.series(2015, year);
        let latest = series
            .observations
            .last()
            .expect("at least one window per ingest year");
        let dominant = latest
            .dominant
            .map_or("no evidence".to_string(), |v| v.to_string());
        println!(
            "  [{year}] +{:<4} posts (total {:<5}, gen {:>2})  window {}-{}: posts={:<5} dominant={}",
            receipt.appended,
            monitor.post_count(),
            receipt.generation,
            latest.from_year,
            latest.to_year,
            latest.posts,
            dominant,
        );
        if detected.is_none() {
            if let Some(inversion) = series.inversion_year() {
                detected = Some(inversion);
                println!(
                    "  >> trend inversion (physical -> local) visible in the window starting \
                     {inversion}, flagged while ingesting {year}"
                );
            }
        }
    }
    match detected {
        Some(_) => {}
        None => println!("no trend inversion detected"),
    }

    // The warm, incrementally built series must be bit-identical to a cold
    // rebuild over the same grown corpus.
    let warm = monitor.series(2015, 2023);
    let cold = MonitoringSeries::run(
        monitor.engine().corpus(),
        &db,
        &config,
        "ecm-reprogramming",
        2015,
        2023,
        2,
    );
    assert_eq!(warm, cold, "live series diverged from a cold rebuild");
    println!(
        "warm live-ingest series == cold full-rebuild series over {} posts: bit-exact",
        monitor.post_count()
    );

    // The series rides the sweep plane (`sai_windows`): every window resolves
    // against prefix-summed columns instead of re-filtering the candidate
    // set.  Smoke-check that path against per-window batch scoring.
    let windows: Vec<DateWindow> = (2015..=2023)
        .map(|y| DateWindow::years(y, (y + 1).min(2023)))
        .collect();
    let axis = WindowAxis::each(&windows);
    let swept = monitor.engine().sai_windows(&db, &config, &axis);
    let per_window: Vec<PspConfig> = windows
        .iter()
        .map(|w| config.clone().with_window(*w))
        .collect();
    assert_eq!(
        swept,
        monitor.engine().sai_lists(&db, &per_window),
        "sweep plan diverged from per-window batch scoring"
    );
    println!(
        "sai_windows over {} windows == per-window sai_lists on the warm engine: bit-exact",
        axis.len()
    );

    // Part 2: size a control plan against the financial investment bound of the
    // excavator DPF case study.
    let excavator = scenario::excavator_europe(42);
    let sai = SaiList::compute(
        &excavator,
        &KeywordDatabase::excavator_seed(),
        &PspConfig::excavator_europe(),
    );
    let assessment = FinancialAssessment::assess(
        "dpf-tampering",
        &sai,
        &datasets::excavator_sales_europe(),
        &datasets::annual_report(),
        &FinancialInputs::paper_excavator_example(),
    )
    .expect("calibrated example assesses");

    println!(
        "\nDPF tampering investment bound (Eq. 7): {:.0} EUR — the protections must withstand at least this.",
        assessment.investment_bound
    );
    match ControlPlan::select_for(
        &anti_tampering_catalogue(),
        AttackVector::Local,
        assessment.investment_bound,
    ) {
        Some(plan) => {
            println!("selected controls (local / OBD attack route):");
            for control in plan.controls() {
                println!("  - {control}");
            }
            println!(
                "combined resistance {:.0} EUR at an implementation cost of {:.0} EUR",
                plan.resistance_for(AttackVector::Local),
                plan.total_cost()
            );
            println!(
                "residual feasibility for a Local attack initially rated High: {}",
                plan.residual_feasibility(
                    AttackVector::Local,
                    psp_suite::iso21434::feasibility::AttackFeasibilityRating::High
                )
            );
        }
        None => println!("the reference catalogue cannot reach the required resistance"),
    }
}
