//! Powertrain TARA, static vs dynamic: the paper's ECM-reprogramming case study.
//!
//! Runs the reference ECM TARA twice — once with the standard ISO/SAE-21434 G.9
//! attack-vector table and once with the PSP-tuned insider table derived from the
//! European passenger-car social corpus — and prints the per-threat deltas, both for
//! the full history (Figure 9-B) and for the 2021+ window (Figure 9-C).
//!
//! ```text
//! cargo run --example powertrain_tara
//! ```

use psp_suite::psp::config::PspConfig;
use psp_suite::psp::dynamic_tara::{ecm_reference_tara, DynamicTaraComparison};
use psp_suite::psp::keyword_db::KeywordDatabase;
use psp_suite::psp::workflow::PspWorkflow;
use psp_suite::socialsim::scenario;
use psp_suite::socialsim::time::DateWindow;
use psp_suite::vehicle::reachability::ReachabilityAnalysis;
use psp_suite::vehicle::reference::passenger_car;

fn main() {
    // The vehicle context: which attack ranges can even reach the ECM?
    let car = passenger_car();
    let reachability = ReachabilityAnalysis::analyze(&car);
    let ecm = reachability
        .classification_of("ECM")
        .expect("ECM in reference car");
    println!("ECM exposure in the reference passenger car:");
    for exposure in ecm.exposures() {
        println!(
            "  {:<20} vector={:<9} gateway hops={} direct={}",
            exposure.range.to_string(),
            exposure.vector.to_string(),
            exposure.gateway_hops,
            exposure.direct
        );
    }

    let corpus = scenario::passenger_car_europe(42);
    let tara = ecm_reference_tara("ECM (passenger car, EU)");

    for (label, window) in [
        ("full history (Figure 9-B)", None),
        (
            "2021 onwards (Figure 9-C)",
            Some(DateWindow::years(2021, 2023)),
        ),
    ] {
        let mut config = PspConfig::passenger_car_europe();
        if let Some(w) = window {
            config = config.with_window(w);
        }
        let outcome = PspWorkflow::new(config, KeywordDatabase::passenger_car_seed()).run(&corpus);
        let comparison = DynamicTaraComparison::evaluate(&tara, &outcome, "ecm-reprogramming")
            .expect("reference TARA evaluates");

        println!("\n=== {label} ===");
        println!(
            "tuned table:\n{}",
            outcome
                .insider_table("ecm-reprogramming")
                .expect("scenario tuned")
        );
        println!("{}", comparison.static_report);
        println!("{}", comparison.dynamic_report);
        println!("deltas:");
        for delta in comparison.deltas.values() {
            println!(
                "  {:<38} feasibility {:>8} -> {:<8} risk {} -> {}",
                delta.threat_title,
                delta.static_feasibility.to_string(),
                delta.dynamic_feasibility.to_string(),
                delta.static_risk,
                delta.dynamic_risk
            );
        }
        println!(
            "threats re-rated: {} of {}",
            comparison.changed_count(),
            comparison.deltas.len()
        );
    }
}
