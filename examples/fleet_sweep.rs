//! Fleet sweep: how the PSP verdict changes across vehicle applications, market
//! structures and analysis windows.
//!
//! The paper motivates PSP with the diversity of the road-vehicle sector — the same
//! threat scenario has very different dynamics on a passenger car, a light truck
//! and an excavator.  This example sweeps the three reference architectures, runs
//! the reachability analysis, the PSP weight tuning and the financial model, and
//! prints one summary row per (application, window) combination.
//!
//! ```text
//! cargo run --example fleet_sweep
//! ```

use psp_suite::market::datasets;
use psp_suite::market::share::MarketStructure;
use psp_suite::psp::config::PspConfig;
use psp_suite::psp::engine::{ScoringEngine, ShardedEngine};
use psp_suite::psp::financial::{rate_financial_feasibility, FinancialAssessment, FinancialInputs};
use psp_suite::psp::keyword_db::KeywordDatabase;
use psp_suite::psp::sai::SaiList;
use psp_suite::psp::workflow::PspWorkflow;
use psp_suite::socialsim::index::ShardSpec;
use psp_suite::socialsim::scenario;
use psp_suite::socialsim::time::DateWindow;
use psp_suite::vehicle::attack_surface::AttackRange;
use psp_suite::vehicle::reachability::ReachabilityAnalysis;
use psp_suite::vehicle::reference::{excavator, light_truck, passenger_car};

fn main() {
    // Part 1: structural exposure of the three reference fleets (Figure 4 recap).
    println!("Structural exposure of the reference architectures:");
    for topology in [passenger_car(), light_truck(), excavator()] {
        let analysis = ReachabilityAnalysis::analyze(&topology);
        let grouped = analysis.grouped_by_dominant_range(1);
        let count = |range: AttackRange| grouped.get(&range).map_or(0, Vec::len);
        println!(
            "  {:<14} ECUs={:<3} long-range={:<3} short-range={:<3} physical-only={}",
            topology.name(),
            topology.ecu_count(),
            count(AttackRange::LongRange),
            count(AttackRange::ShortRange),
            count(AttackRange::Physical),
        );
    }

    // Part 2: PSP weight tuning per scene and window.
    println!("\nDominant insider vector for ECM reprogramming (passenger car):");
    let car_corpus = scenario::passenger_car_europe(42);
    for (label, window) in [
        ("all time", None),
        ("2021+", Some(DateWindow::years(2021, 2023))),
        ("2015-2019", Some(DateWindow::years(2015, 2019))),
    ] {
        let mut config = PspConfig::passenger_car_europe();
        if let Some(w) = window {
            config = config.with_window(w);
        }
        let outcome =
            PspWorkflow::new(config, KeywordDatabase::passenger_car_seed()).run(&car_corpus);
        let table = outcome
            .insider_table("ecm-reprogramming")
            .expect("scenario tuned");
        println!("  window {label:<10} -> ranking {:?}", table.ranking());
    }

    // Part 3: financial sweep over market structures for the excavator DPF attack.
    println!("\nFinancial sweep for excavator DPF tampering:");
    let corpus = scenario::excavator_europe(42);
    let sai = SaiList::compute(
        &corpus,
        &KeywordDatabase::excavator_seed(),
        &PspConfig::excavator_europe(),
    );
    println!(
        "  {:<28} {:>10} {:>14} {:>14} {:>10}",
        "market structure", "PAE", "MV EUR/yr", "FC bound EUR", "rating"
    );
    for (label, market) in [
        ("monopolistic (full fleet)", MarketStructure::Monopolistic),
        ("40% market share", MarketStructure::with_share(0.40)),
        ("15% market share", MarketStructure::with_share(0.15)),
        ("5% market share", MarketStructure::with_share(0.05)),
    ] {
        let mut inputs = FinancialInputs::paper_excavator_example();
        inputs.market = market;
        let assessment = FinancialAssessment::assess(
            "dpf-tampering",
            &sai,
            &datasets::excavator_sales_europe(),
            &datasets::annual_report(),
            &inputs,
        )
        .expect("sweep assesses");
        println!(
            "  {:<28} {:>10.0} {:>14.0} {:>14.0} {:>10}",
            label,
            assessment.pae,
            assessment.market_value,
            assessment.investment_bound,
            assessment.rating
        );
    }

    // Part 4: how the financial rating behaves as demand shrinks relative to the
    // break-even volume (the blue/red zones of Figure 11).
    println!("\nFinancial feasibility vs demand/break-even ratio:");
    for ratio in [3.0, 2.0, 1.2, 1.0, 0.7, 0.4, 0.1] {
        let rating = rate_financial_feasibility(ratio * 1_000.0, Some(1_000.0));
        println!("  demand = {ratio:>4.1} x BEP -> {rating}");
    }

    // Part 5: the sharded fleet engine — one engine core per time shard over
    // the merged multi-corpus fleet, swept across yearly analysis windows.
    // Each window only touches the shards it overlaps (the rest are pruned),
    // and the merged results are bit-identical to a single engine over the
    // whole fleet corpus.
    let mut fleet = scenario::passenger_car_europe(42);
    fleet.merge(scenario::excavator_europe(42));
    let sharded = ShardedEngine::new(fleet.clone(), ShardSpec::yearly());
    let layout: Vec<String> = sharded
        .shard_sizes()
        .iter()
        .map(|(key, posts)| format!("{key}:{posts}"))
        .collect();
    println!(
        "\nSharded fleet sweep over {} posts in {} yearly shards [{}]:",
        sharded.post_count(),
        sharded.shard_count(),
        layout.join(" ")
    );
    let windows: Vec<DateWindow> = (2018..=2023).map(|y| DateWindow::years(y, y)).collect();
    let base = PspConfig::passenger_car_europe();
    let car_db = KeywordDatabase::passenger_car_seed();
    // The batch sweep entry point: per-shard prefix-summed plans, one merge
    // per window.
    let per_window = sharded.sai_sweep(&car_db, &base, &windows);
    for (window, sai) in windows.iter().zip(&per_window) {
        let top = sai.top().map_or("no evidence".to_string(), |e| {
            format!("{} (SAI {:.0})", e.keyword, e.sai)
        });
        println!("  window {} -> top keyword {top}", window.from.year());
    }
    // The same sweep through one unsharded engine — and through the
    // per-window batch path — must agree to the bit.
    let single = ScoringEngine::new(&fleet);
    assert_eq!(
        per_window,
        single.sai_sweep(&car_db, &base, &windows),
        "sharded fleet sweep diverged from the single-engine sweep"
    );
    let configs: Vec<PspConfig> = windows
        .iter()
        .map(|w| base.clone().with_window(*w))
        .collect();
    assert_eq!(
        per_window,
        single.sai_lists(&car_db, &configs),
        "sweep plan diverged from per-window batch scoring"
    );
    println!(
        "  sharded sweep == single-engine sweep == per-window lists over {} windows: bit-exact",
        windows.len()
    );
}
