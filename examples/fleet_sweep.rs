//! Fleet sweep: how the PSP verdict changes across vehicle applications, market
//! structures and analysis windows.
//!
//! The paper motivates PSP with the diversity of the road-vehicle sector — the same
//! threat scenario has very different dynamics on a passenger car, a light truck
//! and an excavator.  This example sweeps the three reference architectures, runs
//! the reachability analysis, the PSP weight tuning and the financial model, and
//! prints one summary row per (application, window) combination.
//!
//! Parts 2–5 route their cross-products through the batch plane
//! ([`MatrixSpec`] / `sai_matrix`) and assert every cell bit-identical to the
//! hand-nested loops they replaced, so the example doubles as a CI smoke test
//! for the `SweepMatrix` scheduler.
//!
//! ```text
//! cargo run --example fleet_sweep
//! ```

use psp_suite::market::datasets;
use psp_suite::market::share::MarketStructure;
use psp_suite::psp::config::{PspConfig, SaiWeights};
use psp_suite::psp::engine::{MatrixSpec, SaiScorer, ScoringEngine, ShardedEngine, WindowAxis};
use psp_suite::psp::financial::{rate_financial_feasibility, FinancialAssessment, FinancialInputs};
use psp_suite::psp::keyword_db::KeywordDatabase;
use psp_suite::psp::learning::learn_keywords;
use psp_suite::psp::sai::SaiList;
use psp_suite::psp::weights::WeightGenerator;
use psp_suite::psp::workflow::PspWorkflow;
use psp_suite::socialsim::index::ShardSpec;
use psp_suite::socialsim::scenario;
use psp_suite::socialsim::time::DateWindow;
use psp_suite::vehicle::attack_surface::AttackRange;
use psp_suite::vehicle::reachability::ReachabilityAnalysis;
use psp_suite::vehicle::reference::{excavator, light_truck, passenger_car};

fn main() {
    // Part 1: structural exposure of the three reference fleets (Figure 4 recap).
    println!("Structural exposure of the reference architectures:");
    for topology in [passenger_car(), light_truck(), excavator()] {
        let analysis = ReachabilityAnalysis::analyze(&topology);
        let grouped = analysis.grouped_by_dominant_range(1);
        let count = |range: AttackRange| grouped.get(&range).map_or(0, Vec::len);
        println!(
            "  {:<14} ECUs={:<3} long-range={:<3} short-range={:<3} physical-only={}",
            topology.name(),
            topology.ecu_count(),
            count(AttackRange::LongRange),
            count(AttackRange::ShortRange),
            count(AttackRange::Physical),
        );
    }

    // Part 2: PSP weight tuning per scene and window — one matrix over the
    // window axis instead of one workflow run per window.  Keyword learning is
    // window-independent (it sees the full corpus), so it is hoisted out of
    // the loop and the learned database feeds every cell.
    println!("\nDominant insider vector for ECM reprogramming (passenger car):");
    let car_corpus = scenario::passenger_car_europe(42);
    let base = PspConfig::passenger_car_europe();
    let mut learned_db = KeywordDatabase::passenger_car_seed();
    if base.keyword_learning {
        learn_keywords(&mut learned_db, &car_corpus, base.learning_min_support);
    }
    let window_axis = [
        ("all time", None),
        ("2021+", Some(DateWindow::years(2021, 2023))),
        ("2015-2019", Some(DateWindow::years(2015, 2019))),
    ];
    let mut spec = MatrixSpec::new()
        .scenario("ecm", learned_db.clone())
        .config("base", base.clone());
    for (_, window) in &window_axis {
        spec = match window {
            Some(w) => spec.window(*w),
            None => spec.full_history(),
        };
    }
    let car_engine = ScoringEngine::new(&car_corpus);
    let cells = car_engine.sai_matrix(&spec);
    let generator = WeightGenerator::new();
    for (w, (label, window)) in window_axis.iter().enumerate() {
        let sai = cells.get(0, 0, w).expect("cell resolved");
        let table = generator.insider_table(sai, "ecm-reprogramming");
        // The old nested loop: one full workflow run per window.  The matrix
        // cell must reproduce it bit for bit.
        let mut config = base.clone();
        if let Some(w) = window {
            config = config.with_window(*w);
        }
        let outcome =
            PspWorkflow::new(config, KeywordDatabase::passenger_car_seed()).run(&car_corpus);
        assert_eq!(*sai, outcome.sai, "matrix cell diverged from the workflow");
        assert_eq!(
            Some(&table),
            outcome.insider_table("ecm-reprogramming"),
            "tuned table diverged from the workflow"
        );
        println!("  window {label:<10} -> ranking {:?}", table.ranking());
    }

    // Part 3: financial sweep over market structures for the excavator DPF attack.
    // The SAI evidence is one full-history matrix cell.
    println!("\nFinancial sweep for excavator DPF tampering:");
    let corpus = scenario::excavator_europe(42);
    let excavator_db = KeywordDatabase::excavator_seed();
    let excavator_config = PspConfig::excavator_europe();
    let excavator_cells = ScoringEngine::new(&corpus).sai_matrix(
        &MatrixSpec::new()
            .scenario("dpf", excavator_db.clone())
            .config("base", excavator_config.clone())
            .full_history(),
    );
    let sai = excavator_cells.get(0, 0, 0).expect("cell resolved");
    assert_eq!(
        *sai,
        SaiList::compute(&corpus, &excavator_db, &excavator_config),
        "matrix cell diverged from the direct computation"
    );
    println!(
        "  {:<28} {:>10} {:>14} {:>14} {:>10}",
        "market structure", "PAE", "MV EUR/yr", "FC bound EUR", "rating"
    );
    for (label, market) in [
        ("monopolistic (full fleet)", MarketStructure::Monopolistic),
        ("40% market share", MarketStructure::with_share(0.40)),
        ("15% market share", MarketStructure::with_share(0.15)),
        ("5% market share", MarketStructure::with_share(0.05)),
    ] {
        let mut inputs = FinancialInputs::paper_excavator_example();
        inputs.market = market;
        let assessment = FinancialAssessment::assess(
            "dpf-tampering",
            sai,
            &datasets::excavator_sales_europe(),
            &datasets::annual_report(),
            &inputs,
        )
        .expect("sweep assesses");
        println!(
            "  {:<28} {:>10.0} {:>14.0} {:>14.0} {:>10}",
            label,
            assessment.pae,
            assessment.market_value,
            assessment.investment_bound,
            assessment.rating
        );
    }

    // Part 4: how the financial rating behaves as demand shrinks relative to the
    // break-even volume (the blue/red zones of Figure 11).
    println!("\nFinancial feasibility vs demand/break-even ratio:");
    for ratio in [3.0, 2.0, 1.2, 1.0, 0.7, 0.4, 0.1] {
        let rating = rate_financial_feasibility(ratio * 1_000.0, Some(1_000.0));
        println!("  demand = {ratio:>4.1} x BEP -> {rating}");
    }

    // Part 5: the sharded fleet engine — one engine core per time shard over
    // the merged multi-corpus fleet, resolving a full (scenario × weights ×
    // windows) matrix in one request.  Each window only touches the shards it
    // overlaps (the rest are pruned), and every cell is bit-identical to a
    // single engine over the whole fleet corpus.
    let mut fleet = scenario::passenger_car_europe(42);
    fleet.merge(scenario::excavator_europe(42));
    let sharded = ShardedEngine::new(fleet.clone(), ShardSpec::yearly());
    let layout: Vec<String> = sharded
        .shard_sizes()
        .iter()
        .map(|(key, posts)| format!("{key}:{posts}"))
        .collect();
    println!(
        "\nSharded fleet matrix over {} posts in {} yearly shards [{}]:",
        sharded.post_count(),
        sharded.shard_count(),
        layout.join(" ")
    );
    let windows: Vec<DateWindow> = (2018..=2023).map(|y| DateWindow::years(y, y)).collect();
    let car_db = KeywordDatabase::passenger_car_seed();
    let fleet_dbs = [car_db.clone(), excavator_db.clone()];
    let fleet_configs = [
        PspConfig::passenger_car_europe(),
        PspConfig::passenger_car_europe().with_weights(SaiWeights::views_only()),
    ];
    // The batch plane entry point: 2 scenarios × 2 weight sets × 6 windows in
    // one request, per-shard prefix-summed plans, one plan per (db, scene).
    let fleet_spec = MatrixSpec::new()
        .scenario("passenger-car", fleet_dbs[0].clone())
        .scenario("excavator", fleet_dbs[1].clone())
        .config("balanced", fleet_configs[0].clone())
        .config("views-only", fleet_configs[1].clone())
        .windows(&windows);
    let fleet_cells = sharded.sai_matrix(&fleet_spec);
    println!(
        "  resolved {} cells (2 scenarios x 2 weight sets x {} windows)",
        fleet_cells.len(),
        windows.len()
    );
    for (window, w) in windows.iter().zip(0..) {
        let sai = fleet_cells.get(0, 0, w).expect("cell resolved");
        let top = sai.top().map_or("no evidence".to_string(), |e| {
            format!("{} (SAI {:.0})", e.keyword, e.sai)
        });
        println!("  window {} -> top keyword {top}", window.from.year());
    }
    // The old nested loops — the per-window sharded sweep, one single-engine
    // `sai_list` per cell, and the whole matrix on an unsharded engine — must
    // all agree with the matrix to the bit.
    let base = &fleet_configs[0];
    assert_eq!(
        (0..windows.len())
            .map(|w| fleet_cells.get(0, 0, w).expect("cell resolved").clone())
            .collect::<Vec<_>>(),
        sharded.sai_windows(&car_db, base, &WindowAxis::each(&windows)),
        "matrix row diverged from the sharded sweep"
    );
    let single = ScoringEngine::new(&fleet);
    for (id, sai) in fleet_cells.iter() {
        let config = fleet_configs[id.config]
            .clone()
            .with_window(windows[id.window]);
        assert_eq!(
            *sai,
            single.sai_list(&fleet_dbs[id.scenario], &config),
            "cell {id:?} diverged from the single-engine list"
        );
    }
    assert_eq!(
        fleet_cells,
        single.sai_matrix(&fleet_spec),
        "sharded matrix diverged from the single-engine matrix"
    );
    println!(
        "  sharded matrix == single-engine matrix == nested per-cell lists over {} cells: bit-exact",
        fleet_cells.len()
    );
}
