//! The TARA service daemon: the PSP scoring engines served as a long-running
//! process speaking line-JSON over stdin/stdout.
//!
//! Each input line is a `WireRequest` (`{"id":N,"request":{...}}`); each
//! produces exactly one `WireResponse` line, unparseable input included.
//! Requests run on the service's worker pool over snapshot-isolated engine
//! generations: scoring requests never block behind an ingest, and every
//! response stamps the generation it was computed at.
//!
//! ```text
//! cargo run --release --example tara_daemon            # serve stdin
//! cargo run --release --example tara_daemon -- --demo  # scripted transcript
//! echo '{"id":1,"request":"Status"}' | cargo run --release --example tara_daemon
//! ```
//!
//! The registry serves the two paper scenes: databases/configs are named
//! `excavator` and `passenger-car`.

use psp_suite::psp::config::PspConfig;
use psp_suite::psp::engine::{LiveEngine, WindowAxis};
use psp_suite::psp::keyword_db::KeywordDatabase;
use psp_suite::psp::service::wire::{decode_request, encode_response, error_line, WireResponse};
use psp_suite::psp::service::{ServiceRegistry, ServiceRequest, ServiceResponse, TaraService};
use psp_suite::socialsim::scenario;
use psp_suite::socialsim::time::DateWindow;
use std::collections::VecDeque;
use std::io::{BufRead, Write};

fn build_service() -> TaraService {
    let registry = ServiceRegistry::new()
        .database("excavator", KeywordDatabase::excavator_seed())
        .database("passenger-car", KeywordDatabase::passenger_car_seed())
        .config("excavator", PspConfig::excavator_europe())
        .config("passenger-car", PspConfig::passenger_car_europe());
    TaraService::new(LiveEngine::new(scenario::excavator_europe(7)), registry)
}

fn main() {
    if std::env::args().any(|arg| arg == "--demo") {
        demo();
    } else {
        serve();
    }
}

/// Serves stdin until EOF with bounded pipelining: up to one request per
/// worker rides the pool at a time, responses flush in input order so the
/// transcript stays deterministic for piped callers.
fn serve() {
    let service = build_service();
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut pending: VecDeque<(u64, psp_suite::psp::service::runtime::Ticket)> = VecDeque::new();

    eprintln!(
        "tara_daemon: serving line-JSON on stdin ({} workers); send {{\"id\":1,\"request\":\"Status\"}}",
        service.workers()
    );
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        match decode_request(&line) {
            Ok(wire) => pending.push_back((wire.id, service.submit(wire.request))),
            Err(error) => {
                // Unparseable line: answer immediately, in order, id 0.
                flush(&mut out, &mut pending, 0);
                writeln!(out, "{}", error_line(error)).expect("stdout writable");
            }
        }
        let workers = service.workers();
        flush(&mut out, &mut pending, workers);
    }
    flush(&mut out, &mut pending, 0);
}

/// Waits out queued tickets until at most `keep` remain, writing their
/// responses in submission order.
fn flush(
    out: &mut impl Write,
    pending: &mut VecDeque<(u64, psp_suite::psp::service::runtime::Ticket)>,
    keep: usize,
) {
    while pending.len() > keep {
        let (id, ticket) = pending.pop_front().expect("len checked");
        let line = encode_response(&WireResponse {
            id,
            response: ticket.wait(),
        });
        writeln!(out, "{line}").expect("stdout writable");
    }
}

/// A deterministic scripted transcript — what the daemon does, without
/// needing a driver on stdin.  Used as the CI smoke test.
fn demo() {
    let service = build_service();
    println!(
        "tara_daemon demo: excavator scene, {} workers",
        service.workers()
    );

    let script: Vec<(&str, ServiceRequest)> = vec![
        ("status", ServiceRequest::Status),
        (
            "score excavator",
            ServiceRequest::Score {
                db: "excavator".into(),
                config: "excavator".into(),
            },
        ),
        (
            "ingest next batch",
            ServiceRequest::Ingest {
                posts: scenario::excavator_europe(8).posts().to_vec(),
            },
        ),
        (
            "score excavator again",
            ServiceRequest::Score {
                db: "excavator".into(),
                config: "excavator".into(),
            },
        ),
        (
            "sweep three windows",
            ServiceRequest::Sweep {
                db: "excavator".into(),
                config: "excavator".into(),
                windows: WindowAxis::new()
                    .full_history()
                    .window(DateWindow::years(2019, 2021))
                    .window(DateWindow::years(2021, 2023)),
            },
        ),
        (
            "unknown database",
            ServiceRequest::Score {
                db: "tractor".into(),
                config: "excavator".into(),
            },
        ),
    ];
    for (label, request) in script {
        let response = service.handle(request);
        println!("  {label:<24} -> {}", describe(&response));
    }

    // The same requests ride the worker pool: submit a burst, then wait the
    // tickets in order.
    let tickets: Vec<_> = (0..4)
        .map(|_| service.submit(ServiceRequest::Status))
        .collect();
    for (n, ticket) in tickets.into_iter().enumerate() {
        println!("  pooled status #{n:<13} -> {}", describe(&ticket.wait()));
    }
    println!("demo complete");
}

/// One-line summary of a response for the demo transcript (full payloads are
/// wire-format concerns; the demo shows shapes and generations).
fn describe(response: &ServiceResponse) -> String {
    match response {
        ServiceResponse::Score { generation, sai } => {
            let top = sai.top().map_or("none".to_string(), |e| {
                format!("{} (SAI {:.0})", e.keyword, e.sai)
            });
            format!("gen {generation}: {} entries, top {top}", sai.len())
        }
        ServiceResponse::Sweep { generation, lists } => {
            format!("gen {generation}: {} windows scored", lists.len())
        }
        ServiceResponse::Matrix { generation, cells } => {
            format!("gen {generation}: {} cells", cells.len())
        }
        ServiceResponse::Ingested {
            appended,
            generation,
        } => format!("+{appended} posts -> gen {generation}"),
        ServiceResponse::Cache { generation, cache } => {
            format!(
                "gen {generation}: {} cached signal rows",
                cache.post_ids.len()
            )
        }
        ServiceResponse::Status {
            posts,
            generation,
            databases,
            configs,
            workers,
        } => format!(
            "gen {generation}: {posts} posts, {} dbs, {} configs, {workers} workers",
            databases.len(),
            configs.len()
        ),
        ServiceResponse::Error { error } => format!("error [{}] {}", error.kind, error.detail),
    }
}
