//! The TARA service daemon: the PSP scoring engines served as a long-running
//! process speaking line-JSON over stdin/stdout.
//!
//! Each input line is a `WireRequest` (`{"id":N,"request":{...}}`); each
//! produces exactly one `WireResponse` line, unparseable input included.
//! Requests run on the service's worker pool over snapshot-isolated engine
//! generations: scoring requests never block behind an ingest, and every
//! response stamps the generation it was computed at.
//!
//! ```text
//! cargo run --release --example tara_daemon            # serve stdin, in-memory
//! cargo run --release --example tara_daemon -- --demo  # scripted transcript
//! cargo run --release --example tara_daemon -- --data-dir /var/lib/tara
//! cargo run --release --example tara_daemon -- --data-dir /var/lib/tara --recover
//! cargo run --release --example tara_daemon -- --gen-batch 8   # print an ingest line
//! cargo run --release --example tara_daemon -- --listen 127.0.0.1:4714
//! cargo run --release --example tara_daemon -- --listen 127.0.0.1:0 --data-dir /var/lib/tara
//! echo '{"id":1,"request":"Status"}' | cargo run --release --example tara_daemon
//! ```
//!
//! `--listen ADDR` serves the same wire format over TCP (`psp::service::net`)
//! instead of stdin: concurrent connections with admission control,
//! per-connection deadlines, slow-consumer disconnection and a connection
//! cap.  The resolved address is printed to stderr (`listening on …`), so
//! drivers can pass port 0 and parse the port.  SIGTERM (or SIGINT) starts a
//! graceful drain: accepting stops, every admitted request is answered, and
//! a durable daemon writes a final checkpoint before exiting 0.  Both
//! transports bound input lines to `--max-line-bytes` (default 1 MiB),
//! answering a structured `line-too-long` error instead of buffering
//! unboundedly; the stdin transport drains the same way on EOF.
//!
//! With `--data-dir` the daemon is durable: ingests append to a checksummed
//! write-ahead journal before they publish, `Checkpoint` requests persist the
//! corpus atomically, and startup recovers the newest valid checkpoint plus
//! the journal tail — so a `kill -9` mid-ingest loses at most the batches
//! whose responses were never sent.  `--recover` makes startup *strict*: it
//! exits non-zero unless prior state was actually found (the CI recovery
//! smoke uses this to assert the restart really replayed).  `--gen-batch N`
//! prints the wire-format ingest line for deterministic batch `N`, so shell
//! drivers can feed the daemon without hand-writing JSON.
//!
//! The registry serves the two paper scenes: databases/configs are named
//! `excavator` and `passenger-car`.

use psp_suite::psp::config::PspConfig;
use psp_suite::psp::engine::{LiveEngine, WindowAxis};
use psp_suite::psp::error::PspError;
use psp_suite::psp::keyword_db::KeywordDatabase;
use psp_suite::psp::service::durability::{DurableStore, RecoveryReport};
use psp_suite::psp::service::journal::FaultFs;
use psp_suite::psp::service::net::{LineScanner, NetConfig, ScannedLine, SocketServer};
use psp_suite::psp::service::wire::{
    decode_request, encode_event, encode_request, encode_response, error_line, WireRequest,
    WireResponse,
};
use psp_suite::psp::service::{
    MonitorSpec, ServiceEvent, ServiceRegistry, ServiceRequest, ServiceResponse, TaraService,
};
use psp_suite::socialsim::scenario;
use psp_suite::socialsim::time::DateWindow;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn build_registry() -> ServiceRegistry {
    ServiceRegistry::new()
        .database("excavator", KeywordDatabase::excavator_seed())
        .database("passenger-car", KeywordDatabase::passenger_car_seed())
        .config("excavator", PspConfig::excavator_europe())
        .config("passenger-car", PspConfig::passenger_car_europe())
}

fn build_service() -> TaraService {
    TaraService::new(
        LiveEngine::new(scenario::excavator_europe(7)),
        build_registry(),
    )
}

/// Recovers (or seeds) a durable service from `dir`: newest valid checkpoint,
/// journal tail replayed, signal cache warmed when the checkpoint carried one.
fn build_durable_service(dir: &Path) -> Result<(TaraService, RecoveryReport), String> {
    let (store, engine, report) = DurableStore::recover(
        dir,
        FaultFs::none(),
        || LiveEngine::new(scenario::excavator_europe(7)),
        |corpus, signals| {
            let engine = LiveEngine::new(corpus);
            if let Some(cache) = signals {
                // The cache is an optimisation: a stale or mismatched one is
                // ignored, signals just recompute lazily.
                let _ = engine.load_signal_cache(&cache);
            }
            engine
        },
    )
    .map_err(|error| error.to_string())?;
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let service = TaraService::with_durability(engine, build_registry(), workers, store);
    Ok((service, report))
}

/// Set by the SIGTERM/SIGINT handler; polled by both serving loops to start
/// a graceful drain.
static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_signum: i32) {
    TERM.store(true, Ordering::SeqCst);
}

/// Installs the drain handler for SIGTERM and SIGINT via the C `signal`
/// entry point (no signal-handling crate offline; the handler only flips an
/// atomic, which is async-signal-safe).
#[cfg(unix)]
fn install_term_handler() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term);
        signal(SIGINT, on_term);
    }
}

#[cfg(not(unix))]
fn install_term_handler() {}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(seed) = flag_value(&args, "--gen-batch") {
        gen_batch(&seed);
        return;
    }
    if args.iter().any(|arg| arg == "--demo") {
        demo();
        return;
    }
    let max_line_bytes = match flag_value(&args, "--max-line-bytes") {
        None => 1 << 20,
        Some(value) => value.parse().unwrap_or_else(|_| {
            eprintln!("tara_daemon: --max-line-bytes wants a byte count, got `{value}`");
            std::process::exit(2);
        }),
    };
    let listen = flag_value(&args, "--listen");
    let service = match flag_value(&args, "--data-dir") {
        Some(dir) => recover_durable(
            &PathBuf::from(dir),
            args.iter().any(|arg| arg == "--recover"),
        ),
        None => build_service(),
    };
    match listen {
        Some(addr) => serve_socket(Arc::new(service), &addr, max_line_bytes),
        None => serve(service, max_line_bytes),
    }
}

/// Returns the value following `flag` in `args`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|arg| arg == flag)
        .and_then(|at| args.get(at + 1))
        .cloned()
}

/// Prints the wire-format ingest line for deterministic scenario batch
/// `seed` (correlation id = seed), for shell drivers of a serving daemon.
fn gen_batch(seed: &str) {
    let seed: u64 = seed.parse().unwrap_or_else(|_| {
        eprintln!("tara_daemon: --gen-batch wants an unsigned integer seed, got `{seed}`");
        std::process::exit(2);
    });
    println!(
        "{}",
        encode_request(&WireRequest {
            id: seed,
            request: ServiceRequest::Ingest {
                posts: scenario::excavator_europe(seed).posts().to_vec(),
            },
        })
    );
}

/// Recovers a durable service from `dir` (exiting on failure).  With
/// `strict` set, a fresh start (no prior state on disk) is an error — used
/// after a restart to assert that recovery actually happened.
fn recover_durable(dir: &Path, strict: bool) -> TaraService {
    let (service, report) = build_durable_service(dir).unwrap_or_else(|error| {
        eprintln!(
            "tara_daemon: recovery from {} failed: {error}",
            dir.display()
        );
        std::process::exit(2);
    });
    if strict && report.fresh_start {
        eprintln!(
            "tara_daemon: --recover set but {} held no prior state",
            dir.display()
        );
        std::process::exit(3);
    }
    eprintln!(
        "tara_daemon: data dir {} (checkpoint gen {}, replayed {} journal record(s) / {} post(s), truncated {} torn byte(s))",
        dir.display(),
        report
            .checkpoint_generation
            .map_or("none".to_string(), |generation| generation.to_string()),
        report.replayed_records,
        report.replayed_posts,
        report.truncated_wal_bytes,
    );
    service
}

/// On a durable service, persists a final checkpoint as part of a graceful
/// drain (SIGTERM on the socket transport, EOF on stdin); a non-durable
/// service drains without one.
fn final_checkpoint(service: &TaraService) {
    if !service.is_durable() {
        return;
    }
    match service.handle(ServiceRequest::Checkpoint) {
        ServiceResponse::Checkpointed { generation, .. } => {
            eprintln!("tara_daemon: final checkpoint at gen {generation}");
        }
        other => eprintln!("tara_daemon: final checkpoint failed: {}", describe(&other)),
    }
}

/// Serves the wire format over TCP until SIGTERM/SIGINT, then drains
/// gracefully: the listener stops accepting, every admitted request is
/// answered, subscriptions get a final `Draining` event, and a durable
/// daemon writes a final checkpoint before exiting 0.
fn serve_socket(service: Arc<TaraService>, addr: &str, max_line_bytes: usize) {
    install_term_handler();
    let config = NetConfig {
        max_line_bytes,
        ..NetConfig::default()
    };
    let mut server =
        SocketServer::bind(Arc::clone(&service), addr, config).unwrap_or_else(|error| {
            eprintln!("tara_daemon: binding {addr} failed: {error}");
            std::process::exit(2);
        });
    // Drivers pass port 0 and parse the resolved address from this line.
    eprintln!(
        "tara_daemon: listening on {} ({} workers)",
        server.local_addr(),
        service.workers()
    );
    while !TERM.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(25));
    }
    eprintln!("tara_daemon: termination signal received, draining");
    server.shutdown();
    let net = service.net_stats();
    eprintln!(
        "tara_daemon: drained ({} admitted / {} answered, peak {} connection(s))",
        net.requests_admitted, net.requests_answered, net.peak_connections
    );
    final_checkpoint(&service);
}

/// Serves stdin until EOF with bounded pipelining: up to one request per
/// worker rides the pool at a time, responses flush in input order so the
/// transcript stays deterministic for piped callers.  Input lines are
/// bounded (`max_line_bytes`) and decoded lossily, so neither a huge line
/// nor invalid UTF-8 can break the loop; EOF drains gracefully (in-flight
/// requests answered, final checkpoint when durable).
fn serve(service: TaraService, max_line_bytes: usize) {
    let mut stdin = std::io::stdin().lock();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut pending: VecDeque<(u64, psp_suite::psp::service::runtime::Ticket)> = VecDeque::new();
    let mut scanner = LineScanner::new(max_line_bytes);
    let mut buffer = [0_u8; 8192];

    eprintln!(
        "tara_daemon: serving line-JSON on stdin ({} workers); send {{\"id\":1,\"request\":\"Status\"}}",
        service.workers()
    );
    'reading: loop {
        let scanned = match stdin.read(&mut buffer) {
            Ok(0) => break 'reading,
            Ok(read) => scanner.push(&buffer[..read]),
            Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break 'reading,
        };
        for line in scanned {
            serve_line(&service, line, max_line_bytes, &mut out, &mut pending);
        }
        // Push events (monitor deltas after ingests, scheduled runs) ride
        // the same stream as extra lines, after the in-order responses.
        for event in service.poll_events() {
            writeln!(out, "{}", encode_event(&event)).expect("stdout writable");
        }
    }
    // EOF drain: a trailing unterminated line still gets its answer, then
    // every in-flight request flushes in order.
    if let Some(line) = scanner.finish() {
        serve_line(&service, line, max_line_bytes, &mut out, &mut pending);
    }
    flush(&mut out, &mut pending, 0);
    for event in service.poll_events() {
        writeln!(out, "{}", encode_event(&event)).expect("stdout writable");
    }
    final_checkpoint(&service);
}

/// Dispatches one scanned stdin line: oversized and unparseable lines answer
/// structured errors in order; well-formed requests ride the pool with
/// bounded pipelining.
fn serve_line(
    service: &TaraService,
    line: ScannedLine,
    max_line_bytes: usize,
    out: &mut impl Write,
    pending: &mut VecDeque<(u64, psp_suite::psp::service::runtime::Ticket)>,
) {
    match line {
        ScannedLine::TooLong { prefix } => {
            flush(out, pending, 0);
            let error = PspError::LineTooLong {
                limit: max_line_bytes,
            };
            writeln!(out, "{}", error_line(&prefix, error)).expect("stdout writable");
        }
        ScannedLine::Line(line) if line.trim().is_empty() => {}
        ScannedLine::Line(line) => {
            match decode_request(&line) {
                Ok(wire) => pending.push_back((wire.id, service.submit(wire.request))),
                Err(error) => {
                    // Unparseable line: answer immediately, in order, echoing
                    // the id when it is still legible in the broken line.
                    flush(out, pending, 0);
                    writeln!(out, "{}", error_line(&line, error)).expect("stdout writable");
                }
            }
            flush(out, pending, service.workers());
        }
    }
}

/// Waits out queued tickets until at most `keep` remain, writing their
/// responses in submission order.
fn flush(
    out: &mut impl Write,
    pending: &mut VecDeque<(u64, psp_suite::psp::service::runtime::Ticket)>,
    keep: usize,
) {
    while pending.len() > keep {
        let (id, ticket) = pending.pop_front().expect("len checked");
        let line = encode_response(&WireResponse {
            id,
            response: ticket.wait(),
        });
        writeln!(out, "{line}").expect("stdout writable");
    }
}

/// A deterministic scripted transcript — what the daemon does, without
/// needing a driver on stdin.  Used as the CI smoke test.
fn demo() {
    let service = build_service();
    println!(
        "tara_daemon demo: excavator scene, {} workers",
        service.workers()
    );

    let script: Vec<(&str, ServiceRequest)> = vec![
        ("status", ServiceRequest::Status),
        (
            "score excavator",
            ServiceRequest::Score {
                db: "excavator".into(),
                config: "excavator".into(),
            },
        ),
        (
            "ingest next batch",
            ServiceRequest::Ingest {
                posts: scenario::excavator_europe(8).posts().to_vec(),
            },
        ),
        (
            "score excavator again",
            ServiceRequest::Score {
                db: "excavator".into(),
                config: "excavator".into(),
            },
        ),
        (
            "sweep three windows",
            ServiceRequest::Sweep {
                db: "excavator".into(),
                config: "excavator".into(),
                windows: WindowAxis::new()
                    .full_history()
                    .window(DateWindow::years(2019, 2021))
                    .window(DateWindow::years(2021, 2023)),
            },
        ),
        (
            "unknown database",
            ServiceRequest::Score {
                db: "tractor".into(),
                config: "excavator".into(),
            },
        ),
    ];
    for (label, request) in script {
        let response = service.handle(request);
        println!("  {label:<24} -> {}", describe(&response));
    }

    // The same requests ride the worker pool: submit a burst, then wait the
    // tickets in order.
    let tickets: Vec<_> = (0..4)
        .map(|_| service.submit(ServiceRequest::Status))
        .collect();
    for (n, ticket) in tickets.into_iter().enumerate() {
        println!("  pooled status #{n:<13} -> {}", describe(&ticket.wait()));
    }

    // A request whose deadline already passed answers Expired instead of
    // burning a worker on it.
    let expired = service
        .submit_with_deadline(ServiceRequest::Status, std::time::Duration::ZERO)
        .wait();
    println!("  zero deadline            -> {}", describe(&expired));

    // Monitor subscription: every ingest publication pushes a re-evaluated
    // monitoring series (plus alert firings) instead of being polled for.
    let response = service.handle(ServiceRequest::Subscribe {
        spec: MonitorSpec {
            db: "excavator".into(),
            config: "excavator".into(),
            scenario: "dpf-tampering".into(),
            from_year: 2019,
            to_year: 2023,
            window_years: 2,
            alert_threshold: 0.25,
        },
    });
    println!("  subscribe dpf-tampering  -> {}", describe(&response));
    let response = service.handle(ServiceRequest::Ingest {
        posts: scenario::excavator_europe(9).posts().to_vec(),
    });
    println!("  ingest third batch       -> {}", describe(&response));
    for event in service.poll_events() {
        println!("  pushed event             -> {}", describe_event(&event));
    }

    // Scheduled sweep: the scheduler thread re-runs the request on its own
    // clock; each tick arrives through the same event stream.
    let response = service.handle(ServiceRequest::Schedule {
        every_ms: 25,
        request: Box::new(ServiceRequest::Sweep {
            db: "excavator".into(),
            config: "excavator".into(),
            windows: WindowAxis::new()
                .window(DateWindow::years(2019, 2021))
                .window(DateWindow::years(2021, 2023)),
        }),
    });
    let job = match &response {
        ServiceResponse::Scheduled { id, .. } => *id,
        _ => 0,
    };
    println!("  schedule 25ms sweep      -> {}", describe(&response));
    std::thread::sleep(std::time::Duration::from_millis(90));
    let ticks = service
        .poll_events()
        .into_iter()
        .filter(|event| matches!(event, ServiceEvent::ScheduledRun { .. }))
        .collect::<Vec<_>>();
    println!(
        "  scheduler ticks          -> {} scheduled run(s), first: {}",
        ticks.len(),
        ticks.first().map_or("none".to_string(), describe_event),
    );
    let response = service.handle(ServiceRequest::Unschedule { id: job });
    println!("  unschedule sweep         -> {}", describe(&response));

    // A checkpoint needs a data dir; on this in-memory service it answers a
    // structured not-durable error instead.
    let response = service.handle(ServiceRequest::Checkpoint);
    println!("  checkpoint (no dir)      -> {}", describe(&response));

    // Durability: the same service behind a data dir.  Ingests journal
    // before they publish, checkpoints persist atomically, and a second
    // incarnation recovered from the same dir scores bit-identically.
    let dir = std::env::temp_dir().join(format!("tara-demo-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (durable, _) = build_durable_service(&dir).expect("demo data dir usable");
    let response = durable.handle(ServiceRequest::Ingest {
        posts: scenario::excavator_europe(8).posts().to_vec(),
    });
    println!("  durable ingest           -> {}", describe(&response));
    let response = durable.handle(ServiceRequest::Checkpoint);
    println!("  checkpoint               -> {}", describe(&response));
    let response = durable.handle(ServiceRequest::Ingest {
        posts: scenario::excavator_europe(9).posts().to_vec(),
    });
    println!("  durable ingest again     -> {}", describe(&response));
    let score = ServiceRequest::Score {
        db: "excavator".into(),
        config: "excavator".into(),
    };
    let reference = durable.handle(score.clone());
    println!("  durable score            -> {}", describe(&reference));
    println!(
        "  durable status           -> {}",
        describe(&durable.handle(ServiceRequest::Status))
    );
    drop(durable); // the first incarnation dies here; only the disk survives
    let (revived, report) = build_durable_service(&dir).expect("demo data dir recoverable");
    println!(
        "  restart                  -> checkpoint gen {}, replayed {} record(s) / {} post(s)",
        report
            .checkpoint_generation
            .map_or("none".to_string(), |g| g.to_string()),
        report.replayed_records,
        report.replayed_posts,
    );
    let replayed = revived.handle(score);
    println!(
        "  score after restart      -> {} [{}]",
        describe(&replayed),
        if replayed == reference {
            "bit-identical"
        } else {
            "MISMATCH"
        },
    );
    println!(
        "  status after restart     -> {}",
        describe(&revived.handle(ServiceRequest::Status))
    );
    drop(revived);
    let _ = std::fs::remove_dir_all(&dir);

    println!("demo complete");
}

/// One-line summary of a pushed event for the demo transcript.
fn describe_event(event: &ServiceEvent) -> String {
    match event {
        ServiceEvent::MonitorDelta {
            subscription,
            generation,
            series,
            alerts,
        } => format!(
            "monitor delta #{subscription} gen {generation}: {} [{} windows, {} alert(s)]",
            series.scenario,
            series.observations.len(),
            alerts.len()
        ),
        ServiceEvent::ScheduledRun { job, response } => {
            format!("scheduled run #{job}: {}", describe(response))
        }
        ServiceEvent::Draining { generation } => {
            format!("draining at gen {generation} (final event)")
        }
    }
}

/// One-line summary of a response for the demo transcript (full payloads are
/// wire-format concerns; the demo shows shapes and generations).
fn describe(response: &ServiceResponse) -> String {
    match response {
        ServiceResponse::Score { generation, sai } => {
            let top = sai.top().map_or("none".to_string(), |e| {
                format!("{} (SAI {:.0})", e.keyword, e.sai)
            });
            format!("gen {generation}: {} entries, top {top}", sai.len())
        }
        ServiceResponse::Sweep { generation, lists } => {
            format!("gen {generation}: {} windows scored", lists.len())
        }
        ServiceResponse::Matrix { generation, cells } => {
            format!("gen {generation}: {} cells", cells.len())
        }
        ServiceResponse::Ingested {
            appended,
            generation,
        } => format!("+{appended} posts -> gen {generation}"),
        ServiceResponse::Cache { generation, cache } => {
            format!(
                "gen {generation}: {} cached signal rows",
                cache.post_ids.len()
            )
        }
        ServiceResponse::Status {
            posts,
            generation,
            databases,
            configs,
            workers,
            queued,
            in_flight,
            panicked,
            subscriptions,
            scheduled,
            wal_records,
            wal_bytes: _,
            last_checkpoint_generation,
            recovered_at_start,
            net,
        } => format!(
            "gen {generation}: {posts} posts, {} dbs, {} configs, {workers} workers \
             (q{queued}/f{in_flight}/p{panicked}, {subscriptions} subs, {scheduled} jobs), \
             wal {wal_records} rec, ckpt {}, recovered {recovered_at_start}, \
             net {}/{} conn",
            databases.len(),
            configs.len(),
            last_checkpoint_generation.map_or("none".to_string(), |g| g.to_string()),
            net.open_connections,
            net.peak_connections,
        ),
        ServiceResponse::Checkpointed {
            generation,
            posts,
            path,
        } => format!(
            "gen {generation}: {posts} posts -> {}",
            // Only the directory name: absolute paths would make the demo
            // transcript machine-dependent.
            Path::new(path)
                .file_name()
                .map_or_else(|| path.clone(), |name| name.to_string_lossy().into_owned()),
        ),
        ServiceResponse::Subscribed { id, generation } => {
            format!("subscription #{id} at gen {generation}")
        }
        ServiceResponse::Unsubscribed { id } => format!("subscription #{id} removed"),
        ServiceResponse::Scheduled { id, every_ms } => {
            format!("job #{id} every {every_ms}ms")
        }
        ServiceResponse::Unscheduled { id } => format!("job #{id} removed"),
        ServiceResponse::Expired { waited_ms } => {
            format!("expired after {waited_ms}ms (deadline passed)")
        }
        ServiceResponse::Error { error } => format!("error [{}] {}", error.kind, error.detail),
    }
}
