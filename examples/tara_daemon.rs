//! The TARA service daemon: the PSP scoring engines served as a long-running
//! process speaking line-JSON over stdin/stdout.
//!
//! Each input line is a `WireRequest` (`{"id":N,"request":{...}}`); each
//! produces exactly one `WireResponse` line, unparseable input included.
//! Requests run on the service's worker pool over snapshot-isolated engine
//! generations: scoring requests never block behind an ingest, and every
//! response stamps the generation it was computed at.
//!
//! ```text
//! cargo run --release --example tara_daemon            # serve stdin
//! cargo run --release --example tara_daemon -- --demo  # scripted transcript
//! echo '{"id":1,"request":"Status"}' | cargo run --release --example tara_daemon
//! ```
//!
//! The registry serves the two paper scenes: databases/configs are named
//! `excavator` and `passenger-car`.

use psp_suite::psp::config::PspConfig;
use psp_suite::psp::engine::{LiveEngine, WindowAxis};
use psp_suite::psp::keyword_db::KeywordDatabase;
use psp_suite::psp::service::wire::{
    decode_request, encode_event, encode_response, error_line, WireResponse,
};
use psp_suite::psp::service::{
    MonitorSpec, ServiceEvent, ServiceRegistry, ServiceRequest, ServiceResponse, TaraService,
};
use psp_suite::socialsim::scenario;
use psp_suite::socialsim::time::DateWindow;
use std::collections::VecDeque;
use std::io::{BufRead, Write};

fn build_service() -> TaraService {
    let registry = ServiceRegistry::new()
        .database("excavator", KeywordDatabase::excavator_seed())
        .database("passenger-car", KeywordDatabase::passenger_car_seed())
        .config("excavator", PspConfig::excavator_europe())
        .config("passenger-car", PspConfig::passenger_car_europe());
    TaraService::new(LiveEngine::new(scenario::excavator_europe(7)), registry)
}

fn main() {
    if std::env::args().any(|arg| arg == "--demo") {
        demo();
    } else {
        serve();
    }
}

/// Serves stdin until EOF with bounded pipelining: up to one request per
/// worker rides the pool at a time, responses flush in input order so the
/// transcript stays deterministic for piped callers.
fn serve() {
    let service = build_service();
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut pending: VecDeque<(u64, psp_suite::psp::service::runtime::Ticket)> = VecDeque::new();

    eprintln!(
        "tara_daemon: serving line-JSON on stdin ({} workers); send {{\"id\":1,\"request\":\"Status\"}}",
        service.workers()
    );
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        match decode_request(&line) {
            Ok(wire) => pending.push_back((wire.id, service.submit(wire.request))),
            Err(error) => {
                // Unparseable line: answer immediately, in order, echoing the
                // id when it is still legible in the broken line.
                flush(&mut out, &mut pending, 0);
                writeln!(out, "{}", error_line(&line, error)).expect("stdout writable");
            }
        }
        let workers = service.workers();
        flush(&mut out, &mut pending, workers);
        // Push events (monitor deltas after ingests, scheduled runs) ride
        // the same stream as extra lines, after the in-order responses.
        for event in service.poll_events() {
            writeln!(out, "{}", encode_event(&event)).expect("stdout writable");
        }
    }
    flush(&mut out, &mut pending, 0);
    for event in service.poll_events() {
        writeln!(out, "{}", encode_event(&event)).expect("stdout writable");
    }
}

/// Waits out queued tickets until at most `keep` remain, writing their
/// responses in submission order.
fn flush(
    out: &mut impl Write,
    pending: &mut VecDeque<(u64, psp_suite::psp::service::runtime::Ticket)>,
    keep: usize,
) {
    while pending.len() > keep {
        let (id, ticket) = pending.pop_front().expect("len checked");
        let line = encode_response(&WireResponse {
            id,
            response: ticket.wait(),
        });
        writeln!(out, "{line}").expect("stdout writable");
    }
}

/// A deterministic scripted transcript — what the daemon does, without
/// needing a driver on stdin.  Used as the CI smoke test.
fn demo() {
    let service = build_service();
    println!(
        "tara_daemon demo: excavator scene, {} workers",
        service.workers()
    );

    let script: Vec<(&str, ServiceRequest)> = vec![
        ("status", ServiceRequest::Status),
        (
            "score excavator",
            ServiceRequest::Score {
                db: "excavator".into(),
                config: "excavator".into(),
            },
        ),
        (
            "ingest next batch",
            ServiceRequest::Ingest {
                posts: scenario::excavator_europe(8).posts().to_vec(),
            },
        ),
        (
            "score excavator again",
            ServiceRequest::Score {
                db: "excavator".into(),
                config: "excavator".into(),
            },
        ),
        (
            "sweep three windows",
            ServiceRequest::Sweep {
                db: "excavator".into(),
                config: "excavator".into(),
                windows: WindowAxis::new()
                    .full_history()
                    .window(DateWindow::years(2019, 2021))
                    .window(DateWindow::years(2021, 2023)),
            },
        ),
        (
            "unknown database",
            ServiceRequest::Score {
                db: "tractor".into(),
                config: "excavator".into(),
            },
        ),
    ];
    for (label, request) in script {
        let response = service.handle(request);
        println!("  {label:<24} -> {}", describe(&response));
    }

    // The same requests ride the worker pool: submit a burst, then wait the
    // tickets in order.
    let tickets: Vec<_> = (0..4)
        .map(|_| service.submit(ServiceRequest::Status))
        .collect();
    for (n, ticket) in tickets.into_iter().enumerate() {
        println!("  pooled status #{n:<13} -> {}", describe(&ticket.wait()));
    }

    // A request whose deadline already passed answers Expired instead of
    // burning a worker on it.
    let expired = service
        .submit_with_deadline(ServiceRequest::Status, std::time::Duration::ZERO)
        .wait();
    println!("  zero deadline            -> {}", describe(&expired));

    // Monitor subscription: every ingest publication pushes a re-evaluated
    // monitoring series (plus alert firings) instead of being polled for.
    let response = service.handle(ServiceRequest::Subscribe {
        spec: MonitorSpec {
            db: "excavator".into(),
            config: "excavator".into(),
            scenario: "dpf-tampering".into(),
            from_year: 2019,
            to_year: 2023,
            window_years: 2,
            alert_threshold: 0.25,
        },
    });
    println!("  subscribe dpf-tampering  -> {}", describe(&response));
    let response = service.handle(ServiceRequest::Ingest {
        posts: scenario::excavator_europe(9).posts().to_vec(),
    });
    println!("  ingest third batch       -> {}", describe(&response));
    for event in service.poll_events() {
        println!("  pushed event             -> {}", describe_event(&event));
    }

    // Scheduled sweep: the scheduler thread re-runs the request on its own
    // clock; each tick arrives through the same event stream.
    let response = service.handle(ServiceRequest::Schedule {
        every_ms: 25,
        request: Box::new(ServiceRequest::Sweep {
            db: "excavator".into(),
            config: "excavator".into(),
            windows: WindowAxis::new()
                .window(DateWindow::years(2019, 2021))
                .window(DateWindow::years(2021, 2023)),
        }),
    });
    let job = match &response {
        ServiceResponse::Scheduled { id, .. } => *id,
        _ => 0,
    };
    println!("  schedule 25ms sweep      -> {}", describe(&response));
    std::thread::sleep(std::time::Duration::from_millis(90));
    let ticks = service
        .poll_events()
        .into_iter()
        .filter(|event| matches!(event, ServiceEvent::ScheduledRun { .. }))
        .collect::<Vec<_>>();
    println!(
        "  scheduler ticks          -> {} scheduled run(s), first: {}",
        ticks.len(),
        ticks.first().map_or("none".to_string(), describe_event),
    );
    let response = service.handle(ServiceRequest::Unschedule { id: job });
    println!("  unschedule sweep         -> {}", describe(&response));

    println!("demo complete");
}

/// One-line summary of a pushed event for the demo transcript.
fn describe_event(event: &ServiceEvent) -> String {
    match event {
        ServiceEvent::MonitorDelta {
            subscription,
            generation,
            series,
            alerts,
        } => format!(
            "monitor delta #{subscription} gen {generation}: {} [{} windows, {} alert(s)]",
            series.scenario,
            series.observations.len(),
            alerts.len()
        ),
        ServiceEvent::ScheduledRun { job, response } => {
            format!("scheduled run #{job}: {}", describe(response))
        }
    }
}

/// One-line summary of a response for the demo transcript (full payloads are
/// wire-format concerns; the demo shows shapes and generations).
fn describe(response: &ServiceResponse) -> String {
    match response {
        ServiceResponse::Score { generation, sai } => {
            let top = sai.top().map_or("none".to_string(), |e| {
                format!("{} (SAI {:.0})", e.keyword, e.sai)
            });
            format!("gen {generation}: {} entries, top {top}", sai.len())
        }
        ServiceResponse::Sweep { generation, lists } => {
            format!("gen {generation}: {} windows scored", lists.len())
        }
        ServiceResponse::Matrix { generation, cells } => {
            format!("gen {generation}: {} cells", cells.len())
        }
        ServiceResponse::Ingested {
            appended,
            generation,
        } => format!("+{appended} posts -> gen {generation}"),
        ServiceResponse::Cache { generation, cache } => {
            format!(
                "gen {generation}: {} cached signal rows",
                cache.post_ids.len()
            )
        }
        ServiceResponse::Status {
            posts,
            generation,
            databases,
            configs,
            workers,
            queued,
            in_flight,
            panicked,
            subscriptions,
            scheduled,
        } => format!(
            "gen {generation}: {posts} posts, {} dbs, {} configs, {workers} workers \
             (q{queued}/f{in_flight}/p{panicked}, {subscriptions} subs, {scheduled} jobs)",
            databases.len(),
            configs.len()
        ),
        ServiceResponse::Subscribed { id, generation } => {
            format!("subscription #{id} at gen {generation}")
        }
        ServiceResponse::Unsubscribed { id } => format!("subscription #{id} removed"),
        ServiceResponse::Scheduled { id, every_ms } => {
            format!("job #{id} every {every_ms}ms")
        }
        ServiceResponse::Unscheduled { id } => format!("job #{id} removed"),
        ServiceResponse::Expired { waited_ms } => {
            format!("expired after {waited_ms}ms (deadline passed)")
        }
        ServiceResponse::Error { error } => format!("error [{}] {}", error.kind, error.detail),
    }
}
