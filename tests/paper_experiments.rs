//! Paper-facing integration tests: one test per headline claim of the paper's
//! evaluation, mirroring the experiment index in `DESIGN.md` / `EXPERIMENTS.md`.

use psp_suite::iso21434::cal::{Cal, CalMatrix};
use psp_suite::iso21434::feasibility::attack_vector::AttackVectorTable;
use psp_suite::iso21434::feasibility::AttackFeasibilityRating;
use psp_suite::iso21434::impact::ImpactRating;
use psp_suite::iso21434::tables;
use psp_suite::market::datasets;
use psp_suite::psp::config::PspConfig;
use psp_suite::psp::financial::{FinancialAssessment, FinancialInputs};
use psp_suite::psp::keyword_db::KeywordDatabase;
use psp_suite::psp::sai::SaiList;
use psp_suite::psp::timewindow::compare_windows;
use psp_suite::socialsim::scenario;
use psp_suite::socialsim::time::DateWindow;
use psp_suite::vehicle::attack_surface::{AttackRange, AttackVector};
use psp_suite::vehicle::lifecycle::DevelopmentLifecycle;
use psp_suite::vehicle::reachability::ReachabilityAnalysis;
use psp_suite::vehicle::reference::passenger_car;
use psp_suite::vehicle::standards_graph::{RelationshipStrength, StandardsGraph};

/// E1 — Figure 1: the standards-contribution graph has 21 contributors split into
/// strong and medium relationships, with a clear non-automotive majority.
#[test]
fn e1_fig1_standards_graph() {
    let graph = StandardsGraph::paper_figure_1();
    assert_eq!(graph.contributor_count(), 21);
    assert_eq!(
        graph.contributors_with(RelationshipStrength::Strong).len(),
        9
    );
    assert_eq!(
        graph.contributors_with(RelationshipStrength::Medium).len(),
        12
    );
    assert!(graph.non_automotive_fraction() > 0.5);
}

/// E2 — Figure 2: the development life cycle performs six TARA passes
/// (one initial plus five re-processing points).
#[test]
fn e2_fig2_lifecycle_tara_passes() {
    assert_eq!(DevelopmentLifecycle::new().run_to_completion(), 6);
}

/// E3 — Figure 3: the attack-potential parameter table has 21 rows over five
/// parameters and its bands map onto the shared feasibility scale.
#[test]
fn e3_fig3_attack_potential_table() {
    assert_eq!(tables::attack_potential_rows().len(), 21);
    assert_eq!(
        tables::feasibility_for_potential(0),
        AttackFeasibilityRating::High
    );
    assert_eq!(
        tables::feasibility_for_potential(25),
        AttackFeasibilityRating::VeryLow
    );
}

/// E4 — Figure 4: in the reference passenger car the powertrain ECUs are only
/// directly exposed to physical access, while the telematics unit is long-range
/// reachable.
#[test]
fn e4_fig4_reachability_classification() {
    let analysis = ReachabilityAnalysis::analyze(&passenger_car());
    for ecu in ["ECM", "TCM", "DEFC"] {
        let c = analysis.classification_of(ecu).unwrap();
        assert!(c
            .direct_ranges()
            .iter()
            .all(|r| *r == AttackRange::Physical));
    }
    let tcu = analysis.classification_of("TCU").unwrap();
    assert!(tcu.direct_ranges().contains(&AttackRange::LongRange));
}

/// E5 — Figure 5 / 8-A / 9-A: the standard G.9 table rates Network high and
/// Physical very low.
#[test]
fn e5_fig5_standard_g9_table() {
    let table = AttackVectorTable::standard();
    assert_eq!(
        table.rating(AttackVector::Network),
        AttackFeasibilityRating::High
    );
    assert_eq!(
        table.rating(AttackVector::Adjacent),
        AttackFeasibilityRating::Medium
    );
    assert_eq!(
        table.rating(AttackVector::Local),
        AttackFeasibilityRating::Low
    );
    assert_eq!(
        table.rating(AttackVector::Physical),
        AttackFeasibilityRating::VeryLow
    );
}

/// E6 — Figure 6: the CAL matrix caps the physical attack vector at CAL2, the
/// limitation the paper calls out for powertrain DoS threats.
#[test]
fn e6_fig6_cal_matrix_physical_cap() {
    let matrix = CalMatrix::new();
    assert_eq!(matrix.max_cal_for_vector(AttackVector::Physical), Cal::Cal2);
    assert_eq!(
        matrix.cal(ImpactRating::Severe, AttackVector::Network),
        Some(Cal::Cal4)
    );
}

/// E8 — Figure 8-B: the PSP insider table for ECM reprogramming puts the physical
/// vector on top when the whole history is considered.
#[test]
fn e8_fig8b_insider_table_all_time() {
    let corpus = scenario::passenger_car_europe(42);
    let sai = SaiList::compute(
        &corpus,
        &KeywordDatabase::passenger_car_seed(),
        &PspConfig::passenger_car_europe(),
    );
    let table =
        psp_suite::psp::weights::WeightGenerator::new().insider_table(&sai, "ecm-reprogramming");
    assert_eq!(
        table.rating(AttackVector::Physical),
        AttackFeasibilityRating::High
    );
    assert_ne!(
        table.rating(AttackVector::Network),
        AttackFeasibilityRating::High
    );
}

/// E9 — Figure 9-B vs 9-C: restricting the window to 2021+ inverts the dominant
/// vector from physical to local (OBD).
#[test]
fn e9_fig9_trend_inversion() {
    let corpus = scenario::passenger_car_europe(42);
    let comparison = compare_windows(
        &corpus,
        &KeywordDatabase::passenger_car_seed(),
        &PspConfig::passenger_car_europe(),
        "ecm-reprogramming",
        DateWindow::years(2021, 2023),
    );
    assert_eq!(comparison.baseline_dominant(), AttackVector::Physical);
    assert_eq!(comparison.recent_dominant(), AttackVector::Local);
    assert!(comparison.trend_inverted());
}

/// E12 — Figure 12: DPF tampering is the highest-scoring insider attack for the
/// "excavator, Europe" query.
#[test]
fn e12_fig12_excavator_sai_ranking() {
    let corpus = scenario::excavator_europe(42);
    let sai = SaiList::compute(
        &corpus,
        &KeywordDatabase::excavator_seed(),
        &PspConfig::excavator_europe(),
    );
    let ranking = sai.scenario_ranking();
    assert_eq!(ranking[0].0, "dpf-tampering");
    assert!(ranking[0].1 > ranking[1].1);
}

/// E13 / E14 — Equations 6 and 7: the end-to-end financial pipeline reproduces the
/// paper's MV ≈ 506 160 EUR and FC ≈ 145 286 EUR within the listing-noise margin.
#[test]
fn e13_e14_financial_constants() {
    let corpus = scenario::excavator_europe(42);
    let sai = SaiList::compute(
        &corpus,
        &KeywordDatabase::excavator_seed(),
        &PspConfig::excavator_europe(),
    );
    let assessment = FinancialAssessment::assess(
        "dpf-tampering",
        &sai,
        &datasets::excavator_sales_europe(),
        &datasets::annual_report(),
        &FinancialInputs::paper_excavator_example(),
    )
    .unwrap();

    assert!((assessment.pae - datasets::PAPER_PAE).abs() < 5.0);
    let mv_err = (assessment.market_value - datasets::PAPER_MV_EUR).abs() / datasets::PAPER_MV_EUR;
    assert!(
        mv_err < 0.10,
        "MV {} vs paper {}",
        assessment.market_value,
        datasets::PAPER_MV_EUR
    );
    let fc_err =
        (assessment.investment_bound - datasets::PAPER_FC_EUR).abs() / datasets::PAPER_FC_EUR;
    assert!(
        fc_err < 0.15,
        "FC {} vs paper {}",
        assessment.investment_bound,
        datasets::PAPER_FC_EUR
    );
    assert!(assessment.profitable);
}
