//! Connection-chaos suite for the socket serving plane.
//!
//! A [`ChaosClient`] plays every kind of badly behaved network peer — torn
//! frames, byte-at-a-time slowloris writes, half-open sockets that go
//! silent, peers that disconnect mid-response, oversized lines — against a
//! live [`SocketServer`], and the tests assert the server's overload
//! contract: structured errors (never panics, never hangs), a worker pool
//! that is never blocked by a slow client, `overloaded` answered within a
//! bounded time when the admission window is full, and a graceful drain that
//! answers **every** admitted request bit-identically to the in-process
//! `handle()` path before the last connection closes.

use psp_suite::psp::config::PspConfig;
use psp_suite::psp::engine::{
    IngestReceipt, SaiScorer, SignalCacheFile, StreamingScorer, WindowAxis,
};
use psp_suite::psp::keyword_db::KeywordDatabase;
use psp_suite::psp::sai::SaiList;
use psp_suite::psp::service::net::{NetConfig, SocketServer};
use psp_suite::psp::service::wire::{encode_request, encode_response, WireRequest, WireResponse};
use psp_suite::psp::service::{
    MonitorSpec, ServiceRegistry, ServiceRequest, ServiceResponse, TaraService,
};
use psp_suite::psp::LiveEngine;
use psp_suite::socialsim::corpus::Corpus;
use psp_suite::socialsim::post::Post;
use psp_suite::socialsim::scenario;
use psp_suite::socialsim::time::DateWindow;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long any single test-side wait may take before the test fails (the
/// server's contract is to answer *well* within this).
const DEADLINE: Duration = Duration::from_secs(30);

fn registry() -> ServiceRegistry {
    ServiceRegistry::new()
        .database("excavator", KeywordDatabase::excavator_seed())
        .config("excavator", PspConfig::excavator_europe())
}

fn score_request(id: u64) -> String {
    encode_request(&WireRequest {
        id,
        request: ServiceRequest::Score {
            db: "excavator".into(),
            config: "excavator".into(),
        },
    })
}

/// Spins up a served `LiveEngine` on an OS-picked port.
fn serve(config: NetConfig) -> (Arc<TaraService>, SocketServer) {
    let service = Arc::new(TaraService::with_workers(
        LiveEngine::new(scenario::excavator_europe(7)),
        registry(),
        2,
    ));
    let server = SocketServer::bind(Arc::clone(&service), "127.0.0.1:0", config)
        .expect("bind an OS-picked port");
    (service, server)
}

/// An engine that sleeps on every scoring call: with one worker and a tiny
/// admission window, pipelined requests deterministically overflow.
#[derive(Debug, Clone)]
struct SlowEngine {
    inner: LiveEngine,
    delay: Duration,
}

impl SlowEngine {
    fn new(delay: Duration) -> Self {
        Self {
            inner: LiveEngine::new(scenario::excavator_europe(7)),
            delay,
        }
    }
}

impl SaiScorer for SlowEngine {
    fn sai_list(&self, db: &KeywordDatabase, config: &PspConfig) -> SaiList {
        std::thread::sleep(self.delay);
        self.inner.sai_list(db, config)
    }

    fn sai_lists(&self, db: &KeywordDatabase, configs: &[PspConfig]) -> Vec<SaiList> {
        std::thread::sleep(self.delay);
        self.inner.sai_lists(db, configs)
    }
}

impl StreamingScorer for SlowEngine {
    fn ingest_batch(&mut self, batch: Vec<Post>) -> IngestReceipt {
        self.inner.ingest_batch(batch)
    }

    fn post_count(&self) -> usize {
        self.inner.post_count()
    }

    fn generation(&self) -> u64 {
        self.inner.generation()
    }

    fn export_signal_cache(&self) -> SignalCacheFile {
        self.inner.export_signal_cache()
    }

    fn snapshot_corpus(&self) -> Corpus {
        self.inner.snapshot_corpus()
    }

    fn restore_generation(&mut self, generation: u64) {
        self.inner.restore_generation(generation);
    }
}

/// A deliberately badly behaved wire client: every helper is one chaos mode.
struct ChaosClient {
    stream: TcpStream,
    buffer: Vec<u8>,
}

impl ChaosClient {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("server accepts");
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .expect("read timeout settable");
        Self {
            stream,
            buffer: Vec::new(),
        }
    }

    /// A well-formed request line, written atomically.
    fn send_line(&mut self, line: &str) {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("server readable");
    }

    /// Raw bytes, no framing guarantees — torn frames, NULs, garbage.
    fn send_bytes(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("server readable");
    }

    /// Slowloris: the line dribbles in one byte at a time.
    fn send_slowloris(&mut self, line: &str, per_byte: Duration) {
        for byte in line.as_bytes() {
            self.stream
                .write_all(std::slice::from_ref(byte))
                .expect("server readable");
            std::thread::sleep(per_byte);
        }
        self.stream.write_all(b"\n").expect("server readable");
    }

    /// The peer disappears abruptly, possibly mid-response.
    fn vanish(self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    /// Reads one response line, waiting up to [`DEADLINE`]; `None` on EOF
    /// (server closed the connection).
    fn read_line(&mut self) -> Option<String> {
        let start = Instant::now();
        loop {
            if let Some(at) = self.buffer.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buffer.drain(..=at).collect();
                return Some(String::from_utf8_lossy(&line[..line.len() - 1]).into_owned());
            }
            let mut chunk = [0_u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(read) => self.buffer.extend_from_slice(&chunk[..read]),
                Err(error)
                    if error.kind() == ErrorKind::WouldBlock
                        || error.kind() == ErrorKind::TimedOut =>
                {
                    assert!(
                        start.elapsed() < DEADLINE,
                        "no response line within {DEADLINE:?}"
                    );
                }
                Err(_) => return None,
            }
        }
    }

    /// Reads until the server closes the connection.
    fn read_to_eof(&mut self) -> Vec<String> {
        let mut lines = Vec::new();
        while let Some(line) = self.read_line() {
            lines.push(line);
        }
        lines
    }
}

/// Polls `probe` until it returns true, bounded by [`DEADLINE`].
fn wait_until(what: &str, probe: impl Fn() -> bool) {
    let start = Instant::now();
    while !probe() {
        assert!(start.elapsed() < DEADLINE, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn a_socket_score_is_bit_identical_to_in_process_handle() {
    let (service, server) = serve(NetConfig::default());
    let mut client = ChaosClient::connect(server.local_addr());
    client.send_line(&score_request(42));
    let line = client.read_line().expect("response before EOF");
    let expected = encode_response(&WireResponse {
        id: 42,
        response: service.handle(ServiceRequest::Score {
            db: "excavator".into(),
            config: "excavator".into(),
        }),
    });
    assert_eq!(line, expected);
}

#[test]
fn torn_frames_and_garbage_answer_structured_errors_and_the_connection_survives() {
    let (_service, server) = serve(NetConfig::default());
    let mut client = ChaosClient::connect(server.local_addr());

    // A frame torn mid-JSON: answered bad-request with the id recovered.
    client.send_line(r#"{"id": 13, "request": {"Score": {"db": "excav"#);
    let line = client.read_line().expect("torn frame answered");
    assert!(line.contains("\"bad-request\""), "{line}");
    assert!(line.contains("\"id\":13"), "id recovered: {line}");

    // Invalid UTF-8 and NUL bytes: decoded lossily, answered bad-request.
    client.send_bytes(b"\xff\xfe{\"id\": 14, garbage\x00\x00\n");
    let line = client.read_line().expect("garbage answered");
    assert!(line.contains("\"bad-request\""), "{line}");
    assert!(line.contains("\"id\":14"), "id recovered: {line}");

    // Deeply nested JSON: a structured parse error, not a stack overflow.
    client.send_line(&format!(
        "{}{}",
        r#"{"id":15,"request":"#,
        "[".repeat(50_000)
    ));
    let line = client.read_line().expect("nested bomb answered");
    assert!(line.contains("\"bad-request\""), "{line}");

    // The same connection still serves a real request afterwards.
    client.send_line(&score_request(16));
    let line = client.read_line().expect("connection survived the chaos");
    assert!(line.contains("\"id\":16"), "{line}");
    assert!(line.contains("\"Score\""), "{line}");
}

#[test]
fn a_slowloris_write_is_answered_while_other_connections_are_served() {
    let (_service, server) = serve(NetConfig::default());
    let addr = server.local_addr();
    let slow = std::thread::spawn(move || {
        let mut client = ChaosClient::connect(addr);
        // ~80 bytes at 5ms/byte: the request takes ~400ms to arrive.
        client.send_slowloris(&score_request(1), Duration::from_millis(5));
        client.read_line().expect("slowloris request answered")
    });
    // A normal peer is not head-of-line blocked behind the slow writer.
    let mut fast = ChaosClient::connect(addr);
    client_round_trip(&mut fast, 2);
    let line = slow.join().expect("slowloris thread clean");
    assert!(line.contains("\"id\":1"), "{line}");
    assert!(line.contains("\"Score\""), "{line}");
}

fn client_round_trip(client: &mut ChaosClient, id: u64) {
    client.send_line(&score_request(id));
    let line = client.read_line().expect("response before EOF");
    assert!(line.contains(&format!("\"id\":{id}")), "{line}");
}

#[test]
fn idle_and_half_open_connections_are_reaped_while_others_are_served() {
    let config = NetConfig {
        idle_timeout: Duration::from_millis(200),
        ..NetConfig::default()
    };
    let (service, server) = serve(config);
    let addr = server.local_addr();

    // A half-open peer: sends a partial line, then goes silent forever.
    let mut half_open = ChaosClient::connect(addr);
    half_open.send_bytes(b"{\"id\": 99, \"requ");
    // An idle peer: connects and never speaks at all.
    let idle = ChaosClient::connect(addr);

    // Both get reaped...
    wait_until("both stalled connections reaped", || {
        service.net_stats().reaped_idle >= 2
    });
    assert_eq!(half_open.read_line(), None, "reaped connection closed");
    drop(idle);

    // ...while a live peer keeps scoring (staying under the idle timeout).
    let mut live = ChaosClient::connect(addr);
    client_round_trip(&mut live, 3);
    assert_eq!(service.net_stats().open_connections, 1);
}

#[test]
fn a_peer_vanishing_mid_response_leaves_the_server_serving() {
    let (service, server) = serve(NetConfig::default());
    let addr = server.local_addr();
    for round in 0..4 {
        let mut client = ChaosClient::connect(addr);
        client.send_line(&score_request(round));
        // Gone before (or while) the response is written.
        client.vanish();
    }
    wait_until("vanished connections torn down", || {
        service.net_stats().open_connections == 0
    });
    let mut client = ChaosClient::connect(addr);
    client_round_trip(&mut client, 5);
}

#[test]
fn oversized_lines_answer_line_too_long_and_the_connection_survives() {
    let config = NetConfig {
        max_line_bytes: 1024,
        ..NetConfig::default()
    };
    let (_service, server) = serve(config);
    let mut client = ChaosClient::connect(server.local_addr());
    // 64 KiB on one line; the id sits in the retained prefix.
    let huge = format!("{{\"id\": 21, \"request\": \"{}\"}}", "x".repeat(64 * 1024));
    client.send_line(&huge);
    let line = client.read_line().expect("oversized line answered");
    assert!(line.contains("\"line-too-long\""), "{line}");
    assert!(
        line.contains("\"id\":21"),
        "id recovered from prefix: {line}"
    );
    // The connection is not poisoned: the next request serves normally.
    client_round_trip(&mut client, 22);
}

#[test]
fn connections_beyond_the_cap_get_a_structured_rejection() {
    let config = NetConfig {
        max_connections: 2,
        ..NetConfig::default()
    };
    let (service, server) = serve(config);
    let addr = server.local_addr();
    // Two served connections, each provably registered (request answered).
    let mut first = ChaosClient::connect(addr);
    client_round_trip(&mut first, 1);
    let mut second = ChaosClient::connect(addr);
    client_round_trip(&mut second, 2);
    // The third is answered with one connection-limit line and closed.
    let mut third = ChaosClient::connect(addr);
    let lines = third.read_to_eof();
    assert_eq!(lines.len(), 1, "{lines:?}");
    assert!(lines[0].contains("\"connection-limit\""), "{}", lines[0]);
    assert!(service.net_stats().connections_rejected >= 1);
    // The capped connections keep serving.
    client_round_trip(&mut first, 3);
    client_round_trip(&mut second, 4);
}

#[test]
fn a_full_admission_window_answers_overloaded_within_bounded_time() {
    // One slow worker, two admission slots: a burst of six pipelined
    // requests must admit two and answer `overloaded` for the rest *before*
    // the slow scores finish (the rejection path never waits on a worker).
    let service = Arc::new(TaraService::with_workers(
        SlowEngine::new(Duration::from_millis(400)),
        registry(),
        1,
    ));
    let config = NetConfig {
        admission_capacity: 2,
        ..NetConfig::default()
    };
    let server = SocketServer::bind(Arc::clone(&service), "127.0.0.1:0", config)
        .expect("bind an OS-picked port");
    let mut client = ChaosClient::connect(server.local_addr());
    let burst_started = Instant::now();
    for id in 1..=6 {
        client.send_line(&score_request(id));
    }
    // Responses come back in submission order; the first overloaded one must
    // arrive while the admitted scores are still running.
    let mut kinds = Vec::new();
    let mut first_overloaded_at = None;
    for id in 1..=6 {
        let line = client.read_line().expect("every burst line answered");
        assert!(line.contains(&format!("\"id\":{id}")), "{line}");
        if line.contains("\"overloaded\"") {
            first_overloaded_at.get_or_insert_with(|| burst_started.elapsed());
            assert!(line.contains("\"detail\""), "carries the depth: {line}");
            kinds.push("overloaded");
        } else {
            assert!(line.contains("\"Score\""), "{line}");
            kinds.push("score");
        }
    }
    assert_eq!(
        kinds.iter().filter(|kind| **kind == "score").count(),
        2,
        "exactly the two admitted requests scored: {kinds:?}"
    );
    assert_eq!(service.net_stats().admissions_rejected, 4);
    // Bounded time: rejections were answered without waiting out the ~800ms
    // of queued slow scoring (pipelined responses flush after ticket 2, so
    // the observable bound includes the two admitted scores, not the queue).
    let waited = first_overloaded_at.expect("saw an overloaded response");
    assert!(waited < DEADLINE, "overloaded took {waited:?}");
}

#[test]
fn graceful_drain_answers_every_admitted_request_bit_identically() {
    let service = Arc::new(TaraService::with_workers(
        SlowEngine::new(Duration::from_millis(40)),
        registry(),
        2,
    ));
    let mut server = SocketServer::bind(Arc::clone(&service), "127.0.0.1:0", NetConfig::default())
        .expect("bind an OS-picked port");
    let addr = server.local_addr();

    // Two connections, five pipelined scores each, all admitted.
    let mut clients: Vec<ChaosClient> = (0..2).map(|_| ChaosClient::connect(addr)).collect();
    for (at, client) in clients.iter_mut().enumerate() {
        for n in 0..5_u64 {
            client.send_line(&score_request(at as u64 * 10 + n));
        }
    }
    wait_until("all ten requests admitted", || {
        service.net_stats().requests_admitted >= 10
    });

    // Drain mid-flight: nothing admitted may be dropped unanswered.
    server.begin_drain();
    let expected_score = service.handle(ServiceRequest::Score {
        db: "excavator".into(),
        config: "excavator".into(),
    });
    for (at, client) in clients.iter_mut().enumerate() {
        let lines = client.read_to_eof();
        assert_eq!(lines.len(), 5, "connection {at} answered fully: {lines:?}");
        for (n, line) in lines.iter().enumerate() {
            // Bit-identical to the in-process handle() at the stamped
            // generation (the corpus never changed, so generation 0 for all).
            let expected = encode_response(&WireResponse {
                id: at as u64 * 10 + n as u64,
                response: expected_score.clone(),
            });
            assert_eq!(line, &expected, "connection {at} line {n}");
        }
    }
    server.shutdown();
    let net = service.net_stats();
    assert_eq!(net.requests_admitted, net.requests_answered);
    assert_eq!(net.open_connections, 0);
}

#[test]
fn subscribed_connections_get_deltas_and_a_final_draining_event() {
    let (service, mut server) = serve(NetConfig::default());
    let mut watcher = ChaosClient::connect(server.local_addr());
    watcher.send_line(&encode_request(&WireRequest {
        id: 70,
        request: ServiceRequest::Subscribe {
            spec: MonitorSpec {
                db: "excavator".into(),
                config: "excavator".into(),
                scenario: "dpf-tampering".into(),
                from_year: 2019,
                to_year: 2023,
                window_years: 2,
                alert_threshold: 0.25,
            },
        },
    }));
    let line = watcher.read_line().expect("subscription acknowledged");
    assert!(line.contains("\"Subscribed\""), "{line}");
    assert!(line.contains("\"generation\":0"), "{line}");

    // An ingest over a second connection pushes a delta to the watcher.
    let mut ingester = ChaosClient::connect(server.local_addr());
    ingester.send_line(&encode_request(&WireRequest {
        id: 71,
        request: ServiceRequest::Ingest {
            posts: scenario::excavator_europe(8).posts()[..40].to_vec(),
        },
    }));
    let line = ingester.read_line().expect("ingest acknowledged");
    assert!(line.contains("\"Ingested\""), "{line}");
    let line = watcher.read_line().expect("monitor delta pushed");
    assert!(line.contains("\"MonitorDelta\""), "{line}");
    assert!(line.contains("\"generation\":1"), "{line}");

    // Drain: the subscription is closed with an explicit final event.
    server.begin_drain();
    let lines = watcher.read_to_eof();
    let last = lines.last().expect("a final line before close");
    assert!(last.contains("\"Draining\""), "{lines:?}");
    assert!(last.contains("\"generation\":1"), "{last}");
    server.shutdown();

    // The scheduler-style sweep request surface also still answers over the
    // socket path (sanity: interception is limited to Subscribe/Schedule).
    let response = service.handle(ServiceRequest::Sweep {
        db: "excavator".into(),
        config: "excavator".into(),
        windows: WindowAxis::new().window(DateWindow::years(2019, 2021)),
    });
    assert!(matches!(response, ServiceResponse::Sweep { .. }));
}
