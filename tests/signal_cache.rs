//! The persistable signal cache end to end: export → serialise → load into a
//! cold engine → score, bit-identical to a fresh compute, across all three
//! engine shapes — and hard rejection of every stale/mismatched cache.

use proptest::prelude::*;
use psp_suite::psp::config::PspConfig;
use psp_suite::psp::engine::{
    LiveEngine, ScoringEngine, ShardedEngine, SignalCacheError, SignalCacheFile,
    SIGNAL_CACHE_VERSION,
};
use psp_suite::psp::keyword_db::KeywordDatabase;
use psp_suite::psp::sai::SaiList;
use psp_suite::socialsim::corpus::Corpus;
use psp_suite::socialsim::engagement::Engagement;
use psp_suite::socialsim::index::ShardSpec;
use psp_suite::socialsim::post::{Post, Region, TargetApplication};
use psp_suite::socialsim::scenario;
use psp_suite::socialsim::time::SimDate;
use psp_suite::socialsim::user::User;
use psp_suite::textmine::pipeline::TextPipeline;
use psp_suite::textmine::sentiment::IntentLexicon;
use std::path::PathBuf;

fn db_and_config() -> (KeywordDatabase, PspConfig) {
    (
        KeywordDatabase::excavator_seed(),
        PspConfig::excavator_europe(),
    )
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("psp_signal_cache_{name}_{}", std::process::id()))
}

#[test]
fn cache_round_trip_through_json_restores_warm_scoring() {
    let corpus = scenario::excavator_europe(7);
    let (db, config) = db_and_config();
    let warm = ScoringEngine::new(&corpus);
    let fresh_scores = warm.sai_list(&db, &config);

    // Export after scoring: every signal the queries touched is memoised, the
    // rest are materialised by the export itself.
    let cache = warm.export_signal_cache();
    assert_eq!(cache.post_count(), corpus.len());

    // Serialise through JSON — the round trip must be bit-exact, floats
    // included.
    let json = serde_json::to_string(&cache).unwrap();
    let reloaded: SignalCacheFile = serde_json::from_str(&json).unwrap();
    assert_eq!(reloaded, cache);

    // A cold engine warmed from the cache scores identically and reports
    // every post as installed — i.e. the text pipeline never needs to run.
    let cold = ScoringEngine::new(&corpus);
    assert_eq!(cold.load_signal_cache(&reloaded).unwrap(), corpus.len());
    assert_eq!(cold.sai_list(&db, &config), fresh_scores);
    assert_eq!(
        cold.sai_list(&db, &config),
        SaiList::compute_naive(&corpus, &db, &config)
    );
}

#[test]
fn cold_restart_from_disk_skips_text_mining() {
    let corpus = scenario::excavator_europe(9);
    let (db, config) = db_and_config();
    let expected = ScoringEngine::new(&corpus).sai_list(&db, &config);

    // Persist the corpus and the signal cache side by side.
    let corpus_path = temp_path("corpus.json");
    let cache_path = temp_path("signals.json");
    corpus.save_json(&corpus_path).unwrap();
    ScoringEngine::new(&corpus)
        .export_signal_cache()
        .save(&cache_path)
        .unwrap();

    // "Restart": load both from disk, rebuild the index, install the cache.
    let restored = Corpus::load_json(&corpus_path).unwrap();
    let cache = SignalCacheFile::load(&cache_path).unwrap();
    std::fs::remove_file(&corpus_path).ok();
    std::fs::remove_file(&cache_path).ok();

    assert_eq!(restored, corpus);
    let engine = ScoringEngine::new(&restored);
    assert_eq!(engine.load_signal_cache(&cache).unwrap(), restored.len());
    assert_eq!(engine.sai_list(&db, &config), expected);
}

#[test]
fn cache_is_interchangeable_across_engine_shapes() {
    let corpus = scenario::passenger_car_europe(42);
    let db = KeywordDatabase::passenger_car_seed();
    let config = PspConfig::passenger_car_europe();
    let expected = ScoringEngine::new(&corpus).sai_list(&db, &config);

    // Snapshot engine → sharded engine.
    let cache = ScoringEngine::new(&corpus).export_signal_cache();
    for spec in [ShardSpec::yearly(), ShardSpec::ByRegion] {
        let sharded = ShardedEngine::new(corpus.clone(), spec);
        assert_eq!(sharded.load_signal_cache(&cache).unwrap(), corpus.len());
        assert_eq!(sharded.sai_list(&db, &config), expected, "{spec:?}");
    }

    // Sharded engine → live engine: the sharded export reassembles global
    // corpus order, so it must be identical to the snapshot export.
    let sharded = ShardedEngine::new(corpus.clone(), ShardSpec::yearly());
    let sharded_cache = sharded.export_signal_cache();
    assert_eq!(sharded_cache, cache);
    let live = LiveEngine::new(corpus.clone());
    assert_eq!(
        live.load_signal_cache(&sharded_cache).unwrap(),
        corpus.len()
    );
    assert_eq!(live.sai_list(&db, &config), expected);
}

#[test]
fn live_engine_cache_survives_ingest_cycles() {
    let seed = scenario::excavator_europe(7);
    let extra = scenario::excavator_europe(8).posts().to_vec();
    let (db, config) = db_and_config();

    let mut live = LiveEngine::new(seed);
    live.ingest(extra);
    let expected = live.sai_list(&db, &config);
    let cache = live.export_signal_cache();

    // A cold live engine over the same grown corpus accepts the cache.
    let cold = LiveEngine::new(live.corpus().clone());
    assert_eq!(cold.load_signal_cache(&cache).unwrap(), cold.post_count());
    assert_eq!(cold.sai_list(&db, &config), expected);

    // After further ingestion the old cache no longer matches.
    let mut grown = cold;
    grown.ingest(scenario::excavator_europe(10).posts().to_vec());
    assert!(matches!(
        grown.load_signal_cache(&cache),
        Err(SignalCacheError::LengthMismatch { .. })
    ));
}

#[test]
fn stale_and_mismatched_caches_are_rejected() {
    let corpus = scenario::excavator_europe(7);
    let engine = ScoringEngine::new(&corpus);
    let cache = engine.export_signal_cache();

    // Wrong layout version.
    let mut stale = cache.clone();
    stale.version = SIGNAL_CACHE_VERSION + 1;
    assert!(matches!(
        engine.load_signal_cache(&stale),
        Err(SignalCacheError::Version { .. })
    ));

    // Wrong lexicon: an engine scoring under different weights must refuse a
    // default-lexicon cache.
    let harsh = TextPipeline::with_lexicon(IntentLexicon {
        deterrent_weight: 10.0,
        ..IntentLexicon::default()
    });
    let strict_engine = ScoringEngine::with_pipeline(&corpus, harsh);
    assert!(matches!(
        strict_engine.load_signal_cache(&cache),
        Err(SignalCacheError::LexiconMismatch)
    ));

    // Wrong corpus length (a truncated copy of the same corpus).
    let truncated_corpus = Corpus::from_posts(corpus.posts()[..corpus.len() - 1].to_vec());
    let truncated_engine = ScoringEngine::new(&truncated_corpus);
    assert!(matches!(
        truncated_engine.load_signal_cache(&cache),
        Err(SignalCacheError::LengthMismatch { .. })
    ));

    // Right length, wrong post ids.
    let mut forged = cache.clone();
    forged.post_ids[3] += 1_000_000;
    let result = engine.load_signal_cache(&forged);
    assert_eq!(
        result,
        Err(SignalCacheError::PostIdMismatch {
            index: 3,
            cached: forged.post_ids[3],
            found: corpus.posts()[3].id(),
        })
    );

    // Truncated columns.
    let mut truncated = cache.clone();
    truncated.intents.pop();
    assert!(matches!(
        engine.load_signal_cache(&truncated),
        Err(SignalCacheError::Corrupt(_))
    ));

    // None of the rejected loads may have warmed anything partially: a cold
    // engine still installs every post from the intact cache (already-warm
    // engines install 0 — their memoised signals are identical and kept).
    let cold = ScoringEngine::new(&corpus);
    assert_eq!(cold.load_signal_cache(&cache).unwrap(), corpus.len());
    assert_eq!(engine.load_signal_cache(&cache).unwrap(), 0);
}

#[test]
fn sharded_engine_validates_ids_against_its_shard_layout() {
    let corpus = scenario::excavator_europe(7);
    let sharded = ShardedEngine::new(corpus.clone(), ShardSpec::yearly());
    let mut forged = ScoringEngine::new(&corpus).export_signal_cache();
    let index = forged.post_ids.len() / 2;
    forged.post_ids[index] += 77;
    match sharded.load_signal_cache(&forged) {
        Err(SignalCacheError::PostIdMismatch {
            index: found_index, ..
        }) => assert_eq!(found_index, index),
        other => panic!("expected PostIdMismatch, got {other:?}"),
    }
}

#[test]
fn missing_cache_file_reports_io() {
    let path = temp_path("does_not_exist.json");
    assert!(matches!(
        SignalCacheFile::load(&path),
        Err(SignalCacheError::Io(_))
    ));
}

/// A compact random-corpus generator for the round-trip property below.
fn arb_corpus() -> impl Strategy<Value = Corpus> {
    const TEXTS: [&str; 8] = [
        "#dpfdelete kit for sale 360 EUR",
        "#egrdelete how-to guide",
        "stock machine is fine",
        "was €420, now 359,99 EUR",
        "authorities warn this is illegal",
        "ÖLWECHSEL am #jobsite",
        "",
        "#chiptuning stage 1 adds 40 hp",
    ];
    prop::collection::vec(
        (
            0usize..TEXTS.len(),
            2015i32..2024,
            0u64..50_000,
            prop_oneof![Just(Region::Europe), Just(Region::AsiaPacific)],
        ),
        0..25,
    )
    .prop_map(|rows| {
        Corpus::from_posts(
            rows.into_iter()
                .enumerate()
                .map(|(id, (text, year, views, region))| {
                    Post::new(
                        id as u64 + 1,
                        User::new("cache_prop_user", views / 100, 24),
                        TEXTS[text],
                        vec![],
                        SimDate::new(year, 6, 15),
                        region,
                        TargetApplication::Excavator,
                        Engagement::new(views, views / 50, views / 200, views / 400),
                    )
                }),
        )
    })
}

proptest! {
    /// Export → JSON → load → score is bit-identical to a fresh compute on
    /// random corpora (floats round-trip exactly through the serialised form).
    #[test]
    fn cache_round_trip_is_bit_exact_on_random_corpora(corpus in arb_corpus()) {
        let (db, config) = db_and_config();
        let cache = ScoringEngine::new(&corpus).export_signal_cache();
        let json = serde_json::to_string(&cache).unwrap();
        let reloaded: SignalCacheFile = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&reloaded, &cache);

        let cold = ScoringEngine::new(&corpus);
        prop_assert_eq!(cold.load_signal_cache(&reloaded).unwrap(), corpus.len());
        prop_assert_eq!(
            cold.sai_list(&db, &config),
            SaiList::compute_naive(&corpus, &db, &config)
        );
    }
}
