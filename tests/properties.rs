//! Property-based tests (proptest) over the core data structures and invariants.

use proptest::prelude::*;
use psp_suite::iso21434::feasibility::attack_potential::{
    AttackPotential, ElapsedTime, Equipment, Expertise, Knowledge, WindowOfOpportunity,
};
use psp_suite::iso21434::feasibility::AttackFeasibilityRating;
use psp_suite::iso21434::impact::ImpactRating;
use psp_suite::iso21434::risk::{RiskMatrix, RiskValue};
use psp_suite::iso21434::tables;
use psp_suite::market::bep::BreakEvenAnalysis;
use psp_suite::socialsim::hashtag::Hashtag;
use psp_suite::socialsim::time::{DateWindow, SimDate};
use psp_suite::textmine::cluster::kmeans_1d;
use psp_suite::textmine::price::{extract_prices, representative_price};
use psp_suite::textmine::tokenize;

fn arb_impact() -> impl Strategy<Value = ImpactRating> {
    prop_oneof![
        Just(ImpactRating::Negligible),
        Just(ImpactRating::Moderate),
        Just(ImpactRating::Major),
        Just(ImpactRating::Severe),
    ]
}

fn arb_feasibility() -> impl Strategy<Value = AttackFeasibilityRating> {
    prop_oneof![
        Just(AttackFeasibilityRating::VeryLow),
        Just(AttackFeasibilityRating::Low),
        Just(AttackFeasibilityRating::Medium),
        Just(AttackFeasibilityRating::High),
    ]
}

fn arb_potential() -> impl Strategy<Value = AttackPotential> {
    (
        prop_oneof![
            Just(ElapsedTime::OneDay),
            Just(ElapsedTime::OneWeek),
            Just(ElapsedTime::OneMonth),
            Just(ElapsedTime::SixMonths),
            Just(ElapsedTime::BeyondSixMonths),
        ],
        prop_oneof![
            Just(Expertise::Layman),
            Just(Expertise::Proficient),
            Just(Expertise::Expert),
            Just(Expertise::MultipleExperts),
        ],
        prop_oneof![
            Just(Knowledge::Public),
            Just(Knowledge::Restricted),
            Just(Knowledge::Confidential),
            Just(Knowledge::StrictlyConfidential),
        ],
        prop_oneof![
            Just(WindowOfOpportunity::Unlimited),
            Just(WindowOfOpportunity::Easy),
            Just(WindowOfOpportunity::Moderate),
            Just(WindowOfOpportunity::Difficult),
        ],
        prop_oneof![
            Just(Equipment::Standard),
            Just(Equipment::Specialized),
            Just(Equipment::Bespoke),
            Just(Equipment::MultipleBespoke),
        ],
    )
        .prop_map(|(et, ex, kn, wo, eq)| AttackPotential::new(et, ex, kn, wo, eq))
}

proptest! {
    /// The risk value is always within the defined 1..=5 range and the treatment
    /// threshold is consistent with it.
    #[test]
    fn risk_matrix_is_bounded(impact in arb_impact(), feasibility in arb_feasibility()) {
        let risk = RiskMatrix::new().risk(impact, feasibility);
        prop_assert!(risk >= RiskValue::MIN && risk <= RiskValue::MAX);
        prop_assert_eq!(risk.requires_treatment(), risk.get() >= 4);
    }

    /// Risk never decreases when either the impact or the feasibility increases.
    #[test]
    fn risk_matrix_is_monotone(
        i1 in arb_impact(), i2 in arb_impact(),
        f1 in arb_feasibility(), f2 in arb_feasibility()
    ) {
        let m = RiskMatrix::new();
        if i1 <= i2 && f1 <= f2 {
            prop_assert!(m.risk(i1, f1) <= m.risk(i2, f2));
        }
    }

    /// The attack-potential rating always agrees with the band table of Annex G and
    /// higher totals can only reduce the feasibility.
    #[test]
    fn attack_potential_rating_matches_bands(ap in arb_potential(), other in arb_potential()) {
        prop_assert_eq!(ap.rating(), tables::feasibility_for_potential(ap.total()));
        if ap.total() <= other.total() {
            prop_assert!(ap.rating() >= other.rating());
        }
    }

    /// Hashtag normalisation is idempotent and never yields a `#` prefix.
    #[test]
    fn hashtag_normalisation_is_idempotent(raw in "[#]?[A-Za-z0-9_ -]{0,24}") {
        let once = Hashtag::new(&raw);
        let twice = Hashtag::new(once.as_str());
        prop_assert_eq!(once.as_str(), twice.as_str());
        prop_assert!(!once.as_str().starts_with('#'));
        prop_assert!(once.as_str().chars().all(|c| c.is_alphanumeric()));
    }

    /// Tokenisation never produces empty tokens and is stable under re-joining.
    #[test]
    fn tokenize_produces_clean_tokens(text in ".{0,200}") {
        let tokens = tokenize(&text);
        prop_assert!(tokens.iter().all(|t| !t.is_empty()));
        let rejoined = tokens.join(" ");
        prop_assert_eq!(tokenize(&rejoined), tokens);
    }

    /// Every extracted price is positive, finite and bounded, and the
    /// representative price lies within the observed range.
    #[test]
    fn extracted_prices_are_sane(amount in 1u32..100_000u32, noise in ".{0,40}") {
        let text = format!("{noise} selling for {amount} EUR obo");
        let prices = extract_prices(&text);
        prop_assert!(prices.iter().all(|p| p.is_finite() && *p > 0.0 && *p < 1_000_000.0));
        if let Some(median) = representative_price(&prices) {
            let min = prices.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = prices.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(median >= min && median <= max);
        }
    }

    /// k-means never loses or invents observations and keeps cluster centres within
    /// the data range.
    #[test]
    fn kmeans_preserves_mass(values in prop::collection::vec(0.0f64..10_000.0, 0..60), k in 1usize..5) {
        let clusters = kmeans_1d(&values, k, 30);
        let total: usize = clusters.iter().map(|c| c.members.len()).sum();
        prop_assert_eq!(total, values.len());
        if !values.is_empty() {
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for cluster in &clusters {
                prop_assert!(cluster.center >= min - 1e-9 && cluster.center <= max + 1e-9);
            }
        }
    }

    /// Break-even algebra: the forward and inverse functions of Equations 3 and 5
    /// are consistent, and the break-even volume grows with the number of
    /// competitors.
    #[test]
    fn break_even_round_trip(
        fc in 1.0f64..1_000_000.0,
        margin in 1.0f64..5_000.0,
        vcu in 0.0f64..1_000.0,
        n in 1u32..8
    ) {
        let analysis = BreakEvenAnalysis::new(fc, vcu + margin, vcu, n);
        let bep = analysis.break_even_units().expect("positive margin");
        let fc_back = analysis.fixed_cost_for_break_even(bep);
        prop_assert!((fc_back - fc).abs() / fc < 1e-9);
        let crowded = BreakEvenAnalysis::new(fc, vcu + margin, vcu, n + 1);
        prop_assert!(crowded.break_even_units().unwrap() > bep - 1e-9);
    }

    /// Dates and windows: a window always contains its bounds and containment is
    /// consistent with the ordering.
    #[test]
    fn date_windows_are_consistent(
        y1 in 2000i32..2030, m1 in 1u8..=12, d1 in 1u8..=28,
        y2 in 2000i32..2030, m2 in 1u8..=12, d2 in 1u8..=28,
        y3 in 2000i32..2030, m3 in 1u8..=12, d3 in 1u8..=28
    ) {
        let a = SimDate::new(y1, m1, d1);
        let b = SimDate::new(y2, m2, d2);
        let probe = SimDate::new(y3, m3, d3);
        let window = DateWindow::new(a, b);
        prop_assert!(window.contains(window.from));
        prop_assert!(window.contains(window.to));
        prop_assert_eq!(window.contains(probe), probe >= window.from && probe <= window.to);
    }
}
