//! Property-based tests for the indexed scoring path: on randomized corpora,
//! the `CorpusIndex` answers every query exactly like the naive
//! `Query::matches` scan, and the `ScoringEngine` produces SAI lists identical
//! to the naive reference — probabilities summing to 1 whenever any evidence
//! exists.  The streaming path is pinned the same way: appending posts to an
//! index (or ingesting them into a `LiveEngine`) in arbitrary chunks is
//! bit-identical to rebuilding from scratch and to the naive oracle.

use proptest::prelude::*;
use psp_suite::psp::config::PspConfig;
use psp_suite::psp::engine::{LiveEngine, ScoringEngine, ShardedEngine};
use psp_suite::psp::keyword_db::KeywordDatabase;
use psp_suite::psp::sai::SaiList;
use psp_suite::socialsim::corpus::Corpus;
use psp_suite::socialsim::engagement::Engagement;
use psp_suite::socialsim::index::ShardSpec;
use psp_suite::socialsim::post::{Post, Region, TargetApplication};
use psp_suite::socialsim::query::Query;
use psp_suite::socialsim::time::{DateWindow, SimDate};
use psp_suite::socialsim::user::User;

/// Word pool for synthetic post text: attack tags, their fragments, and noise.
const WORDS: [&str; 14] = [
    "#dpfdelete",
    "dpfdelete",
    "#egrdelete",
    "egr",
    "#chiptuning",
    "chiptuning",
    "kit",
    "sale",
    "360",
    "EUR",
    "excavator",
    "quarry",
    "#jobsite",
    "install",
];

/// Keywords to query with: exact tags, substrings and misses.
const QUERY_TERMS: [&str; 8] = [
    "dpfdelete",
    "dpf",
    "egrdelete",
    "egr",
    "chiptuning",
    "chip",
    "kit",
    "zzz-none",
];

fn arb_region() -> impl Strategy<Value = Region> {
    prop_oneof![
        Just(Region::Europe),
        Just(Region::NorthAmerica),
        Just(Region::AsiaPacific),
    ]
}

fn arb_application() -> impl Strategy<Value = TargetApplication> {
    prop_oneof![
        Just(TargetApplication::Excavator),
        Just(TargetApplication::PassengerCar),
        Just(TargetApplication::Agriculture),
    ]
}

fn arb_post() -> impl Strategy<Value = Post> {
    (
        prop::collection::vec(0usize..WORDS.len(), 0..7),
        2015i32..2024,
        1u8..=12,
        1u8..=28,
        arb_region(),
        arb_application(),
        0u64..50_000,
        0u64..500,
    )
        .prop_map(
            |(word_ids, year, month, day, region, application, views, likes)| {
                let text: Vec<&str> = word_ids.iter().map(|i| WORDS[*i]).collect();
                Post::new(
                    0,
                    User::new("prop_user", views / 100, 24),
                    text.join(" "),
                    vec![],
                    SimDate::new(year, month, day),
                    region,
                    application,
                    Engagement::new(views, likes, likes / 4, likes / 8),
                )
            },
        )
}

fn arb_corpus() -> impl Strategy<Value = Corpus> {
    prop::collection::vec(arb_post(), 0..40).prop_map(|posts| {
        Corpus::from_posts(
            posts
                .into_iter()
                .enumerate()
                .map(|(id, post)| {
                    Post::new(
                        id as u64 + 1,
                        post.author().clone(),
                        post.text(),
                        vec![],
                        post.date(),
                        post.region(),
                        post.application(),
                        *post.engagement(),
                    )
                })
                .collect::<Vec<_>>(),
        )
    })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        prop::collection::vec(0usize..QUERY_TERMS.len(), 0..3),
        prop::collection::vec(0usize..QUERY_TERMS.len(), 0..2),
        prop_oneof![
            Just(None),
            Just(Some(Region::Europe)),
            Just(Some(Region::AsiaPacific))
        ],
        prop_oneof![
            Just(None),
            Just(Some(TargetApplication::Excavator)),
            Just(Some(TargetApplication::PassengerCar)),
        ],
        prop_oneof![
            Just(None),
            Just(Some((2016i32, 2019i32))),
            Just(Some((2020i32, 2023i32)))
        ],
    )
        .prop_map(|(keywords, hashtags, region, application, window)| {
            let mut query = Query::new();
            for k in keywords {
                query = query.with_keyword(QUERY_TERMS[k]);
            }
            for h in hashtags {
                query = query.with_hashtag(QUERY_TERMS[h]);
            }
            if let Some(region) = region {
                query = query.in_region(region);
            }
            if let Some(application) = application {
                query = query.about(application);
            }
            if let Some((from, to)) = window {
                query = query.within(DateWindow::years(from, to));
            }
            query
        })
}

/// Random shard axes and granularities: 1-4-year time buckets or regions.
fn arb_spec() -> impl Strategy<Value = ShardSpec> {
    prop_oneof![
        (1i32..5).prop_map(ShardSpec::ByTimeYears),
        Just(ShardSpec::ByRegion),
    ]
}

fn naive_ids(corpus: &Corpus, query: &Query) -> Vec<u64> {
    corpus
        .posts()
        .iter()
        .filter(|p| query.matches(p))
        .map(Post::id)
        .collect()
}

fn indexed_ids(corpus: &Corpus, query: &Query) -> Vec<u64> {
    corpus
        .build_index()
        .matching_posts(corpus, query)
        .iter()
        .map(|p| p.id())
        .collect()
}

proptest! {
    /// The inverted index answers every query with exactly the posts the naive
    /// `Query::matches` scan returns, in the same order.
    #[test]
    fn indexed_query_equals_naive_scan(corpus in arb_corpus(), query in arb_query()) {
        prop_assert_eq!(naive_ids(&corpus, &query), indexed_ids(&corpus, &query));
    }

    /// The engine's SAI list is identical to the naive reference computation —
    /// same entries, same order, bit-identical scores and probabilities.
    #[test]
    fn engine_sai_equals_naive_reference(corpus in arb_corpus()) {
        let db = KeywordDatabase::excavator_seed();
        let config = PspConfig::excavator_europe();
        let engine = ScoringEngine::new(&corpus);
        prop_assert_eq!(
            engine.sai_list(&db, &config),
            SaiList::compute_naive(&corpus, &db, &config)
        );
    }

    /// SAI attack probabilities computed through the engine always sum to 1
    /// when any evidence exists, and are all zero otherwise.
    #[test]
    fn engine_probabilities_sum_to_one(corpus in arb_corpus()) {
        let db = KeywordDatabase::excavator_seed();
        let config = PspConfig::excavator_europe();
        let sai = ScoringEngine::new(&corpus).sai_list(&db, &config);
        let mass: f64 = sai.entries().iter().map(|e| e.sai).sum();
        let total: f64 = sai.entries().iter().map(|e| e.probability).sum();
        if mass > 0.0 {
            prop_assert!((total - 1.0).abs() < 1e-9, "probabilities sum to {total}");
        } else {
            prop_assert_eq!(total, 0.0);
        }
    }

    /// Batched multi-window scoring matches per-window scoring on random
    /// corpora (the monitoring hot path).
    #[test]
    fn batched_windows_equal_individual_windows(corpus in arb_corpus(), from in 2015i32..2022) {
        let db = KeywordDatabase::excavator_seed();
        let configs: Vec<PspConfig> = (from..from + 3)
            .map(|y| PspConfig::excavator_europe().with_window(DateWindow::years(y, y + 1)))
            .collect();
        let engine = ScoringEngine::new(&corpus);
        let batch = engine.sai_lists(&db, &configs);
        prop_assert_eq!(batch.len(), configs.len());
        for (config, list) in configs.iter().zip(&batch) {
            prop_assert_eq!(list, &engine.sai_list(&db, config));
        }
    }

    /// Building an index over a prefix and appending the rest answers every
    /// query exactly like an index built over the whole corpus in one pass —
    /// regardless of where the corpus is split.
    #[test]
    fn appended_index_equals_rebuilt_index(
        corpus in arb_corpus(),
        split_percent in 0usize..=100,
        query in arb_query(),
    ) {
        let posts = corpus.posts().to_vec();
        let split = posts.len() * split_percent / 100;
        let mut grown = Corpus::from_posts(posts[..split].to_vec());
        let mut index = grown.build_index();
        for post in &posts[split..] {
            grown.push(post.clone());
        }
        index.append(&grown, posts.len() - split);
        prop_assert_eq!(index.post_count(), corpus.posts().len());
        prop_assert_eq!(
            index.query(&grown, &query),
            corpus.build_index().query(&corpus, &query)
        );
    }

    /// Append-then-score is bit-identical to rebuild-then-score *and* to the
    /// naive oracle: a `LiveEngine` fed the corpus in arbitrary chunk sizes —
    /// scoring between ingests so the signal cache is genuinely warm — ends up
    /// exactly where a cold engine over the full corpus starts.
    #[test]
    fn ingest_then_score_equals_rebuild_then_score(
        corpus in arb_corpus(),
        chunk in 1usize..9,
    ) {
        let db = KeywordDatabase::excavator_seed();
        let config = PspConfig::excavator_europe();
        let posts = corpus.posts().to_vec();
        let mut live = LiveEngine::new(Corpus::new());
        for batch in posts.chunks(chunk) {
            live.ingest(batch.to_vec());
            // Score mid-stream: memoises signals that the final comparison
            // must not be perturbed by.
            let _ = live.sai_list(&db, &config);
        }
        prop_assert_eq!(live.post_count(), posts.len());
        let warm = live.sai_list(&db, &config);
        prop_assert_eq!(&warm, &ScoringEngine::new(&corpus).sai_list(&db, &config));
        prop_assert_eq!(&warm, &SaiList::compute_naive(&corpus, &db, &config));
    }

    /// The sharded engine — any shard axis, any granularity — produces SAI
    /// lists bit-identical to the unsharded engine *and* to the naive oracle,
    /// with and without the poisoning filter and a window: counts merge as
    /// sums, while the order-sensitive float evidence is re-folded in global
    /// post order, so not a single bit may drift.
    #[test]
    fn sharded_sai_equals_unsharded_and_naive(corpus in arb_corpus(), spec in arb_spec()) {
        let db = KeywordDatabase::excavator_seed();
        let sharded = ShardedEngine::new(corpus.clone(), spec);
        let configs = [
            PspConfig::excavator_europe(),
            PspConfig::excavator_europe()
                .with_window(DateWindow::years(2017, 2021))
                .with_poisoning_filter(0.25),
        ];
        for config in &configs {
            let merged = sharded.sai_list(&db, config);
            prop_assert_eq!(&merged, &ScoringEngine::new(&corpus).sai_list(&db, config));
            prop_assert_eq!(&merged, &SaiList::compute_naive(&corpus, &db, config));
        }
    }

    /// Sharding a finished corpus and ingesting the same posts batch by batch
    /// into a sharded engine converge to the same state: same shard layout,
    /// same global order, bit-identical scores.
    #[test]
    fn shard_then_ingest_equals_ingest_then_shard(
        corpus in arb_corpus(),
        split_percent in 0usize..=100,
        chunk in 1usize..7,
        spec in arb_spec(),
    ) {
        let db = KeywordDatabase::excavator_seed();
        let config = PspConfig::excavator_europe();
        let posts = corpus.posts().to_vec();
        let split = posts.len() * split_percent / 100;

        let mut ingested = ShardedEngine::new(Corpus::from_posts(posts[..split].to_vec()), spec);
        for batch in posts[split..].chunks(chunk) {
            ingested.ingest(batch.to_vec());
        }
        let resharded = ShardedEngine::new(corpus.clone(), spec);

        prop_assert_eq!(ingested.post_count(), resharded.post_count());
        prop_assert_eq!(ingested.shard_sizes(), resharded.shard_sizes());
        prop_assert_eq!(ingested.snapshot_corpus(), corpus);
        prop_assert_eq!(
            ingested.sai_list(&db, &config),
            resharded.sai_list(&db, &config)
        );
    }

    /// Sharded windowed batch scoring — where shard pruning kicks in — stays
    /// bit-identical to the snapshot engine's batch path for every window.
    #[test]
    fn sharded_windows_equal_snapshot_windows(
        corpus in arb_corpus(),
        from in 2015i32..2022,
        spec in arb_spec(),
    ) {
        let db = KeywordDatabase::excavator_seed();
        let configs: Vec<PspConfig> = (from..from + 3)
            .map(|y| PspConfig::excavator_europe().with_window(DateWindow::years(y, y + 1)))
            .collect();
        let sharded = ShardedEngine::new(corpus.clone(), spec);
        prop_assert_eq!(
            sharded.sai_lists(&db, &configs),
            ScoringEngine::new(&corpus).sai_lists(&db, &configs)
        );
    }

    /// Windowed batch scoring through a live, incrementally fed engine matches
    /// the cold snapshot engine — the monitoring re-evaluation path stays
    /// bit-exact under streaming ingestion with out-of-order dates.
    #[test]
    fn live_windows_equal_snapshot_windows(corpus in arb_corpus(), from in 2015i32..2022) {
        let db = KeywordDatabase::excavator_seed();
        let configs: Vec<PspConfig> = (from..from + 3)
            .map(|y| PspConfig::excavator_europe().with_window(DateWindow::years(y, y + 1)))
            .collect();
        let posts = corpus.posts().to_vec();
        let mut live = LiveEngine::new(Corpus::new());
        for batch in posts.chunks(5) {
            live.ingest(batch.to_vec());
        }
        prop_assert_eq!(
            live.sai_lists(&db, &configs),
            ScoringEngine::new(&corpus).sai_lists(&db, &configs)
        );
    }
}
