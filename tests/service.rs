//! Concurrency suite for the TARA service: snapshot isolation under load.
//!
//! The property being pinned: a response computed while ingest runs is
//! **bit-identical** to what a standalone engine that stopped at the
//! response's stamped generation would produce.  No torn reads, no partially
//! visible batches, no drift between the snapshot path and a cold engine —
//! on both engine shapes, across forced shim thread counts, through both the
//! synchronous `handle` path and the worker-pool `submit` path.

use psp_suite::psp::classify::AttackOrigin;
use psp_suite::psp::config::PspConfig;
use psp_suite::psp::engine::{
    CellId, IngestReceipt, MatrixSpec, SaiScorer, ShardedEngine, SignalCacheFile, StreamingScorer,
    WindowAxis,
};
use psp_suite::psp::keyword_db::{KeywordDatabase, KeywordProfile};
use psp_suite::psp::monitoring::MonitoringSeries;
use psp_suite::psp::sai::SaiList;
use psp_suite::psp::service::{
    MonitorSpec, ServiceEvent, ServiceRegistry, ServiceRequest, ServiceResponse, TaraService,
};
use psp_suite::psp::LiveEngine;
use psp_suite::socialsim::corpus::Corpus;
use psp_suite::socialsim::post::Post;
use psp_suite::socialsim::scenario;
use psp_suite::socialsim::time::DateWindow;
use psp_suite::vehicle::attack_surface::AttackVector;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

/// Runs `f` under a forced shim thread count; a no-op pass-through when the
/// real rayon is swapped in.
fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    #[cfg(feature = "shim-rayon")]
    {
        rayon::with_thread_count(threads, f)
    }
    #[cfg(not(feature = "shim-rayon"))]
    {
        let _ = threads;
        f()
    }
}

/// The sweep axis every test asks for: full history plus two paper windows.
fn axis() -> WindowAxis {
    WindowAxis::new()
        .full_history()
        .window(DateWindow::years(2019, 2021))
        .window(DateWindow::years(2021, 2023))
}

/// Per-generation reference answers, computed on standalone engines of the
/// same shape the service serves.
struct References {
    score: Vec<SaiList>,
    sweep: Vec<Vec<SaiList>>,
    matrix: Vec<Vec<(CellId, SaiList)>>,
}

fn matrix_spec(db: &KeywordDatabase, config: &PspConfig) -> MatrixSpec {
    MatrixSpec::new()
        .scenario("excavator", db.clone())
        .config("excavator", config.clone())
        .window_axis(&axis())
}

fn references<E: StreamingScorer>(
    make: impl Fn() -> E,
    chunks: &[Vec<Post>],
    db: &KeywordDatabase,
    config: &PspConfig,
) -> References {
    let spec = matrix_spec(db, config);
    let mut refs = References {
        score: Vec::new(),
        sweep: Vec::new(),
        matrix: Vec::new(),
    };
    for generation in 0..=chunks.len() {
        let mut engine = make();
        for chunk in &chunks[..generation] {
            engine.ingest_batch(chunk.clone());
        }
        assert_eq!(engine.generation(), generation as u64);
        refs.score.push(engine.sai_list(db, config));
        refs.sweep.push(engine.sai_windows(db, config, &axis()));
        refs.matrix.push(engine.sai_matrix(&spec).into_cells());
    }
    refs
}

/// The stress harness: `readers` reader threads hammer Score/Sweep/Matrix
/// through the synchronous path while the main thread ingests one batch at a
/// time.  Every response must equal the same-shape standalone reference at
/// its stamped generation.
fn stress_snapshot_isolation<E>(make: impl Fn() -> E + Sync)
where
    E: StreamingScorer + Clone + Send + Sync + 'static,
{
    let posts = scenario::excavator_europe(42).posts().to_vec();
    let chunks: Vec<Vec<Post>> = posts.chunks(520).map(<[Post]>::to_vec).collect();
    let db = KeywordDatabase::excavator_seed();
    let config = PspConfig::excavator_europe();
    let refs = references(&make, &chunks, &db, &config);

    let registry = ServiceRegistry::new()
        .database("excavator", db.clone())
        .config("excavator", config.clone());
    let service = TaraService::with_workers(make(), registry, 2);

    let done = AtomicBool::new(false);
    let checked = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for reader in 0..3_usize {
            let (service, refs, done, checked) = (&service, &refs, &done, &checked);
            scope.spawn(move || {
                with_threads(1 + reader % 3, || {
                    let mut rounds = 0_usize;
                    // Keep reading until the writer finishes, then one final
                    // round against the settled engine.
                    while rounds == 0 || !done.load(Ordering::SeqCst) {
                        rounds += 1;
                        match reader % 3 {
                            0 => match service.handle(ServiceRequest::Score {
                                db: "excavator".into(),
                                config: "excavator".into(),
                            }) {
                                ServiceResponse::Score { generation, sai } => {
                                    assert_eq!(sai, refs.score[generation as usize]);
                                }
                                other => panic!("unexpected response: {other:?}"),
                            },
                            1 => match service.handle(ServiceRequest::Sweep {
                                db: "excavator".into(),
                                config: "excavator".into(),
                                windows: axis(),
                            }) {
                                ServiceResponse::Sweep { generation, lists } => {
                                    assert_eq!(lists, refs.sweep[generation as usize]);
                                }
                                other => panic!("unexpected response: {other:?}"),
                            },
                            _ => match service.handle(ServiceRequest::Matrix {
                                scenarios: vec!["excavator".into()],
                                configs: vec!["excavator".into()],
                                windows: axis(),
                            }) {
                                ServiceResponse::Matrix { generation, cells } => {
                                    assert_eq!(cells, refs.matrix[generation as usize]);
                                }
                                other => panic!("unexpected response: {other:?}"),
                            },
                        }
                    }
                    checked.fetch_add(rounds, Ordering::SeqCst);
                });
            });
        }

        // The writer: publish one generation per batch, yielding so readers
        // get scheduled between (and during) publications.
        for (n, chunk) in chunks.iter().enumerate() {
            match service.handle(ServiceRequest::Ingest {
                posts: chunk.clone(),
            }) {
                ServiceResponse::Ingested {
                    appended,
                    generation,
                } => {
                    assert_eq!(appended, chunk.len());
                    assert_eq!(generation, n as u64 + 1);
                }
                other => panic!("unexpected response: {other:?}"),
            }
            std::thread::yield_now();
        }
        done.store(true, Ordering::SeqCst);
    });
    assert!(checked.load(Ordering::SeqCst) >= 3, "every reader ran");

    // After the dust settles the service serves the final generation, and the
    // pooled path answers with the same bits as the synchronous path.
    match service.handle(ServiceRequest::Status) {
        ServiceResponse::Status {
            posts: served,
            generation,
            ..
        } => {
            assert_eq!(served, posts.len());
            assert_eq!(generation, chunks.len() as u64);
        }
        other => panic!("unexpected response: {other:?}"),
    }
    let tickets: Vec<_> = (0..3)
        .map(|n| {
            service.submit(match n {
                0 => ServiceRequest::Score {
                    db: "excavator".into(),
                    config: "excavator".into(),
                },
                1 => ServiceRequest::Sweep {
                    db: "excavator".into(),
                    config: "excavator".into(),
                    windows: axis(),
                },
                _ => ServiceRequest::Matrix {
                    scenarios: vec!["excavator".into()],
                    configs: vec!["excavator".into()],
                    windows: axis(),
                },
            })
        })
        .collect();
    for ticket in tickets {
        match ticket.wait() {
            ServiceResponse::Score { generation, sai } => {
                assert_eq!(sai, refs.score[generation as usize]);
            }
            ServiceResponse::Sweep { generation, lists } => {
                assert_eq!(lists, refs.sweep[generation as usize]);
            }
            ServiceResponse::Matrix { generation, cells } => {
                assert_eq!(cells, refs.matrix[generation as usize]);
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
}

#[test]
fn concurrent_responses_are_bit_exact_on_the_live_engine() {
    stress_snapshot_isolation(|| LiveEngine::new(Corpus::new()));
}

#[test]
fn concurrent_responses_are_bit_exact_on_the_sharded_engine() {
    stress_snapshot_isolation(|| {
        ShardedEngine::new(
            Corpus::new(),
            psp_suite::socialsim::index::ShardSpec::yearly(),
        )
    });
}

#[test]
fn a_snapshot_taken_before_ingest_keeps_answering_its_generation() {
    let db = KeywordDatabase::excavator_seed();
    let config = PspConfig::excavator_europe();
    let registry = ServiceRegistry::new()
        .database("excavator", db.clone())
        .config("excavator", config.clone());
    let service =
        TaraService::with_workers(LiveEngine::new(scenario::excavator_europe(7)), registry, 1);

    let pinned = service.snapshot();
    let before = pinned.sai_list(&db, &config);
    match service.handle(ServiceRequest::Ingest {
        posts: scenario::excavator_europe(8).posts().to_vec(),
    }) {
        ServiceResponse::Ingested { generation, .. } => assert_eq!(generation, 1),
        other => panic!("unexpected response: {other:?}"),
    }
    // The pinned snapshot still serves generation 0 bit-for-bit...
    assert_eq!(pinned.generation(), 0);
    assert_eq!(pinned.sai_list(&db, &config), before);
    assert_eq!(
        before,
        LiveEngine::new(scenario::excavator_europe(7)).sai_list(&db, &config)
    );
    // ...while the service has moved on.
    match service.handle(ServiceRequest::Score {
        db: "excavator".into(),
        config: "excavator".into(),
    }) {
        ServiceResponse::Score { generation, sai } => {
            assert_eq!(generation, 1);
            assert_ne!(sai, before);
        }
        other => panic!("unexpected response: {other:?}"),
    }
}

#[test]
fn the_wire_layer_round_trips_every_request_shape() {
    use psp_suite::psp::service::wire::{
        decode_request, encode_response, WireRequest, WireResponse,
    };

    let requests = vec![
        ServiceRequest::Status,
        ServiceRequest::ExportCache,
        ServiceRequest::Score {
            db: "excavator".into(),
            config: "excavator".into(),
        },
        ServiceRequest::Sweep {
            db: "excavator".into(),
            config: "excavator".into(),
            windows: axis(),
        },
        ServiceRequest::Matrix {
            scenarios: vec!["excavator".into()],
            configs: vec!["excavator".into()],
            windows: axis(),
        },
        ServiceRequest::Ingest {
            posts: scenario::excavator_europe(8).posts()[..3].to_vec(),
        },
    ];
    let registry = ServiceRegistry::new()
        .database("excavator", KeywordDatabase::excavator_seed())
        .config("excavator", PspConfig::excavator_europe());
    let service =
        TaraService::with_workers(LiveEngine::new(scenario::excavator_europe(7)), registry, 1);

    for (id, request) in requests.into_iter().enumerate() {
        let id = id as u64 + 1;
        let line = serde_json::to_string(&WireRequest {
            id,
            request: request.clone(),
        })
        .unwrap();
        let decoded = decode_request(&line).unwrap();
        assert_eq!(decoded.id, id);
        assert_eq!(decoded.request, request);

        // Execute and round-trip the response line too: everything the
        // service can answer must survive the wire.
        let response = service.handle(decoded.request);
        let wire = WireResponse { id, response };
        let encoded = encode_response(&wire);
        assert_eq!(
            serde_json::from_str::<WireResponse>(&encoded).unwrap(),
            wire
        );
    }
}

// ---------------------------------------------------------------------------
// Hardening: panic resilience, deadlines, subscriptions, scheduled sweeps.
// ---------------------------------------------------------------------------

/// The keyword that makes [`ChaosEngine`] panic when it appears in the
/// scored database.
const CHAOS_KEYWORD: &str = "panictag";

/// A database whose only profile carries the chaos trigger keyword.
fn chaos_db() -> KeywordDatabase {
    let mut db = KeywordDatabase::new();
    db.insert(KeywordProfile::manual(
        CHAOS_KEYWORD,
        "chaos",
        AttackVector::Local,
        AttackOrigin::Insider,
    ));
    db
}

/// An engine that panics when asked to score the chaos database — the
/// injected fault for the panic-resilience tests.  Everything else
/// delegates to a real [`LiveEngine`].
#[derive(Debug, Clone)]
struct ChaosEngine {
    inner: LiveEngine,
}

impl SaiScorer for ChaosEngine {
    fn sai_list(&self, db: &KeywordDatabase, config: &PspConfig) -> SaiList {
        assert!(!db.contains(CHAOS_KEYWORD), "chaos: injected scoring panic");
        self.inner.sai_list(db, config)
    }

    fn sai_lists(&self, db: &KeywordDatabase, configs: &[PspConfig]) -> Vec<SaiList> {
        assert!(!db.contains(CHAOS_KEYWORD), "chaos: injected scoring panic");
        self.inner.sai_lists(db, configs)
    }
}

impl StreamingScorer for ChaosEngine {
    fn ingest_batch(&mut self, batch: Vec<Post>) -> IngestReceipt {
        self.inner.ingest_batch(batch)
    }

    fn post_count(&self) -> usize {
        self.inner.post_count()
    }

    fn generation(&self) -> u64 {
        self.inner.generation()
    }

    fn export_signal_cache(&self) -> SignalCacheFile {
        self.inner.export_signal_cache()
    }

    fn snapshot_corpus(&self) -> Corpus {
        self.inner.snapshot_corpus()
    }

    fn restore_generation(&mut self, generation: u64) {
        self.inner.restore_generation(generation);
    }
}

/// An engine that sleeps on every scoring call, so a short per-request
/// deadline reliably expires at a cooperative check point mid-sweep.
#[derive(Debug, Clone)]
struct SlowEngine {
    inner: LiveEngine,
    delay: Duration,
}

impl SaiScorer for SlowEngine {
    fn sai_list(&self, db: &KeywordDatabase, config: &PspConfig) -> SaiList {
        std::thread::sleep(self.delay);
        self.inner.sai_list(db, config)
    }

    fn sai_lists(&self, db: &KeywordDatabase, configs: &[PspConfig]) -> Vec<SaiList> {
        std::thread::sleep(self.delay);
        self.inner.sai_lists(db, configs)
    }
}

impl StreamingScorer for SlowEngine {
    fn ingest_batch(&mut self, batch: Vec<Post>) -> IngestReceipt {
        self.inner.ingest_batch(batch)
    }

    fn post_count(&self) -> usize {
        self.inner.post_count()
    }

    fn generation(&self) -> u64 {
        self.inner.generation()
    }

    fn export_signal_cache(&self) -> SignalCacheFile {
        self.inner.export_signal_cache()
    }

    fn snapshot_corpus(&self) -> Corpus {
        self.inner.snapshot_corpus()
    }

    fn restore_generation(&mut self, generation: u64) {
        self.inner.restore_generation(generation);
    }
}

/// The tentpole regression: a panicking request used to kill its
/// `tara-worker-*` thread for good (and leave its ticket hanging).  It must
/// answer the ticket with a structured `internal-error` response, and the
/// pool must keep serving afterwards.
#[test]
fn a_panicking_request_answers_its_ticket_and_the_worker_survives() {
    let registry = ServiceRegistry::new()
        .database("excavator", KeywordDatabase::excavator_seed())
        .database("chaos", chaos_db())
        .config("excavator", PspConfig::excavator_europe());
    let service = TaraService::with_workers(
        ChaosEngine {
            inner: LiveEngine::new(scenario::excavator_europe(7)),
        },
        registry,
        1,
    );

    let ticket = service.submit(ServiceRequest::Score {
        db: "chaos".into(),
        config: "excavator".into(),
    });
    match ticket.wait() {
        ServiceResponse::Error { error } => {
            assert_eq!(error.kind, "internal-error");
            assert!(error.detail.contains("chaos"), "detail: {}", error.detail);
        }
        other => panic!("unexpected response: {other:?}"),
    }

    // The single worker survived the panic: a normal request still completes.
    match service
        .submit(ServiceRequest::Score {
            db: "excavator".into(),
            config: "excavator".into(),
        })
        .wait()
    {
        ServiceResponse::Score { generation, .. } => assert_eq!(generation, 0),
        other => panic!("unexpected response: {other:?}"),
    }
}

/// A storm of panicking requests — more than there are workers — must not
/// shrink the pool, and `Status` must count every caught panic.
#[test]
fn a_panic_storm_leaves_the_pool_fully_alive() {
    let registry = ServiceRegistry::new()
        .database("excavator", KeywordDatabase::excavator_seed())
        .database("chaos", chaos_db())
        .config("excavator", PspConfig::excavator_europe());
    let service = TaraService::with_workers(
        ChaosEngine {
            inner: LiveEngine::new(scenario::excavator_europe(7)),
        },
        registry,
        2,
    );

    let storm = 6;
    let tickets: Vec<_> = (0..storm)
        .map(|_| {
            service.submit(ServiceRequest::Score {
                db: "chaos".into(),
                config: "excavator".into(),
            })
        })
        .collect();
    for ticket in tickets {
        match ticket.wait() {
            ServiceResponse::Error { error } => assert_eq!(error.kind, "internal-error"),
            other => panic!("unexpected response: {other:?}"),
        }
    }

    // Every worker is still draining: a burst wider than the pool completes.
    let tickets: Vec<_> = (0..4)
        .map(|_| service.submit(ServiceRequest::Status))
        .collect();
    for ticket in tickets {
        match ticket.wait() {
            ServiceResponse::Status { panicked, .. } => assert_eq!(panicked, storm),
            other => panic!("unexpected response: {other:?}"),
        }
    }
}

/// A slow request under a short deadline answers `Expired` (observed at a
/// cooperative check point between sweep windows) instead of hanging, and
/// the service keeps serving afterwards.
#[test]
fn deadline_expiry_answers_expired_without_hanging() {
    let registry = ServiceRegistry::new()
        .database("excavator", KeywordDatabase::excavator_seed())
        .config("excavator", PspConfig::excavator_europe());
    let service = TaraService::with_workers(
        SlowEngine {
            inner: LiveEngine::new(scenario::excavator_europe(7)),
            delay: Duration::from_millis(25),
        },
        registry,
        1,
    );

    let ticket = service.submit_with_deadline(
        ServiceRequest::Sweep {
            db: "excavator".into(),
            config: "excavator".into(),
            windows: axis(),
        },
        Duration::from_millis(5),
    );
    match ticket.wait() {
        ServiceResponse::Expired { waited_ms } => assert!(waited_ms >= 5, "waited {waited_ms}ms"),
        other => panic!("unexpected response: {other:?}"),
    }

    // An ample deadline answers normally through the same path.
    match service
        .submit_with_deadline(ServiceRequest::Status, Duration::from_secs(600))
        .wait()
    {
        ServiceResponse::Status { generation, .. } => assert_eq!(generation, 0),
        other => panic!("unexpected response: {other:?}"),
    }
}

/// The cooperative (per-window / per-cell) execution a deadline switches on
/// must not change a single bit of the answer relative to the monolithic
/// plain path — including a matrix with an empty window grid, where each
/// configuration's own window applies.
#[test]
fn deadline_path_results_are_bit_identical_to_the_plain_path() {
    let registry = ServiceRegistry::new()
        .database("excavator", KeywordDatabase::excavator_seed())
        .database("passenger-car", KeywordDatabase::passenger_car_seed())
        .config("excavator", PspConfig::excavator_europe())
        .config("passenger-car", PspConfig::passenger_car_europe());
    let service =
        TaraService::with_workers(LiveEngine::new(scenario::excavator_europe(7)), registry, 2);

    let requests = vec![
        ServiceRequest::Sweep {
            db: "excavator".into(),
            config: "excavator".into(),
            windows: axis(),
        },
        ServiceRequest::Matrix {
            scenarios: vec!["excavator".into(), "passenger-car".into()],
            configs: vec!["excavator".into(), "passenger-car".into()],
            windows: axis(),
        },
        ServiceRequest::Matrix {
            scenarios: vec!["excavator".into()],
            configs: vec!["excavator".into(), "passenger-car".into()],
            windows: WindowAxis::new(), // empty grid: each config's own window
        },
    ];
    for request in requests {
        let plain = service.handle(request.clone());
        let under_deadline = service
            .submit_with_deadline(request, Duration::from_secs(600))
            .wait();
        assert_eq!(plain, under_deadline);
    }
}

/// The monitor spec every subscription test watches.
fn dpf_spec() -> MonitorSpec {
    MonitorSpec {
        db: "excavator".into(),
        config: "excavator".into(),
        scenario: "dpf-tampering".into(),
        from_year: 2019,
        to_year: 2023,
        window_years: 2,
        alert_threshold: 0.25,
    }
}

/// Subscription deltas must be bit-identical to a cold monitoring run on a
/// standalone engine of the same shape, stopped at the delta's stamped
/// generation — on both engine shapes.
fn subscription_deltas_match_cold_runs<E>(make: impl Fn() -> E)
where
    E: StreamingScorer + Clone + Send + Sync + 'static,
{
    let posts = scenario::excavator_europe(42).posts().to_vec();
    let chunks: Vec<Vec<Post>> = posts.chunks(700).map(<[Post]>::to_vec).collect();
    let db = KeywordDatabase::excavator_seed();
    let config = PspConfig::excavator_europe();
    let spec = dpf_spec();

    let registry = ServiceRegistry::new()
        .database("excavator", db.clone())
        .config("excavator", config.clone());
    let service = TaraService::with_workers(make(), registry, 1);
    let subscription = service.subscribe(spec.clone()).expect("valid spec");

    let mut reference = make();
    for (n, chunk) in chunks.iter().enumerate() {
        match service.handle(ServiceRequest::Ingest {
            posts: chunk.clone(),
        }) {
            ServiceResponse::Ingested { generation, .. } => assert_eq!(generation, n as u64 + 1),
            other => panic!("unexpected response: {other:?}"),
        }
        // The delta was pushed synchronously during the ingest request.
        let event = subscription
            .recv_timeout(Duration::from_secs(10))
            .expect("one delta per ingest");
        let ServiceEvent::MonitorDelta {
            subscription: id,
            generation,
            series,
            alerts,
        } = event
        else {
            panic!("unexpected event");
        };
        assert_eq!(id, subscription.id());
        assert_eq!(generation, n as u64 + 1);

        // Cold reference at the stamped generation, same engine shape.
        reference.ingest_batch(chunk.clone());
        let cold = MonitoringSeries::run_on(
            &reference,
            &db,
            &config,
            &spec.scenario,
            spec.from_year,
            spec.to_year,
            spec.window_years,
        );
        assert_eq!(series, cold, "delta != cold run at generation {generation}");
        assert_eq!(alerts, cold.sai_alerts(spec.alert_threshold));
    }
}

#[test]
fn subscription_deltas_are_bit_exact_on_the_live_engine() {
    subscription_deltas_match_cold_runs(|| LiveEngine::new(Corpus::new()));
}

#[test]
fn subscription_deltas_are_bit_exact_on_the_sharded_engine() {
    subscription_deltas_match_cold_runs(|| {
        ShardedEngine::new(
            Corpus::new(),
            psp_suite::socialsim::index::ShardSpec::yearly(),
        )
    });
}

/// An empty ingest publishes nothing and must push no delta.
#[test]
fn empty_ingests_push_no_deltas() {
    let registry = ServiceRegistry::new()
        .database("excavator", KeywordDatabase::excavator_seed())
        .config("excavator", PspConfig::excavator_europe());
    let service =
        TaraService::with_workers(LiveEngine::new(scenario::excavator_europe(7)), registry, 1);
    let subscription = service.subscribe(dpf_spec()).expect("valid spec");
    match service.handle(ServiceRequest::Ingest { posts: Vec::new() }) {
        ServiceResponse::Ingested {
            appended,
            generation,
        } => assert_eq!((appended, generation), (0, 0)),
        other => panic!("unexpected response: {other:?}"),
    }
    assert!(
        subscription.try_recv().is_none(),
        "no publication, no delta"
    );
}

/// Scheduled runs under concurrent ingest: every tick must land on *some*
/// published generation and carry exactly that generation's bits.
#[test]
fn scheduler_ticks_stay_bit_exact_under_concurrent_ingest() {
    let posts = scenario::excavator_europe(42).posts().to_vec();
    let chunks: Vec<Vec<Post>> = posts.chunks(700).map(<[Post]>::to_vec).collect();
    let db = KeywordDatabase::excavator_seed();
    let config = PspConfig::excavator_europe();
    let refs = references(|| LiveEngine::new(Corpus::new()), &chunks, &db, &config);

    let registry = ServiceRegistry::new()
        .database("excavator", db.clone())
        .config("excavator", config.clone());
    let service = TaraService::with_workers(LiveEngine::new(Corpus::new()), registry, 1);

    let job = service
        .schedule(
            ServiceRequest::Score {
                db: "excavator".into(),
                config: "excavator".into(),
            },
            Duration::from_millis(10),
        )
        .expect("schedulable request");

    // Ingest while the scheduler ticks, pausing so ticks land between (and
    // during) publications.
    for chunk in &chunks {
        let _ = service.handle(ServiceRequest::Ingest {
            posts: chunk.clone(),
        });
        std::thread::sleep(Duration::from_millis(15));
    }

    // At least one tick arrives (10ms interval over >= 45ms of ingesting),
    // and every tick is bit-identical to the standalone reference at its
    // stamped generation.
    let mut ticks = 0;
    while let Some(event) = job.recv_timeout(Duration::from_millis(50)) {
        let ServiceEvent::ScheduledRun { job: id, response } = event else {
            panic!("unexpected event");
        };
        assert_eq!(id, job.id());
        match response {
            ServiceResponse::Score { generation, sai } => {
                assert_eq!(sai, refs.score[generation as usize]);
                ticks += 1;
            }
            other => panic!("unexpected scheduled response: {other:?}"),
        }
        if ticks >= 3 {
            break;
        }
    }
    assert!(ticks >= 1, "the scheduler delivered at least one run");

    // Unscheduling stops delivery (drain the in-flight tail first).
    match service.handle(ServiceRequest::Unschedule { id: job.id() }) {
        ServiceResponse::Unscheduled { id } => assert_eq!(id, job.id()),
        other => panic!("unexpected response: {other:?}"),
    }
    while job.recv_timeout(Duration::from_millis(40)).is_some() {}
    assert!(job.recv_timeout(Duration::from_millis(60)).is_none());
}
