//! Concurrency suite for the TARA service: snapshot isolation under load.
//!
//! The property being pinned: a response computed while ingest runs is
//! **bit-identical** to what a standalone engine that stopped at the
//! response's stamped generation would produce.  No torn reads, no partially
//! visible batches, no drift between the snapshot path and a cold engine —
//! on both engine shapes, across forced shim thread counts, through both the
//! synchronous `handle` path and the worker-pool `submit` path.

use psp_suite::psp::config::PspConfig;
use psp_suite::psp::engine::{CellId, MatrixSpec, ShardedEngine, StreamingScorer, WindowAxis};
use psp_suite::psp::keyword_db::KeywordDatabase;
use psp_suite::psp::sai::SaiList;
use psp_suite::psp::service::{ServiceRegistry, ServiceRequest, ServiceResponse, TaraService};
use psp_suite::psp::LiveEngine;
use psp_suite::socialsim::corpus::Corpus;
use psp_suite::socialsim::post::Post;
use psp_suite::socialsim::scenario;
use psp_suite::socialsim::time::DateWindow;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Runs `f` under a forced shim thread count; a no-op pass-through when the
/// real rayon is swapped in.
fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    #[cfg(feature = "shim-rayon")]
    {
        rayon::with_thread_count(threads, f)
    }
    #[cfg(not(feature = "shim-rayon"))]
    {
        let _ = threads;
        f()
    }
}

/// The sweep axis every test asks for: full history plus two paper windows.
fn axis() -> WindowAxis {
    WindowAxis::new()
        .full_history()
        .window(DateWindow::years(2019, 2021))
        .window(DateWindow::years(2021, 2023))
}

/// Per-generation reference answers, computed on standalone engines of the
/// same shape the service serves.
struct References {
    score: Vec<SaiList>,
    sweep: Vec<Vec<SaiList>>,
    matrix: Vec<Vec<(CellId, SaiList)>>,
}

fn matrix_spec(db: &KeywordDatabase, config: &PspConfig) -> MatrixSpec {
    MatrixSpec::new()
        .scenario("excavator", db.clone())
        .config("excavator", config.clone())
        .window_axis(&axis())
}

fn references<E: StreamingScorer>(
    make: impl Fn() -> E,
    chunks: &[Vec<Post>],
    db: &KeywordDatabase,
    config: &PspConfig,
) -> References {
    let spec = matrix_spec(db, config);
    let mut refs = References {
        score: Vec::new(),
        sweep: Vec::new(),
        matrix: Vec::new(),
    };
    for generation in 0..=chunks.len() {
        let mut engine = make();
        for chunk in &chunks[..generation] {
            engine.ingest_batch(chunk.clone());
        }
        assert_eq!(engine.generation(), generation as u64);
        refs.score.push(engine.sai_list(db, config));
        refs.sweep.push(engine.sai_windows(db, config, &axis()));
        refs.matrix.push(engine.sai_matrix(&spec).into_cells());
    }
    refs
}

/// The stress harness: `readers` reader threads hammer Score/Sweep/Matrix
/// through the synchronous path while the main thread ingests one batch at a
/// time.  Every response must equal the same-shape standalone reference at
/// its stamped generation.
fn stress_snapshot_isolation<E>(make: impl Fn() -> E + Sync)
where
    E: StreamingScorer + Clone + Send + Sync + 'static,
{
    let posts = scenario::excavator_europe(42).posts().to_vec();
    let chunks: Vec<Vec<Post>> = posts.chunks(520).map(<[Post]>::to_vec).collect();
    let db = KeywordDatabase::excavator_seed();
    let config = PspConfig::excavator_europe();
    let refs = references(&make, &chunks, &db, &config);

    let registry = ServiceRegistry::new()
        .database("excavator", db.clone())
        .config("excavator", config.clone());
    let service = TaraService::with_workers(make(), registry, 2);

    let done = AtomicBool::new(false);
    let checked = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for reader in 0..3_usize {
            let (service, refs, done, checked) = (&service, &refs, &done, &checked);
            scope.spawn(move || {
                with_threads(1 + reader % 3, || {
                    let mut rounds = 0_usize;
                    // Keep reading until the writer finishes, then one final
                    // round against the settled engine.
                    while rounds == 0 || !done.load(Ordering::SeqCst) {
                        rounds += 1;
                        match reader % 3 {
                            0 => match service.handle(ServiceRequest::Score {
                                db: "excavator".into(),
                                config: "excavator".into(),
                            }) {
                                ServiceResponse::Score { generation, sai } => {
                                    assert_eq!(sai, refs.score[generation as usize]);
                                }
                                other => panic!("unexpected response: {other:?}"),
                            },
                            1 => match service.handle(ServiceRequest::Sweep {
                                db: "excavator".into(),
                                config: "excavator".into(),
                                windows: axis(),
                            }) {
                                ServiceResponse::Sweep { generation, lists } => {
                                    assert_eq!(lists, refs.sweep[generation as usize]);
                                }
                                other => panic!("unexpected response: {other:?}"),
                            },
                            _ => match service.handle(ServiceRequest::Matrix {
                                scenarios: vec!["excavator".into()],
                                configs: vec!["excavator".into()],
                                windows: axis(),
                            }) {
                                ServiceResponse::Matrix { generation, cells } => {
                                    assert_eq!(cells, refs.matrix[generation as usize]);
                                }
                                other => panic!("unexpected response: {other:?}"),
                            },
                        }
                    }
                    checked.fetch_add(rounds, Ordering::SeqCst);
                });
            });
        }

        // The writer: publish one generation per batch, yielding so readers
        // get scheduled between (and during) publications.
        for (n, chunk) in chunks.iter().enumerate() {
            match service.handle(ServiceRequest::Ingest {
                posts: chunk.clone(),
            }) {
                ServiceResponse::Ingested {
                    appended,
                    generation,
                } => {
                    assert_eq!(appended, chunk.len());
                    assert_eq!(generation, n as u64 + 1);
                }
                other => panic!("unexpected response: {other:?}"),
            }
            std::thread::yield_now();
        }
        done.store(true, Ordering::SeqCst);
    });
    assert!(checked.load(Ordering::SeqCst) >= 3, "every reader ran");

    // After the dust settles the service serves the final generation, and the
    // pooled path answers with the same bits as the synchronous path.
    match service.handle(ServiceRequest::Status) {
        ServiceResponse::Status {
            posts: served,
            generation,
            ..
        } => {
            assert_eq!(served, posts.len());
            assert_eq!(generation, chunks.len() as u64);
        }
        other => panic!("unexpected response: {other:?}"),
    }
    let tickets: Vec<_> = (0..3)
        .map(|n| {
            service.submit(match n {
                0 => ServiceRequest::Score {
                    db: "excavator".into(),
                    config: "excavator".into(),
                },
                1 => ServiceRequest::Sweep {
                    db: "excavator".into(),
                    config: "excavator".into(),
                    windows: axis(),
                },
                _ => ServiceRequest::Matrix {
                    scenarios: vec!["excavator".into()],
                    configs: vec!["excavator".into()],
                    windows: axis(),
                },
            })
        })
        .collect();
    for ticket in tickets {
        match ticket.wait() {
            ServiceResponse::Score { generation, sai } => {
                assert_eq!(sai, refs.score[generation as usize]);
            }
            ServiceResponse::Sweep { generation, lists } => {
                assert_eq!(lists, refs.sweep[generation as usize]);
            }
            ServiceResponse::Matrix { generation, cells } => {
                assert_eq!(cells, refs.matrix[generation as usize]);
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
}

#[test]
fn concurrent_responses_are_bit_exact_on_the_live_engine() {
    stress_snapshot_isolation(|| LiveEngine::new(Corpus::new()));
}

#[test]
fn concurrent_responses_are_bit_exact_on_the_sharded_engine() {
    stress_snapshot_isolation(|| {
        ShardedEngine::new(
            Corpus::new(),
            psp_suite::socialsim::index::ShardSpec::yearly(),
        )
    });
}

#[test]
fn a_snapshot_taken_before_ingest_keeps_answering_its_generation() {
    let db = KeywordDatabase::excavator_seed();
    let config = PspConfig::excavator_europe();
    let registry = ServiceRegistry::new()
        .database("excavator", db.clone())
        .config("excavator", config.clone());
    let service =
        TaraService::with_workers(LiveEngine::new(scenario::excavator_europe(7)), registry, 1);

    let pinned = service.snapshot();
    let before = pinned.sai_list(&db, &config);
    match service.handle(ServiceRequest::Ingest {
        posts: scenario::excavator_europe(8).posts().to_vec(),
    }) {
        ServiceResponse::Ingested { generation, .. } => assert_eq!(generation, 1),
        other => panic!("unexpected response: {other:?}"),
    }
    // The pinned snapshot still serves generation 0 bit-for-bit...
    assert_eq!(pinned.generation(), 0);
    assert_eq!(pinned.sai_list(&db, &config), before);
    assert_eq!(
        before,
        LiveEngine::new(scenario::excavator_europe(7)).sai_list(&db, &config)
    );
    // ...while the service has moved on.
    match service.handle(ServiceRequest::Score {
        db: "excavator".into(),
        config: "excavator".into(),
    }) {
        ServiceResponse::Score { generation, sai } => {
            assert_eq!(generation, 1);
            assert_ne!(sai, before);
        }
        other => panic!("unexpected response: {other:?}"),
    }
}

#[test]
fn the_wire_layer_round_trips_every_request_shape() {
    use psp_suite::psp::service::wire::{
        decode_request, encode_response, WireRequest, WireResponse,
    };

    let requests = vec![
        ServiceRequest::Status,
        ServiceRequest::ExportCache,
        ServiceRequest::Score {
            db: "excavator".into(),
            config: "excavator".into(),
        },
        ServiceRequest::Sweep {
            db: "excavator".into(),
            config: "excavator".into(),
            windows: axis(),
        },
        ServiceRequest::Matrix {
            scenarios: vec!["excavator".into()],
            configs: vec!["excavator".into()],
            windows: axis(),
        },
        ServiceRequest::Ingest {
            posts: scenario::excavator_europe(8).posts()[..3].to_vec(),
        },
    ];
    let registry = ServiceRegistry::new()
        .database("excavator", KeywordDatabase::excavator_seed())
        .config("excavator", PspConfig::excavator_europe());
    let service =
        TaraService::with_workers(LiveEngine::new(scenario::excavator_europe(7)), registry, 1);

    for (id, request) in requests.into_iter().enumerate() {
        let id = id as u64 + 1;
        let line = serde_json::to_string(&WireRequest {
            id,
            request: request.clone(),
        })
        .unwrap();
        let decoded = decode_request(&line).unwrap();
        assert_eq!(decoded.id, id);
        assert_eq!(decoded.request, request);

        // Execute and round-trip the response line too: everything the
        // service can answer must survive the wire.
        let response = service.handle(decoded.request);
        let wire = WireResponse { id, response };
        let encoded = encode_response(&wire);
        assert_eq!(
            serde_json::from_str::<WireResponse>(&encoded).unwrap(),
            wire
        );
    }
}
