//! The durability plane end to end: crash recovery is **bit-identical**.
//!
//! The property being pinned: kill the process at an arbitrary byte of the
//! write-ahead journal and recovery reconstructs exactly the engine whose
//! batches survived on disk — same SAI lists, same window sweeps, same
//! matrix cells as a never-crashed engine fed the surviving prefix.  On both
//! engine shapes, across random corpora, batch splits, crash points and
//! forced shim thread counts.  Torn or bit-flipped journal tails are
//! detected by checksum and truncated, never panicked on; injected
//! checkpoint/fsync faults answer structured errors and leave the previous
//! on-disk state authoritative.

use proptest::prelude::*;
use psp_suite::psp::config::PspConfig;
use psp_suite::psp::engine::{
    LiveEngine, MatrixSpec, ShardedEngine, SignalCacheFile, StreamingScorer, WindowAxis,
};
use psp_suite::psp::keyword_db::KeywordDatabase;
use psp_suite::psp::service::durability::{DurableStore, RecoveryReport};
use psp_suite::psp::service::journal::FaultFs;
use psp_suite::psp::service::{ServiceRegistry, ServiceRequest, ServiceResponse, TaraService};
use psp_suite::socialsim::corpus::Corpus;
use psp_suite::socialsim::engagement::Engagement;
use psp_suite::socialsim::index::ShardSpec;
use psp_suite::socialsim::post::{Post, Region, TargetApplication};
use psp_suite::socialsim::scenario;
use psp_suite::socialsim::time::{DateWindow, SimDate};
use psp_suite::socialsim::user::User;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f` under a forced shim thread count; a no-op pass-through when the
/// real rayon is swapped in.
fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    #[cfg(feature = "shim-rayon")]
    {
        rayon::with_thread_count(threads, f)
    }
    #[cfg(not(feature = "shim-rayon"))]
    {
        let _ = threads;
        f()
    }
}

static DIRS: AtomicUsize = AtomicUsize::new(0);

/// A fresh (pre-wiped) data directory unique to this process and call.
fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "psp_durability_{name}_{}_{}",
        std::process::id(),
        DIRS.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn db_and_config() -> (KeywordDatabase, PspConfig) {
    (
        KeywordDatabase::excavator_seed(),
        PspConfig::excavator_europe(),
    )
}

fn axis() -> WindowAxis {
    WindowAxis::new()
        .full_history()
        .window(DateWindow::years(2019, 2021))
        .window(DateWindow::years(2021, 2023))
}

fn matrix_spec(db: &KeywordDatabase, config: &PspConfig) -> MatrixSpec {
    MatrixSpec::new()
        .scenario("excavator", db.clone())
        .config("excavator", config.clone())
        .window_axis(&axis())
}

/// Builds a durable TARA service over `dir` the way the daemon does: recover
/// the newest checkpoint, replay the journal tail, warm the signal cache.
fn durable_service(dir: &Path, faults: FaultFs) -> (TaraService, RecoveryReport) {
    let (store, engine, report) = DurableStore::recover(
        dir,
        faults,
        || LiveEngine::new(scenario::excavator_europe(7)),
        |corpus, signals| {
            let engine = LiveEngine::new(corpus);
            if let Some(cache) = signals {
                let _ = engine.load_signal_cache(&cache);
            }
            engine
        },
    )
    .expect("recovery succeeds");
    let registry = ServiceRegistry::new()
        .database("excavator", KeywordDatabase::excavator_seed())
        .config("excavator", PspConfig::excavator_europe());
    (
        TaraService::with_durability(engine, registry, 2, store),
        report,
    )
}

fn batch(seed: u64) -> Vec<Post> {
    scenario::excavator_europe(seed).posts().to_vec()
}

fn score_request() -> ServiceRequest {
    ServiceRequest::Score {
        db: "excavator".into(),
        config: "excavator".into(),
    }
}

/// The core crash property, shared by both engine shapes: journal `batches`
/// one record at a time, cut the file at an arbitrary byte (`cut_permille`
/// of the journal body — a kill -9 mid-append lands anywhere), recover, and
/// demand the result is bit-identical to a never-crashed engine fed exactly
/// the batches whose records survived the cut.
fn assert_crash_recovery_bit_identical<E: StreamingScorer>(
    dir: &Path,
    seed: &dyn Fn() -> E,
    build: &dyn Fn(Corpus, Option<SignalCacheFile>) -> E,
    batches: &[Vec<Post>],
    cut_permille: u64,
) {
    let (db, config) = db_and_config();
    let (store, mut engine, report) =
        DurableStore::recover(dir, FaultFs::none(), seed, build).expect("first recovery");
    assert!(report.fresh_start);

    // The service's ingest path in miniature: journal first, publish second.
    let mut bytes_after = Vec::with_capacity(batches.len());
    for posts in batches {
        let generation = engine.generation() + 1;
        store
            .log_ingest(posts, generation)
            .expect("append journals");
        engine.ingest_batch(posts.clone());
        bytes_after.push(store.stats().wal_bytes);
    }
    drop(store);
    drop(engine); // the crash: only the disk survives

    let wal = dir.join("wal.log");
    let len = std::fs::metadata(&wal).expect("journal exists").len();
    let header = 8_u64;
    let cut = header + (len - header) * cut_permille / 1000;
    std::fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .expect("journal reopens")
        .set_len(cut)
        .expect("journal cuts");

    // Exactly the records that fit below the cut survive; a frame the cut
    // bisects is torn and must be truncated, not replayed.
    let survivors = bytes_after.iter().filter(|&&end| end <= cut).count();
    let valid = survivors
        .checked_sub(1)
        .map_or(header, |last| bytes_after[last]);

    let (store, recovered, report) =
        DurableStore::recover(dir, FaultFs::none(), seed, build).expect("crash recovery");
    assert!(!report.fresh_start);
    assert_eq!(report.checkpoint_generation, Some(0));
    assert_eq!(report.replayed_records, survivors);
    assert_eq!(report.truncated_wal_bytes, cut - valid);
    assert_eq!(recovered.generation(), survivors as u64);

    let mut expected = seed();
    for posts in &batches[..survivors] {
        expected.ingest_batch(posts.clone());
    }
    assert_eq!(recovered.snapshot_corpus(), expected.snapshot_corpus());
    assert_eq!(
        recovered.sai_list(&db, &config),
        expected.sai_list(&db, &config)
    );
    assert_eq!(
        recovered.sai_windows(&db, &config, &axis()),
        expected.sai_windows(&db, &config, &axis())
    );
    let spec = matrix_spec(&db, &config);
    assert_eq!(
        recovered.sai_matrix(&spec).into_cells(),
        expected.sai_matrix(&spec).into_cells()
    );
    drop(store);
    let _ = std::fs::remove_dir_all(dir);
}

/// A compact random-corpus generator (same shape as the signal-cache one).
fn arb_corpus() -> impl Strategy<Value = Corpus> {
    const TEXTS: [&str; 8] = [
        "#dpfdelete kit for sale 360 EUR",
        "#egrdelete how-to guide",
        "stock machine is fine",
        "was €420, now 359,99 EUR",
        "authorities warn this is illegal",
        "ÖLWECHSEL am #jobsite",
        "",
        "#chiptuning stage 1 adds 40 hp",
    ];
    prop::collection::vec(
        (
            0usize..TEXTS.len(),
            2015i32..2024,
            0u64..50_000,
            prop_oneof![Just(Region::Europe), Just(Region::AsiaPacific)],
        ),
        0..20,
    )
    .prop_map(|rows| {
        Corpus::from_posts(
            rows.into_iter()
                .enumerate()
                .map(|(id, (text, year, views, region))| {
                    Post::new(
                        id as u64 + 1,
                        User::new("durability_prop_user", views / 100, 24),
                        TEXTS[text],
                        vec![],
                        SimDate::new(year, 6, 15),
                        region,
                        TargetApplication::Excavator,
                        Engagement::new(views, views / 50, views / 200, views / 400),
                    )
                }),
        )
    })
}

proptest! {
    /// LiveEngine: random corpora × batch splits × crash points × thread
    /// counts ⇒ recovery reconstructs the surviving prefix bit-identically.
    #[test]
    fn live_engine_recovery_is_bit_identical_at_random_crash_points(
        corpus in arb_corpus(),
        chunk in 1usize..7,
        cut_permille in 0u64..1001,
        threads in 1usize..4,
    ) {
        let batches: Vec<Vec<Post>> =
            corpus.posts().chunks(chunk).map(<[Post]>::to_vec).collect();
        with_threads(threads, || {
            assert_crash_recovery_bit_identical(
                &temp_dir("live_prop"),
                &|| LiveEngine::new(Corpus::default()),
                &|corpus, signals| {
                    let engine = LiveEngine::new(corpus);
                    if let Some(cache) = signals {
                        let _ = engine.load_signal_cache(&cache);
                    }
                    engine
                },
                &batches,
                cut_permille,
            );
        });
    }

    /// The same property on the sharded shape: recovery rebuilds the shard
    /// layout from the checkpointed corpus plus the journal tail.
    #[test]
    fn sharded_engine_recovery_is_bit_identical_at_random_crash_points(
        corpus in arb_corpus(),
        chunk in 1usize..7,
        cut_permille in 0u64..1001,
        threads in 1usize..4,
    ) {
        let batches: Vec<Vec<Post>> =
            corpus.posts().chunks(chunk).map(<[Post]>::to_vec).collect();
        with_threads(threads, || {
            assert_crash_recovery_bit_identical(
                &temp_dir("sharded_prop"),
                &|| ShardedEngine::new(Corpus::default(), ShardSpec::yearly()),
                &|corpus, signals| {
                    let engine = ShardedEngine::new(corpus, ShardSpec::yearly());
                    if let Some(cache) = signals {
                        let _ = engine.load_signal_cache(&cache);
                    }
                    engine
                },
                &batches,
                cut_permille,
            );
        });
    }
}

/// The daemon lifecycle: ingest → checkpoint → ingest → kill → restart.
/// The restart loads the checkpoint, replays only the post-checkpoint tail,
/// and answers `Score` bit-identically to the pre-kill service.
#[test]
fn service_restart_after_checkpoint_replays_only_the_tail_bit_identically() {
    let dir = temp_dir("service_lifecycle");
    let (service, report) = durable_service(&dir, FaultFs::none());
    assert!(report.fresh_start);

    match service.handle(ServiceRequest::Ingest { posts: batch(8) }) {
        ServiceResponse::Ingested {
            appended,
            generation,
        } => {
            assert_eq!((appended, generation), (2080, 1));
        }
        other => panic!("unexpected: {other:?}"),
    }
    match service.handle(ServiceRequest::Checkpoint) {
        ServiceResponse::Checkpointed {
            generation, posts, ..
        } => assert_eq!((generation, posts), (1, 4160)),
        other => panic!("unexpected: {other:?}"),
    }
    match service.handle(ServiceRequest::Ingest { posts: batch(9) }) {
        ServiceResponse::Ingested { generation, .. } => assert_eq!(generation, 2),
        other => panic!("unexpected: {other:?}"),
    }
    match service.handle(ServiceRequest::Status) {
        ServiceResponse::Status {
            wal_records,
            last_checkpoint_generation,
            recovered_at_start,
            ..
        } => {
            // The checkpoint compacted the first record away; only the
            // post-checkpoint ingest remains journaled.
            assert_eq!(wal_records, 1);
            assert_eq!(last_checkpoint_generation, Some(1));
            assert!(!recovered_at_start);
        }
        other => panic!("unexpected: {other:?}"),
    }
    let reference = service.handle(score_request());
    assert!(matches!(reference, ServiceResponse::Score { .. }));
    drop(service); // kill the first incarnation

    let (revived, report) = durable_service(&dir, FaultFs::none());
    assert!(!report.fresh_start);
    assert_eq!(report.checkpoint_generation, Some(1));
    assert_eq!(report.replayed_records, 1);
    assert_eq!(report.replayed_posts, 2080);
    assert_eq!(revived.handle(score_request()), reference);
    match revived.handle(ServiceRequest::Status) {
        ServiceResponse::Status {
            posts,
            generation,
            recovered_at_start,
            last_checkpoint_generation,
            ..
        } => {
            assert_eq!((posts, generation), (6240, 2));
            assert!(recovered_at_start);
            assert_eq!(last_checkpoint_generation, Some(1));
        }
        other => panic!("unexpected: {other:?}"),
    }
    drop(revived);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An ingest whose journal fsync fails answers a structured durability error
/// and is **invisible**: not published, not replayed after restart.  Later
/// ingests append cleanly and do survive.
#[test]
fn errored_ingests_are_invisible_and_later_ingests_survive_restart() {
    let dir = temp_dir("service_fsync_fault");
    let faults = FaultFs::none();
    let (service, _) = durable_service(&dir, faults.clone());

    match service.handle(ServiceRequest::Ingest { posts: batch(8) }) {
        ServiceResponse::Ingested { generation, .. } => assert_eq!(generation, 1),
        other => panic!("unexpected: {other:?}"),
    }
    faults.fail_sync(0);
    match service.handle(ServiceRequest::Ingest { posts: batch(9) }) {
        ServiceResponse::Error { error } => {
            assert_eq!(error.kind, "durability");
            assert!(error.detail.contains("fsync"), "{}", error.detail);
        }
        other => panic!("unexpected: {other:?}"),
    }
    match service.handle(ServiceRequest::Status) {
        ServiceResponse::Status {
            posts,
            generation,
            wal_records,
            ..
        } => {
            // The failed batch never published: generation and corpus are
            // exactly as before it, and its frame was rolled back.
            assert_eq!((posts, generation, wal_records), (4160, 1, 1));
        }
        other => panic!("unexpected: {other:?}"),
    }
    // The fault disarmed; the same batch ingests cleanly now.
    match service.handle(ServiceRequest::Ingest { posts: batch(9) }) {
        ServiceResponse::Ingested { generation, .. } => assert_eq!(generation, 2),
        other => panic!("unexpected: {other:?}"),
    }
    let reference = service.handle(score_request());
    drop(service);

    let (revived, report) = durable_service(&dir, FaultFs::none());
    assert_eq!(report.replayed_records, 2);
    assert_eq!(revived.handle(score_request()), reference);
    drop(revived);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A checkpoint whose directory rename fails answers a structured durability
/// error, leaves the previous checkpoint authoritative, and succeeds when
/// retried after the fault clears.
#[test]
fn checkpoint_faults_answer_structured_errors_and_keep_the_previous_checkpoint() {
    let dir = temp_dir("service_rename_fault");
    let faults = FaultFs::none();
    let (service, _) = durable_service(&dir, faults.clone());

    let _ = service.handle(ServiceRequest::Ingest { posts: batch(8) });
    faults.fail_rename(0);
    match service.handle(ServiceRequest::Checkpoint) {
        ServiceResponse::Error { error } => assert_eq!(error.kind, "durability"),
        other => panic!("unexpected: {other:?}"),
    }
    match service.handle(ServiceRequest::Status) {
        ServiceResponse::Status {
            last_checkpoint_generation,
            ..
        } => assert_eq!(last_checkpoint_generation, Some(0), "seed checkpoint stays"),
        other => panic!("unexpected: {other:?}"),
    }
    // Retry with the fault disarmed: the checkpoint lands.
    match service.handle(ServiceRequest::Checkpoint) {
        ServiceResponse::Checkpointed { generation, .. } => assert_eq!(generation, 1),
        other => panic!("unexpected: {other:?}"),
    }
    let reference = service.handle(score_request());
    drop(service);

    let (revived, report) = durable_service(&dir, FaultFs::none());
    assert_eq!(report.checkpoint_generation, Some(1));
    assert_eq!(report.replayed_records, 0);
    assert_eq!(revived.handle(score_request()), reference);
    drop(revived);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A bit flip inside an earlier journal frame severs the replay chain at the
/// damage: recovery keeps exactly the records before it, truncates the rest,
/// and never panics.
#[test]
fn bitflipped_journal_frames_truncate_the_suffix_without_panicking() {
    let dir = temp_dir("bitflip");
    let seed = || LiveEngine::new(Corpus::default());
    let build = |corpus: Corpus, _: Option<SignalCacheFile>| LiveEngine::new(corpus);
    let (store, mut engine, _) =
        DurableStore::recover(&dir, FaultFs::none(), seed, build).expect("first recovery");
    let mut bytes_after = Vec::new();
    for generation in 1..=3_u64 {
        let posts = batch(7 + generation)[..4].to_vec();
        store
            .log_ingest(&posts, generation)
            .expect("append journals");
        engine.ingest_batch(posts);
        bytes_after.push(store.stats().wal_bytes);
    }
    drop(store);

    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).expect("journal readable");
    // Flip one payload byte inside the second frame.
    let at = bytes_after[0] as usize + 10;
    bytes[at] ^= 0x40;
    std::fs::write(&wal, &bytes).expect("journal writable");

    let (_store, recovered, report) =
        DurableStore::recover(&dir, FaultFs::none(), seed, build).expect("recovery never panics");
    assert_eq!(report.replayed_records, 1);
    assert!(report.truncated_wal_bytes > 0);
    let mut expected = seed();
    expected.ingest_batch(batch(8)[..4].to_vec());
    assert_eq!(recovered.snapshot_corpus(), expected.snapshot_corpus());
    let _ = std::fs::remove_dir_all(&dir);
}
