//! Robustness and failure-injection integration tests: poisoned corpora, missing
//! data, degenerate configurations.

use psp_suite::iso21434::feasibility::attack_vector::AttackVectorTable;
use psp_suite::market::datasets;
use psp_suite::psp::classify::AttackOrigin;
use psp_suite::psp::config::{PspConfig, SaiWeights};
use psp_suite::psp::error::PspError;
use psp_suite::psp::financial::{FinancialAssessment, FinancialInputs};
use psp_suite::psp::keyword_db::{KeywordDatabase, KeywordProfile};
use psp_suite::psp::sai::SaiList;
use psp_suite::psp::workflow::PspWorkflow;
use psp_suite::socialsim::corpus::Corpus;
use psp_suite::socialsim::poisoning::{filter_by_credibility, BotCampaign};
use psp_suite::socialsim::post::{Region, TargetApplication};
use psp_suite::socialsim::scenario;
use psp_suite::vehicle::attack_surface::AttackVector;

fn poisoned_scene() -> (Corpus, KeywordDatabase) {
    let mut db = KeywordDatabase::passenger_car_seed();
    db.insert(KeywordProfile::manual(
        "otaunlock",
        "ecm-reprogramming",
        AttackVector::Network,
        AttackOrigin::Insider,
    ));
    let mut corpus = scenario::passenger_car_europe(42);
    BotCampaign::new("otaunlock", 2_500, 2023)
        .targeting(Region::Europe, TargetApplication::PassengerCar)
        .inject(&mut corpus, 7);
    (corpus, db)
}

#[test]
fn poisoning_misleads_the_unfiltered_run() {
    let (corpus, db) = poisoned_scene();
    let outcome = PspWorkflow::new(PspConfig::passenger_car_europe(), db).run(&corpus);
    let table = outcome.insider_table("ecm-reprogramming").unwrap();
    assert_eq!(
        table.ranking()[0],
        AttackVector::Network,
        "without a filter the injected campaign dominates"
    );
}

#[test]
fn credibility_filter_restores_the_original_verdict() {
    let (corpus, db) = poisoned_scene();
    let defended = PspWorkflow::new(
        PspConfig::passenger_car_europe().with_poisoning_filter(0.25),
        db.clone(),
    )
    .run(&corpus);
    let clean = PspWorkflow::new(PspConfig::passenger_car_europe(), db)
        .run(&scenario::passenger_car_europe(42));
    let defended_table = defended.insider_table("ecm-reprogramming").unwrap();
    let clean_table = clean.insider_table("ecm-reprogramming").unwrap();
    assert_eq!(defended_table.ranking()[0], AttackVector::Physical);
    assert!(defended_table.same_ratings_as(clean_table));
}

#[test]
fn corpus_level_filter_has_high_precision_and_recall() {
    let (corpus, _) = poisoned_scene();
    let (_, outcome) = filter_by_credibility(&corpus, 0.25);
    assert!(outcome.precision() > 0.9);
    assert!(outcome.recall() > 0.9);
}

#[test]
fn empty_corpus_degrades_to_the_standard_table() {
    let outcome = PspWorkflow::new(
        PspConfig::passenger_car_europe(),
        KeywordDatabase::passenger_car_seed(),
    )
    .run(&Corpus::new());
    for scenario_name in outcome.insider_scenarios() {
        assert!(outcome
            .insider_table(scenario_name)
            .unwrap()
            .same_ratings_as(&AttackVectorTable::standard()));
    }
}

#[test]
fn degenerate_weight_configurations_still_produce_complete_tables() {
    let corpus = scenario::passenger_car_europe(42);
    for weights in [SaiWeights::views_only(), SaiWeights::interactions_only()] {
        let outcome = PspWorkflow::new(
            PspConfig::passenger_car_europe().with_weights(weights),
            KeywordDatabase::passenger_car_seed(),
        )
        .run(&corpus);
        let table = outcome.insider_table("ecm-reprogramming").unwrap();
        assert_eq!(table.rows().count(), 4);
    }
}

#[test]
fn financial_model_rejects_missing_inputs_cleanly() {
    let corpus = scenario::excavator_europe(42);
    let sai = SaiList::compute(
        &corpus,
        &KeywordDatabase::excavator_seed(),
        &PspConfig::excavator_europe(),
    );

    let mut bad_region = FinancialInputs::paper_excavator_example();
    bad_region.region = "Atlantis".to_string();
    let err = FinancialAssessment::assess(
        "dpf-tampering",
        &sai,
        &datasets::excavator_sales_europe(),
        &datasets::annual_report(),
        &bad_region,
    )
    .unwrap_err();
    assert!(matches!(
        err,
        PspError::InvalidFinancialInput {
            parameter: "VS",
            ..
        }
    ));

    let mut bad_category = FinancialInputs::paper_excavator_example();
    bad_category.report_category = "quantum ransomware".to_string();
    let err = FinancialAssessment::assess(
        "dpf-tampering",
        &sai,
        &datasets::excavator_sales_europe(),
        &datasets::annual_report(),
        &bad_category,
    )
    .unwrap_err();
    assert!(matches!(
        err,
        PspError::InvalidFinancialInput {
            parameter: "PEA",
            ..
        }
    ));
}

#[test]
fn unpriced_scenarios_cannot_be_financially_assessed() {
    let corpus = scenario::passenger_car_europe(42);
    let sai = SaiList::compute(
        &corpus,
        &KeywordDatabase::passenger_car_seed(),
        &PspConfig::passenger_car_europe(),
    );
    // "vehicle-theft" posts advertise no device price in the synthetic scene.
    let err = FinancialAssessment::assess(
        "vehicle-theft",
        &sai,
        &datasets::excavator_sales_europe(),
        &datasets::annual_report(),
        &FinancialInputs::paper_excavator_example(),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        PspError::InvalidFinancialInput {
            parameter: "PPIA",
            ..
        }
    ));
}
