//! Integration tests for streaming corpus ingestion: the live engine and the
//! live monitor absorb posts batch by batch and stay bit-identical to their
//! cold, full-rebuild counterparts across every deterministic scene.

use psp_suite::psp::config::PspConfig;
use psp_suite::psp::engine::{LiveEngine, ScoringEngine};
use psp_suite::psp::keyword_db::KeywordDatabase;
use psp_suite::psp::monitoring::{LiveMonitor, MonitoringSeries};
use psp_suite::psp::timewindow::{compare_windows, compare_windows_live};
use psp_suite::socialsim::corpus::Corpus;
use psp_suite::socialsim::engagement::Engagement;
use psp_suite::socialsim::post::{Post, Region, TargetApplication};
use psp_suite::socialsim::scenario;
use psp_suite::socialsim::time::{DateWindow, SimDate};
use psp_suite::socialsim::user::User;
use std::collections::BTreeMap;

fn post(id: u64, text: &str, year: i32, region: Region, app: TargetApplication) -> Post {
    Post::new(
        id,
        User::new("ingest_user", 120, 24),
        text,
        vec![],
        SimDate::new(year, 7, 4),
        region,
        app,
        Engagement::new(2_500, 80, 10, 5),
    )
}

#[test]
fn year_by_year_ingestion_reproduces_the_cold_monitoring_series() {
    let full = scenario::passenger_car_europe(42);
    let mut by_year: BTreeMap<i32, Vec<Post>> = BTreeMap::new();
    for post in full.posts() {
        by_year
            .entry(post.date().year())
            .or_default()
            .push(post.clone());
    }
    let db = KeywordDatabase::passenger_car_seed();
    let config = PspConfig::passenger_car_europe();
    let mut monitor = LiveMonitor::new(
        Corpus::new(),
        db.clone(),
        config.clone(),
        "ecm-reprogramming",
        2,
    );
    for (_, batch) in by_year {
        monitor.ingest(batch);
    }
    // The live corpus is year-grouped, so compare against a cold run over the
    // corpus *as ingested* — same posts, same order, bit-exact.
    let cold = MonitoringSeries::run(
        monitor.engine().corpus(),
        &db,
        &config,
        "ecm-reprogramming",
        2015,
        2023,
        2,
    );
    let warm = monitor.series(2015, 2023);
    assert_eq!(warm, cold);
    assert!(warm.inversion_year().is_some());
}

#[test]
fn ingestion_only_pays_for_the_batch() {
    // Generation counts non-empty batches; an empty one is free and changes
    // nothing observable.
    let seed = scenario::excavator_europe(42);
    let db = KeywordDatabase::excavator_seed();
    let config = PspConfig::excavator_europe();
    let mut live = LiveEngine::new(seed);
    let before = live.sai_list(&db, &config);
    let receipt = live.ingest(Vec::new());
    assert_eq!(receipt.appended, 0);
    assert_eq!(receipt.generation, 0);
    assert_eq!(live.generation(), 0);
    assert_eq!(live.sai_list(&db, &config), before);
}

#[test]
fn a_batch_with_unseen_vocabulary_reaches_the_scores() {
    // The passenger scene generates no "egrremoval" chatter even though the
    // keyword is seeded; ingest posts that introduce that brand-new
    // mention/hashtag vocabulary and check the affected entry picks up the
    // evidence exactly as a cold rebuild would.
    let db = KeywordDatabase::passenger_car_seed();
    let config = PspConfig::passenger_car_europe();
    let mut live = LiveEngine::new(scenario::passenger_car_europe(42));
    let before = live.sai_list(&db, &config);
    let egr_before = before.entry("egrremoval").expect("seeded keyword").posts;
    assert_eq!(egr_before, 0, "scene has no egrremoval chatter");

    live.ingest(vec![
        post(
            900_001,
            "full #egrremoval service, passed inspection anyway",
            2023,
            Region::Europe,
            TargetApplication::PassengerCar,
        ),
        post(
            900_002,
            "egrremoval kit arrived, 220 EUR well spent",
            2023,
            Region::Europe,
            TargetApplication::PassengerCar,
        ),
    ]);
    let after = live.sai_list(&db, &config);
    let egr_after = after.entry("egrremoval").expect("seeded keyword").posts;
    assert_eq!(egr_after, 2);
    assert_eq!(
        after,
        ScoringEngine::new(live.corpus()).sai_list(&db, &config)
    );
}

#[test]
fn a_batch_from_a_new_region_is_filtered_like_a_rebuild() {
    // The appended posts introduce a region absent from the seed corpus; the
    // regional filter must exclude them while a region-free query sees them.
    let base = scenario::excavator_europe(7);
    let db = KeywordDatabase::excavator_seed();
    let europe = PspConfig::excavator_europe();
    let mut live = LiveEngine::new(base);
    let before = live.sai_list(&db, &europe);
    live.ingest(vec![post(
        900_010,
        "#dpfdelete kit fits every machine",
        2022,
        Region::SouthAmerica,
        TargetApplication::Excavator,
    )]);
    // Europe-filtered scores are unchanged by South-American evidence...
    assert_eq!(live.sai_list(&db, &europe), before);
    // ...and both filtered and unfiltered paths equal a cold rebuild.
    let mut anywhere = europe.clone();
    anywhere.region = Region::SouthAmerica;
    let cold = ScoringEngine::new(live.corpus());
    assert_eq!(live.sai_list(&db, &anywhere), cold.sai_list(&db, &anywhere));
}

#[test]
fn out_of_order_dates_across_the_append_boundary_window_correctly() {
    // Ingest recent posts first, then a batch that pre-dates everything: the
    // window filter must keep answering from per-post dates.
    let db = KeywordDatabase::excavator_seed();
    let mut live = LiveEngine::new(Corpus::new());
    live.ingest(vec![post(
        1,
        "fresh #egrdelete results",
        2023,
        Region::Europe,
        TargetApplication::Excavator,
    )]);
    live.ingest(vec![post(
        2,
        "ancient #egrdelete forum thread",
        2015,
        Region::Europe,
        TargetApplication::Excavator,
    )]);
    let early = PspConfig::excavator_europe().with_window(DateWindow::years(2014, 2016));
    let late = PspConfig::excavator_europe().with_window(DateWindow::years(2022, 2023));
    let egr_posts = |config: &PspConfig| {
        live.sai_list(&db, config)
            .entry("egrdelete")
            .expect("seeded keyword")
            .posts
    };
    assert_eq!(egr_posts(&early), 1);
    assert_eq!(egr_posts(&late), 1);
    let cold = ScoringEngine::new(live.corpus());
    assert_eq!(live.sai_list(&db, &early), cold.sai_list(&db, &early));
    assert_eq!(live.sai_list(&db, &late), cold.sai_list(&db, &late));
}

#[test]
fn live_window_comparison_equals_the_snapshot_comparison() {
    let corpus = scenario::passenger_car_europe(42);
    let db = KeywordDatabase::passenger_car_seed();
    let config = PspConfig::passenger_car_europe();
    let recent = DateWindow::years(2021, 2023);

    let mut live = LiveEngine::new(Corpus::new());
    for chunk in corpus.posts().to_vec().chunks(250) {
        live.ingest(chunk.to_vec());
    }
    let streamed = compare_windows_live(&live, &db, &config, "ecm-reprogramming", recent);
    let snapshot = compare_windows(&corpus, &db, &config, "ecm-reprogramming", recent);
    assert_eq!(streamed, snapshot);
    assert!(streamed.trend_inverted());
}
