//! Property tests pinning the single-pass text analyzer **bit-identical** to
//! the frozen multi-pass reference implementation (`textmine::reference`) on
//! unicode-, punctuation- and hashtag-heavy inputs, and the `Cow` fast path
//! of `normalize` to the allocating pass.

use proptest::prelude::*;
use psp_suite::textmine::normalize::{is_normalized, normalize, normalize_cow};
use psp_suite::textmine::pipeline::TextPipeline;
use psp_suite::textmine::reference;
use psp_suite::textmine::sentiment::IntentLexicon;
use std::borrow::Cow;

/// Fragment pool: attack tags, lexicon words, stop words, prices, currencies,
/// unicode (umlauts, combining marks, emoji, Kelvin sign), sigils and
/// punctuation runs — everything the pipeline treats specially.
const FRAGMENTS: [&str; 40] = [
    "#DPFDelete",
    "#dpfdelete",
    "#EGRoff",
    "##double",
    "#",
    "@",
    "@TunerShop",
    "#@",
    "delete",
    "Deleted",
    "kit",
    "sale",
    "shipped",
    "install",
    "guide",
    "illegal",
    "warranty",
    "the",
    "and",
    "now",
    "360",
    "359,99",
    "1.299,00",
    "1.299.00",
    "0",
    "9999999999",
    "EUR",
    "euro",
    "euros",
    "$",
    "€420",
    "£",
    "usd",
    "ÖLWECHSEL",
    "ölwechsel",
    "e\u{301}gr",
    "\u{1F600}",
    "K\u{212A}elvin",
    "40hp",
    "...",
];

/// Separator pool: plain and exotic whitespace plus punctuation that the
/// normaliser collapses and the price tokenizer trims.
const SEPARATORS: [&str; 8] = [" ", "  ", "\t", "\n", ", ", "! ", ": ", ". "];

/// Random documents assembled from the fragment pool.
fn arb_document() -> impl Strategy<Value = String> {
    (
        prop::collection::vec(0usize..FRAGMENTS.len(), 0..12),
        prop::collection::vec(0usize..SEPARATORS.len(), 0..12),
    )
        .prop_map(|(words, seps)| {
            let mut text = String::new();
            for (i, w) in words.iter().enumerate() {
                text.push_str(FRAGMENTS[*w]);
                let sep = seps.get(i).copied().unwrap_or(0);
                text.push_str(SEPARATORS[sep]);
            }
            text
        })
}

proptest! {
    /// The single-pass analyzer is bit-identical to the frozen multi-pass
    /// reference on documents assembled from the fragment pool.
    #[test]
    fn single_pass_equals_reference_on_fragment_documents(text in arb_document()) {
        let pipeline = TextPipeline::new();
        prop_assert_eq!(
            pipeline.analyze(&text),
            reference::analyze(pipeline.lexicon(), &text)
        );
    }

    /// ... and on arbitrary printable-ASCII soup.
    #[test]
    fn single_pass_equals_reference_on_ascii_soup(text in ".{0,200}") {
        let pipeline = TextPipeline::new();
        prop_assert_eq!(
            pipeline.analyze(&text),
            reference::analyze(pipeline.lexicon(), &text)
        );
    }

    /// Custom lexicon weights flow through both implementations identically.
    #[test]
    fn single_pass_equals_reference_under_custom_weights(
        text in arb_document(),
        engagement in 0u8..4,
        deterrent in 0u8..4,
        commerce in 0u8..4,
    ) {
        let lexicon = IntentLexicon {
            engagement_weight: f64::from(engagement) * 0.5,
            deterrent_weight: f64::from(deterrent) * 0.5,
            commerce_weight: f64::from(commerce) * 0.5,
        };
        prop_assert_eq!(
            TextPipeline::with_lexicon(lexicon).analyze(&text),
            reference::analyze(&lexicon, &text)
        );
    }

    /// The lean engine-facing entry point carries exactly the intent and
    /// price components of the full analysis.
    #[test]
    fn signals_match_analyze(text in arb_document()) {
        let pipeline = TextPipeline::new();
        let full = pipeline.analyze(&text);
        let lean = pipeline.signals(&text);
        prop_assert_eq!(lean.intent, full.intent);
        prop_assert_eq!(lean.prices, full.prices);
    }

    /// A reference-mode pipeline dispatches to the frozen implementation —
    /// and therefore agrees with the fast mode everywhere.
    #[test]
    fn reference_mode_agrees_with_fast_mode(text in arb_document()) {
        prop_assert_eq!(
            TextPipeline::reference().analyze(&text),
            TextPipeline::new().analyze(&text)
        );
    }

    /// `normalize_cow` equals the frozen normaliser on every input, and its
    /// borrowed branch fires exactly when the input is its own normal form.
    #[test]
    fn normalize_cow_equals_reference_and_borrows_exactly_when_normal(text in arb_document()) {
        let cow = normalize_cow(&text);
        let oracle = reference::normalize(&text);
        prop_assert_eq!(cow.as_ref(), oracle.as_str());
        match &cow {
            Cow::Borrowed(s) => {
                prop_assert!(is_normalized(&text));
                prop_assert_eq!(*s, text.as_str());
            }
            Cow::Owned(_) => prop_assert!(!is_normalized(&text), "text {:?}", text),
        }
    }

    /// Normalisation is idempotent, and (for ASCII inputs, where the output
    /// is ASCII too) its fixed points take the borrowed branch.
    #[test]
    fn normalize_is_idempotent_and_fixed_points_borrow(text in ".{0,120}") {
        let once = normalize(&text);
        prop_assert_eq!(normalize(&once), once.clone());
        prop_assert!(matches!(normalize_cow(&once), Cow::Borrowed(_)), "{:?}", once);
    }
}
