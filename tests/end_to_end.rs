//! Cross-crate integration tests: the full PSP pipeline from synthetic social
//! corpus to re-rated TARA, exercised the way a downstream user would.

use psp_suite::iso21434::feasibility::attack_vector::{AttackVectorModel, AttackVectorTable};
use psp_suite::iso21434::feasibility::AttackFeasibilityRating;
use psp_suite::market::datasets;
use psp_suite::psp::config::PspConfig;
use psp_suite::psp::dynamic_tara::{ecm_reference_tara, DynamicTaraComparison};
use psp_suite::psp::financial::{FinancialAssessment, FinancialInputs};
use psp_suite::psp::keyword_db::KeywordDatabase;
use psp_suite::psp::report::PspReport;
use psp_suite::psp::sai::SaiList;
use psp_suite::psp::workflow::PspWorkflow;
use psp_suite::socialsim::scenario;
use psp_suite::socialsim::time::DateWindow;
use psp_suite::vehicle::attack_surface::AttackVector;

#[test]
fn full_pipeline_passenger_car_static_vs_dynamic() {
    let corpus = scenario::passenger_car_europe(42);
    let outcome = PspWorkflow::new(
        PspConfig::passenger_car_europe(),
        KeywordDatabase::passenger_car_seed(),
    )
    .run(&corpus);

    let tara = ecm_reference_tara("ECM");
    let comparison = DynamicTaraComparison::evaluate(&tara, &outcome, "ecm-reprogramming").unwrap();

    // Static model under-rates the reprogramming threat; the dynamic model raises
    // both its feasibility and its risk.
    let delta = comparison.delta("ECM reprogramming").unwrap();
    assert_eq!(delta.static_feasibility, AttackFeasibilityRating::Low);
    assert_eq!(delta.dynamic_feasibility, AttackFeasibilityRating::High);
    assert!(delta.risk_raised());

    // The dynamic report generates at least one cybersecurity goal that the static
    // report missed.
    assert!(comparison.dynamic_report.goals().len() > comparison.static_report.goals().len());
}

#[test]
fn full_pipeline_excavator_financial_report() {
    let corpus = scenario::excavator_europe(42);
    let config = PspConfig::excavator_europe();
    let db = KeywordDatabase::excavator_seed();
    let outcome = PspWorkflow::new(config.clone(), db.clone()).run(&corpus);
    let sai = SaiList::compute(&corpus, &db, &config);

    let assessment = FinancialAssessment::assess(
        "dpf-tampering",
        &sai,
        &datasets::excavator_sales_europe(),
        &datasets::annual_report(),
        &FinancialInputs::paper_excavator_example(),
    )
    .unwrap();

    let report = PspReport::new("excavator DPF study", outcome).with_financial(assessment);
    let json = report.to_json().unwrap();
    assert!(json.contains("dpf-tampering"));
    assert!(report.summary().contains("financial [dpf-tampering]"));
}

#[test]
fn window_choice_flips_the_recommended_priority() {
    let corpus = scenario::passenger_car_europe(42);
    let db = KeywordDatabase::passenger_car_seed();

    let all_time = PspWorkflow::new(PspConfig::passenger_car_europe(), db.clone()).run(&corpus);
    let recent = PspWorkflow::new(
        PspConfig::passenger_car_europe().with_window(DateWindow::years(2021, 2023)),
        db,
    )
    .run(&corpus);

    let all_table = all_time.insider_table("ecm-reprogramming").unwrap();
    let recent_table = recent.insider_table("ecm-reprogramming").unwrap();
    assert_eq!(all_table.ranking()[0], AttackVector::Physical);
    assert_eq!(recent_table.ranking()[0], AttackVector::Local);
    assert!(!all_table.same_ratings_as(recent_table));
}

#[test]
fn outsider_threats_keep_the_standard_ratings_end_to_end() {
    let corpus = scenario::passenger_car_europe(42);
    let outcome = PspWorkflow::new(
        PspConfig::passenger_car_europe(),
        KeywordDatabase::passenger_car_seed(),
    )
    .run(&corpus);

    assert!(outcome
        .outsider_table
        .same_ratings_as(&AttackVectorTable::standard()));
    // No tuned table exists for the outsider scenarios.
    assert!(outcome.insider_table("vehicle-theft").is_none());
    assert!(outcome.insider_table("remote-exploitation").is_none());
}

#[test]
fn different_seeds_change_numbers_but_not_conclusions() {
    let db = KeywordDatabase::passenger_car_seed();
    for seed in [1_u64, 7, 99, 12345] {
        let corpus = scenario::passenger_car_europe(seed);
        let outcome = PspWorkflow::new(PspConfig::passenger_car_europe(), db.clone()).run(&corpus);
        let table = outcome.insider_table("ecm-reprogramming").unwrap();
        assert_eq!(
            table.ranking()[0],
            AttackVector::Physical,
            "seed {seed}: all-time evidence must keep the physical route on top"
        );
    }
}

#[test]
fn tuned_model_can_be_used_directly_with_the_tara_engine() {
    let corpus = scenario::passenger_car_europe(42);
    let outcome = PspWorkflow::new(
        PspConfig::passenger_car_europe(),
        KeywordDatabase::passenger_car_seed(),
    )
    .run(&corpus);
    let model =
        AttackVectorModel::with_table(outcome.insider_table("ecm-reprogramming").unwrap().clone());
    let report = ecm_reference_tara("ECM").evaluate(&model).unwrap();
    assert_eq!(report.assessments().len(), 3);
    assert!(report.model_name().contains("PSP insider table"));
}
