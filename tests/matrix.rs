//! Integration and property suite for the batch plane (`sai_matrix`): a
//! (scenario × configuration × window) cross-product resolved through the
//! `SweepMatrix` scheduler must be **bit-identical** to hand-nested loops of
//! one `sai_list` call per cell — on all three engine shapes, over random
//! corpora, shard axes, weight sets and window grids, and (behind the
//! `shim-rayon` feature) forced thread counts.
//!
//! The scheduler's whole point is to amortise shared work (one sweep plan per
//! (database, scene), shard pruning per window, one engine for everything)
//! without changing a single bit of any cell; these tests keep that honest.

use proptest::prelude::*;
use psp_suite::psp::config::{PspConfig, SaiWeights};
use psp_suite::psp::engine::{LiveEngine, MatrixSpec, SaiScorer, ScoringEngine, ShardedEngine};
use psp_suite::psp::keyword_db::KeywordDatabase;
use psp_suite::psp::sai::SaiList;
use psp_suite::socialsim::corpus::Corpus;
use psp_suite::socialsim::engagement::Engagement;
use psp_suite::socialsim::index::ShardSpec;
use psp_suite::socialsim::post::{Post, Region, TargetApplication};
use psp_suite::socialsim::scenario;
use psp_suite::socialsim::time::{DateWindow, SimDate};
use psp_suite::socialsim::user::User;

/// Builds a [`MatrixSpec`] from plain axes (labels are synthesised).
fn spec_of(
    dbs: &[KeywordDatabase],
    configs: &[PspConfig],
    grid: &[Option<DateWindow>],
) -> MatrixSpec {
    let mut spec = MatrixSpec::new();
    for (i, db) in dbs.iter().enumerate() {
        spec = spec.scenario(format!("scenario-{i}"), db.clone());
    }
    for (i, config) in configs.iter().enumerate() {
        spec = spec.config(format!("config-{i}"), config.clone());
    }
    for window in grid {
        spec = match window {
            Some(w) => spec.window(*w),
            None => spec.full_history(),
        };
    }
    spec
}

/// The hand-nested reference: one `sai_list` call per cell, in cell order.
/// An empty grid means each configuration's own window applies.
fn nested_cells<E: SaiScorer>(
    engine: &E,
    dbs: &[KeywordDatabase],
    configs: &[PspConfig],
    grid: &[Option<DateWindow>],
) -> Vec<SaiList> {
    let mut cells = Vec::new();
    for db in dbs {
        for config in configs {
            let effective: Vec<Option<DateWindow>> = if grid.is_empty() {
                vec![config.window]
            } else {
                grid.to_vec()
            };
            for window in effective {
                let mut cell_config = config.clone();
                cell_config.window = window;
                cells.push(engine.sai_list(db, &cell_config));
            }
        }
    }
    cells
}

/// Asserts the matrix over these axes matches the hand-nested loops bit for
/// bit, cell by cell, and streams in the spec's deterministic cell order.
fn assert_matrix_exact<E: SaiScorer>(
    engine: &E,
    dbs: &[KeywordDatabase],
    configs: &[PspConfig],
    grid: &[Option<DateWindow>],
) {
    let spec = spec_of(dbs, configs, grid);
    let results = engine.sai_matrix(&spec);
    assert_eq!(results.len(), spec.cell_count());
    let cells = results.into_cells();
    let ids: Vec<_> = cells.iter().map(|(id, _)| *id).collect();
    assert_eq!(ids, spec.cell_ids(), "cells must stream in CellId order");
    let lists: Vec<SaiList> = cells.into_iter().map(|(_, sai)| sai).collect();
    assert_eq!(
        lists,
        nested_cells(engine, dbs, configs, grid),
        "matrix vs hand-nested sai_list loops"
    );
}

#[test]
fn matrix_is_exact_on_the_reference_scenes_for_all_three_shapes() {
    let corpus = scenario::passenger_car_europe(42);
    let dbs = [
        KeywordDatabase::passenger_car_seed(),
        KeywordDatabase::excavator_seed(),
    ];
    let base = PspConfig::passenger_car_europe();
    let configs = [
        base.clone(),
        base.clone().with_weights(SaiWeights::views_only()),
        base.clone().with_poisoning_filter(0.25),
    ];
    // Unordered, overlapping, duplicated and full-history entries in one
    // grid: the scheduler must not assume sorted, disjoint or distinct
    // windows.
    let grid = [
        Some(DateWindow::years(2019, 2020)),
        None,
        Some(DateWindow::years(2015, 2016)),
        Some(DateWindow::years(2019, 2020)),
        Some(DateWindow::years(2015, 2023)),
    ];

    let single = ScoringEngine::new(&corpus);
    assert_matrix_exact(&single, &dbs, &configs, &grid);
    // Against the naive oracle, too: every cell equals a from-scratch scan.
    let spec = spec_of(&dbs, &configs, &grid);
    for (id, sai) in single.sai_matrix(&spec).iter() {
        let mut config = configs[id.config].clone();
        config.window = grid[id.window];
        assert_eq!(
            *sai,
            SaiList::compute_naive(&corpus, &dbs[id.scenario], &config),
            "cell {id:?} vs naive oracle"
        );
    }

    let mut live = LiveEngine::new(Corpus::new());
    for chunk in corpus.posts().to_vec().chunks(97) {
        live.ingest(chunk.to_vec());
    }
    assert_matrix_exact(&live, &dbs, &configs, &grid);

    for spec in [
        ShardSpec::yearly(),
        ShardSpec::ByTimeYears(3),
        ShardSpec::ByRegion,
    ] {
        let sharded = ShardedEngine::new(corpus.clone(), spec);
        assert_matrix_exact(&sharded, &dbs, &configs, &grid);
    }
}

#[test]
fn single_cell_matrix_equals_a_direct_sai_list_call() {
    let corpus = scenario::excavator_europe(7);
    let db = KeywordDatabase::excavator_seed();
    let base = PspConfig::excavator_europe();
    let engine = ScoringEngine::new(&corpus);
    // Empty grid: the one cell is scored under the configuration's own
    // window.
    let windowed = base.clone().with_window(DateWindow::years(2020, 2022));
    for config in [&base, &windowed] {
        let spec = MatrixSpec::new()
            .scenario("excavator", db.clone())
            .config("only", config.clone());
        let results = engine.sai_matrix(&spec);
        assert_eq!(results.len(), 1);
        assert_eq!(results.get(0, 0, 0), Some(&engine.sai_list(&db, config)));
    }
    // One-entry grid: the grid window replaces the configuration's own.
    let spec = MatrixSpec::new()
        .scenario("excavator", db.clone())
        .config("only", windowed)
        .window(DateWindow::years(2018, 2019));
    assert_eq!(
        engine.sai_matrix(&spec).get(0, 0, 0),
        Some(&engine.sai_list(&db, &base.with_window(DateWindow::years(2018, 2019))))
    );
}

#[test]
fn empty_window_grid_uses_each_configs_own_window() {
    let corpus = scenario::passenger_car_europe(42);
    let db = KeywordDatabase::passenger_car_seed();
    let base = PspConfig::passenger_car_europe();
    let configs = [
        base.clone(),
        base.clone().with_window(DateWindow::years(2021, 2023)),
        base.clone().with_window(DateWindow::years(2015, 2019)),
    ];
    assert_matrix_exact(&ScoringEngine::new(&corpus), &[db], &configs, &[]);
}

#[test]
fn duplicate_windows_in_one_grid_yield_identical_cells() {
    let corpus = scenario::excavator_europe(7);
    let db = KeywordDatabase::excavator_seed();
    let base = PspConfig::excavator_europe();
    let window = DateWindow::years(2019, 2021);
    let spec = MatrixSpec::new()
        .scenario("excavator", db.clone())
        .config("base", base.clone())
        .window(window)
        .window(window)
        .full_history()
        .full_history();
    let engine = ScoringEngine::new(&corpus);
    let results = engine.sai_matrix(&spec);
    assert_eq!(results.len(), 4);
    assert_eq!(results.get(0, 0, 0), results.get(0, 0, 1));
    assert_eq!(results.get(0, 0, 2), results.get(0, 0, 3));
    assert_eq!(
        results.get(0, 0, 0),
        Some(&engine.sai_list(&db, &base.clone().with_window(window)))
    );
    assert_eq!(results.get(0, 0, 2), Some(&engine.sai_list(&db, &base)));
}

#[test]
fn empty_matrices_return_no_cells_on_every_shape() {
    let corpus = scenario::excavator_europe(7);
    let no_scenarios = MatrixSpec::new()
        .config("base", PspConfig::excavator_europe())
        .window(DateWindow::years(2019, 2021));
    let no_configs = MatrixSpec::new()
        .scenario("excavator", KeywordDatabase::excavator_seed())
        .window(DateWindow::years(2019, 2021));
    for engine in [
        Box::new(ScoringEngine::new(&corpus)) as Box<dyn SaiScorer + '_>,
        Box::new(LiveEngine::new(corpus.clone())),
        Box::new(ShardedEngine::new(corpus.clone(), ShardSpec::yearly())),
    ] {
        for spec in [&no_scenarios, &no_configs, &MatrixSpec::new()] {
            assert_eq!(spec.cell_count(), 0);
            assert!(spec.cell_ids().is_empty());
            let results = engine.sai_matrix(spec);
            assert!(results.is_empty());
            assert_eq!(results.len(), 0);
        }
    }
}

#[test]
fn matrix_works_through_trait_objects() {
    // The batch plane rides default trait methods: it must stay object-safe
    // and exact through `dyn SaiScorer`, the shape a serving daemon holds.
    let corpus = scenario::excavator_europe(7);
    let db = KeywordDatabase::excavator_seed();
    let base = PspConfig::excavator_europe();
    let spec = MatrixSpec::new()
        .scenario("excavator", db.clone())
        .config("base", base.clone())
        .full_history()
        .window(DateWindow::years(2020, 2022));
    let reference = ScoringEngine::new(&corpus).sai_matrix(&spec);
    let dynamic: Box<dyn SaiScorer + '_> = Box::new(ScoringEngine::new(&corpus));
    assert_eq!(dynamic.sai_matrix(&spec), reference);
}

proptest! {
    /// On random corpora, weight sets, scene filters and window grids, the
    /// matrix over the single and live engines is bit-identical to the
    /// hand-nested per-cell loops.
    #[test]
    fn matrix_equals_nested_loops_on_random_corpora(
        corpus in arb_corpus(),
        weights in prop::collection::vec(arb_weights(), 1..3),
        grid in prop::collection::vec(arb_window(), 0..5),
    ) {
        let dbs = [KeywordDatabase::excavator_seed()];
        let base = PspConfig::excavator_europe();
        // Alternate the poisoning filter so the matrix carries at least two
        // distinct plan keys whenever there are two configurations.
        let configs: Vec<PspConfig> = weights
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let config = base.clone().with_weights(*w);
                if i % 2 == 1 {
                    config.with_poisoning_filter(0.25)
                } else {
                    config
                }
            })
            .collect();
        let single = ScoringEngine::new(&corpus);
        assert_matrix_exact(&single, &dbs, &configs, &grid);
        let live = LiveEngine::new(corpus.clone());
        assert_matrix_exact(&live, &dbs, &configs, &grid);
    }

    /// The sharded matrix — any shard axis, any granularity — matches the
    /// single-engine matrix bit for bit.
    #[test]
    fn sharded_matrix_equals_single_matrix(
        corpus in arb_corpus(),
        shard_axis in arb_spec(),
        from in 2014i32..2021,
    ) {
        let db = KeywordDatabase::excavator_seed();
        let base = PspConfig::excavator_europe();
        let configs = [
            base.clone(),
            base.clone().with_weights(SaiWeights::views_only()),
        ];
        let grid: Vec<Option<DateWindow>> = std::iter::once(None)
            .chain((from..from + 3).map(|y| Some(DateWindow::years(y, y + 1))))
            .collect();
        let spec = spec_of(&[db], &configs, &grid);
        let sharded = ShardedEngine::new(corpus.clone(), shard_axis);
        let single = ScoringEngine::new(&corpus);
        prop_assert_eq!(sharded.sai_matrix(&spec), single.sai_matrix(&spec));
    }

    /// A live engine fed in arbitrary chunks — evaluating the matrix between
    /// ingests so plans are genuinely built, invalidated and rebuilt —
    /// resolves exactly like a cold engine over the finished corpus.
    #[test]
    fn live_matrix_survives_ingest_invalidation(
        corpus in arb_corpus(),
        chunk in 1usize..9,
    ) {
        let dbs = [KeywordDatabase::excavator_seed()];
        let base = PspConfig::excavator_europe();
        let configs = [base.clone(), base.clone().with_poisoning_filter(0.25)];
        let grid: Vec<Option<DateWindow>> = (2016..2020)
            .map(|y| Some(DateWindow::years(y, y + 1)))
            .collect();
        let spec = spec_of(&dbs, &configs, &grid);
        let posts = corpus.posts().to_vec();
        let mut live = LiveEngine::new(Corpus::new());
        for batch in posts.chunks(chunk) {
            // Evaluate *before* ingesting the next batch: caches plans the
            // ingest must invalidate.
            let _ = live.sai_matrix(&spec);
            live.ingest(batch.to_vec());
        }
        prop_assert_eq!(
            live.sai_matrix(&spec),
            ScoringEngine::new(&corpus).sai_matrix(&spec)
        );
    }
}

/// Word pool for synthetic post text: attack tags, their fragments, noise.
const WORDS: [&str; 12] = [
    "#dpfdelete",
    "dpfdelete",
    "#egrdelete",
    "egr",
    "kit",
    "sale",
    "360",
    "EUR",
    "excavator",
    "quarry",
    "#jobsite",
    "install",
];

fn arb_region() -> impl Strategy<Value = Region> {
    prop_oneof![
        Just(Region::Europe),
        Just(Region::NorthAmerica),
        Just(Region::AsiaPacific),
    ]
}

fn arb_application() -> impl Strategy<Value = TargetApplication> {
    prop_oneof![
        Just(TargetApplication::Excavator),
        Just(TargetApplication::PassengerCar),
    ]
}

fn arb_post() -> impl Strategy<Value = Post> {
    (
        prop::collection::vec(0usize..WORDS.len(), 0..7),
        2015i32..2024,
        1u8..=12,
        1u8..=28,
        arb_region(),
        arb_application(),
        0u64..50_000,
        0u64..500,
    )
        .prop_map(
            |(word_ids, year, month, day, region, application, views, likes)| {
                let text: Vec<&str> = word_ids.iter().map(|i| WORDS[*i]).collect();
                Post::new(
                    0,
                    User::new("matrix_prop_user", views / 100, 24),
                    text.join(" "),
                    vec![],
                    SimDate::new(year, month, day),
                    region,
                    application,
                    Engagement::new(views, likes, likes / 4, likes / 8),
                )
            },
        )
}

fn arb_corpus() -> impl Strategy<Value = Corpus> {
    prop::collection::vec(arb_post(), 0..40).prop_map(|posts| {
        Corpus::from_posts(
            posts
                .into_iter()
                .enumerate()
                .map(|(id, post)| {
                    Post::new(
                        id as u64 + 1,
                        post.author().clone(),
                        post.text(),
                        vec![],
                        post.date(),
                        post.region(),
                        post.application(),
                        *post.engagement(),
                    )
                })
                .collect::<Vec<_>>(),
        )
    })
}

/// Random shard axes and granularities: 1-4-year time buckets or regions.
fn arb_spec() -> impl Strategy<Value = ShardSpec> {
    prop_oneof![
        (1i32..5).prop_map(ShardSpec::ByTimeYears),
        Just(ShardSpec::ByRegion),
    ]
}

/// Random SAI weight presets — the weight-ablation axis.
fn arb_weights() -> impl Strategy<Value = SaiWeights> {
    prop_oneof![
        Just(SaiWeights::default()),
        Just(SaiWeights::views_only()),
        Just(SaiWeights::interactions_only()),
    ]
}

/// Random grid entries: full-history or a 1-3-year window.
fn arb_window() -> impl Strategy<Value = Option<DateWindow>> {
    prop_oneof![
        Just(None),
        (2014i32..2023, 1i32..4)
            .prop_map(|(year, span)| Some(DateWindow::years(year, year + span - 1))),
    ]
}

/// Thread-count independence of the matrix fan-out on every engine shape —
/// shim-only determinism hook, see `tests/sharding.rs`.
#[cfg(feature = "shim-rayon")]
mod thread_count_independence {
    use super::*;

    #[test]
    fn matrices_are_identical_at_every_thread_count() {
        let corpus = scenario::excavator_europe(42);
        let base = PspConfig::excavator_europe();
        let windows: Vec<DateWindow> = (2018..2023).map(|y| DateWindow::years(y, y)).collect();
        let spec = MatrixSpec::new()
            .scenario("excavator", KeywordDatabase::excavator_seed())
            .scenario("car", KeywordDatabase::passenger_car_seed())
            .config("balanced", base.clone())
            .config(
                "views-only",
                base.clone().with_weights(SaiWeights::views_only()),
            )
            .full_history()
            .windows(&windows);

        let reference =
            rayon::with_thread_count(1, || ScoringEngine::new(&corpus).sai_matrix(&spec));
        for threads in [1, 2, 3, 8] {
            let (single, live, sharded) = rayon::with_thread_count(threads, || {
                (
                    ScoringEngine::new(&corpus).sai_matrix(&spec),
                    LiveEngine::new(corpus.clone()).sai_matrix(&spec),
                    ShardedEngine::new(corpus.clone(), ShardSpec::yearly()).sai_matrix(&spec),
                )
            });
            assert_eq!(single, reference, "single matrix at {threads} threads");
            assert_eq!(live, reference, "live matrix at {threads} threads");
            assert_eq!(sharded, reference, "sharded matrix at {threads} threads");
        }
    }
}
