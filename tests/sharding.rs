//! Integration suite for the sharded corpus engine: edge cases of the
//! partition/merge machinery (empty shards, degenerate single-shard layouts,
//! boundary dates, absent regions, disjoint vocabularies) and — behind the
//! `shim-rayon` feature — thread-count independence of the fan-out paths.
//!
//! The bar everywhere is bit-exactness: `ShardedEngine` must agree with the
//! unsharded `ScoringEngine` *and* the naive `SaiList::compute_naive` oracle
//! to the last bit, never merely approximately.

use psp_suite::psp::config::PspConfig;
use psp_suite::psp::engine::{ScoringEngine, ShardedEngine};
use psp_suite::psp::keyword_db::KeywordDatabase;
use psp_suite::psp::sai::SaiList;
use psp_suite::socialsim::corpus::Corpus;
use psp_suite::socialsim::engagement::Engagement;
use psp_suite::socialsim::index::{ShardKey, ShardSpec};
use psp_suite::socialsim::post::{Post, Region, TargetApplication};
use psp_suite::socialsim::scenario;
use psp_suite::socialsim::time::{DateWindow, SimDate};
use psp_suite::socialsim::user::User;

fn post_on(id: u64, text: &str, date: SimDate, region: Region) -> Post {
    Post::new(
        id,
        User::new("shard_user", 80, 18),
        text,
        vec![],
        date,
        region,
        TargetApplication::Excavator,
        Engagement::new(1_500, 40, 8, 4),
    )
}

fn excavator_setup() -> (KeywordDatabase, PspConfig) {
    (
        KeywordDatabase::excavator_seed(),
        PspConfig::excavator_europe(),
    )
}

/// Asserts the sharded engine agrees bit-for-bit with both unsharded paths.
fn assert_bit_identical(sharded: &ShardedEngine, corpus: &Corpus, config: &PspConfig) {
    let db = KeywordDatabase::excavator_seed();
    let merged = sharded.sai_list(&db, config);
    assert_eq!(merged, ScoringEngine::new(corpus).sai_list(&db, config));
    assert_eq!(merged, SaiList::compute_naive(corpus, &db, config));
}

#[test]
fn empty_corpus_yields_zero_shards_and_zero_evidence() {
    let (db, config) = excavator_setup();
    for spec in [ShardSpec::yearly(), ShardSpec::ByRegion] {
        let sharded = ShardedEngine::new(Corpus::new(), spec);
        assert_eq!(sharded.shard_count(), 0);
        assert_eq!(sharded.post_count(), 0);
        let list = sharded.sai_list(&db, &config);
        assert_eq!(list.len(), db.len());
        assert!(list
            .entries()
            .iter()
            .all(|e| e.sai == 0.0 && e.probability == 0.0));
        assert_bit_identical(&sharded, &Corpus::new(), &config);
    }
}

#[test]
fn single_shard_degenerate_case_matches_the_unsharded_engine() {
    // A span wider than the whole corpus history puts every post in one
    // shard: the sharded engine degenerates to a single-engine pass through
    // the partial/merge machinery, and must still agree to the bit.
    let corpus = scenario::excavator_europe(42);
    let (_, config) = excavator_setup();
    let sharded = ShardedEngine::new(corpus.clone(), ShardSpec::ByTimeYears(1_000));
    assert_eq!(sharded.shard_count(), 1);
    assert_bit_identical(&sharded, &corpus, &config);

    // Same degeneracy on the region axis: a single-region corpus.
    let regional = ShardedEngine::new(corpus.clone(), ShardSpec::ByRegion);
    assert_eq!(regional.shard_count(), 1);
    assert_bit_identical(&regional, &corpus, &config);
}

#[test]
fn posts_exactly_on_shard_boundaries_land_in_exactly_one_shard() {
    // Dec 28 is the last representable day of a simulated year and Jan 1 the
    // first of the next: these two posts straddle the yearly shard boundary.
    let corpus = Corpus::from_posts(vec![
        post_on(
            1,
            "#dpfdelete late",
            SimDate::new(2020, 12, 28),
            Region::Europe,
        ),
        post_on(
            2,
            "#dpfdelete early",
            SimDate::new(2021, 1, 1),
            Region::Europe,
        ),
        post_on(
            3,
            "#dpfdelete mid",
            SimDate::new(2021, 6, 15),
            Region::Europe,
        ),
    ]);
    let (db, config) = excavator_setup();
    let sharded = ShardedEngine::new(corpus.clone(), ShardSpec::yearly());
    assert_eq!(
        sharded.shard_sizes(),
        vec![
            (
                ShardKey::Years {
                    from: 2020,
                    to: 2020
                },
                1
            ),
            (
                ShardKey::Years {
                    from: 2021,
                    to: 2021
                },
                2
            ),
        ]
    );
    assert_bit_identical(&sharded, &corpus, &config);

    // A window ending exactly on the boundary day only sees the 2020 post —
    // through the pruned sharded path and the naive scan alike.
    let boundary = config.clone().with_window(DateWindow::years(2020, 2020));
    let list = sharded.sai_list(&db, &boundary);
    assert_eq!(list.entries().iter().map(|e| e.posts).sum::<usize>(), 1);
    assert_bit_identical(&sharded, &corpus, &boundary);

    // Multi-year buckets put both boundary posts in one shard; still exact.
    let wide = ShardedEngine::new(corpus.clone(), ShardSpec::ByTimeYears(2));
    assert_bit_identical(&wide, &corpus, &boundary);
}

#[test]
fn a_region_absent_from_every_shard_scores_zero_everywhere() {
    // All posts are NorthAmerica; the excavator config filters on Europe, a
    // region no shard holds.  Region shards are all pruned, time shards all
    // scan and find nothing — both must equal the naive zero result.
    let corpus = Corpus::from_posts(vec![
        post_on(
            1,
            "#dpfdelete done",
            SimDate::new(2020, 3, 3),
            Region::NorthAmerica,
        ),
        post_on(
            2,
            "#egrdelete next",
            SimDate::new(2021, 4, 4),
            Region::NorthAmerica,
        ),
    ]);
    let (db, config) = excavator_setup();
    for spec in [ShardSpec::ByRegion, ShardSpec::yearly()] {
        let sharded = ShardedEngine::new(corpus.clone(), spec);
        let list = sharded.sai_list(&db, &config);
        assert!(list.entries().iter().all(|e| e.posts == 0 && e.sai == 0.0));
        assert_bit_identical(&sharded, &corpus, &config);
    }
}

#[test]
fn merging_shards_with_disjoint_vocabularies_is_exact() {
    // Two year-shards whose posts share no single token: every keyword's
    // evidence lives entirely in one shard, so the merge must interleave
    // "one-sided" partials correctly (and keep prices in global post order).
    let corpus = Corpus::from_posts(vec![
        post_on(
            1,
            "#dpfdelete kit 360 EUR",
            SimDate::new(2019, 5, 5),
            Region::Europe,
        ),
        post_on(
            2,
            "#dpfdelete story",
            SimDate::new(2019, 7, 7),
            Region::Europe,
        ),
        post_on(
            3,
            "#egrdelete howto 250 EUR",
            SimDate::new(2022, 5, 5),
            Region::Europe,
        ),
        post_on(
            4,
            "#egrdelete replies",
            SimDate::new(2022, 7, 7),
            Region::Europe,
        ),
    ]);
    let (db, config) = excavator_setup();
    let sharded = ShardedEngine::new(corpus.clone(), ShardSpec::yearly());
    assert_eq!(sharded.shard_count(), 2);
    let list = sharded.sai_list(&db, &config);
    let dpf = list.entry("dpfdelete").expect("dpf keyword scored");
    let egr = list.entry("egrdelete").expect("egr keyword scored");
    assert_eq!(dpf.posts, 2);
    assert_eq!(egr.posts, 2);
    assert_eq!(dpf.prices, vec![360.0]);
    assert_eq!(egr.prices, vec![250.0]);
    assert_bit_identical(&sharded, &corpus, &config);
}

#[test]
fn interleaved_time_shards_merge_back_into_global_post_order() {
    // Alternating years put interleaved global ids in the two year-shards
    // (0,2,4 vs 1,3,5), so the merge must genuinely k-way interleave the id
    // streams — concatenating shard results would scramble the price order
    // and the intent fold.
    let mut posts = Vec::new();
    for i in 0..6_u64 {
        let year = if i % 2 == 0 { 2019 } else { 2022 };
        let price = 300.0 + i as f64;
        posts.push(post_on(
            i + 1,
            &format!("#dpfdelete kit {price} EUR"),
            SimDate::new(year, 1 + i as u8, 10),
            Region::Europe,
        ));
    }
    let corpus = Corpus::from_posts(posts);
    let (db, config) = excavator_setup();
    let sharded = ShardedEngine::new(corpus.clone(), ShardSpec::yearly());
    assert_eq!(sharded.shard_count(), 2);
    assert_bit_identical(&sharded, &corpus, &config);

    // Prices come back in global posting order, not shard-major order.
    let list = sharded.sai_list(&db, &config);
    let dpf = list.entry("dpfdelete").expect("scored");
    assert_eq!(dpf.prices, vec![300.0, 301.0, 302.0, 303.0, 304.0, 305.0]);
}

#[test]
fn windowed_sweeps_prune_shards_without_changing_results() {
    let corpus = scenario::excavator_europe(42);
    let db = KeywordDatabase::excavator_seed();
    let configs: Vec<PspConfig> = (2015..2024)
        .map(|y| PspConfig::excavator_europe().with_window(DateWindow::years(y, y)))
        .collect();
    let sharded = ShardedEngine::new(corpus.clone(), ShardSpec::yearly());
    let single = ScoringEngine::new(&corpus);
    assert_eq!(
        sharded.sai_lists(&db, &configs),
        single.sai_lists(&db, &configs)
    );
}

/// Thread-count independence of the sharded fan-out and merge (guards against
/// order-dependent merge bugs).  Uses the rayon shim's scoped
/// `with_thread_count` override, which real rayon does not expose — hence the
/// `shim-rayon` feature gate (see the workspace `Cargo.toml`); with real
/// rayon, size the global pool via `RAYON_NUM_THREADS` instead.
#[cfg(feature = "shim-rayon")]
mod thread_count_independence {
    use super::*;

    #[test]
    fn sharded_and_fanout_results_are_identical_at_every_thread_count() {
        let corpus = scenario::excavator_europe(42);
        let (db, config) = excavator_setup();
        let windowed = config.clone().with_window(DateWindow::years(2019, 2022));

        let reference_single =
            rayon::with_thread_count(1, || ScoringEngine::new(&corpus).sai_list(&db, &config));
        let reference_sharded = rayon::with_thread_count(1, || {
            ShardedEngine::new(corpus.clone(), ShardSpec::yearly()).sai_list(&db, &windowed)
        });

        for threads in [1, 2, 3, 8] {
            let (single, sharded_full, sharded_windowed) =
                rayon::with_thread_count(threads, || {
                    let single = ScoringEngine::new(&corpus).sai_list(&db, &config);
                    let sharded = ShardedEngine::new(corpus.clone(), ShardSpec::yearly());
                    (
                        single,
                        sharded.sai_list(&db, &config),
                        sharded.sai_list(&db, &windowed),
                    )
                });
            assert_eq!(
                single, reference_single,
                "single engine at {threads} threads"
            );
            assert_eq!(
                sharded_full, reference_single,
                "sharded full pass at {threads} threads"
            );
            assert_eq!(
                sharded_windowed, reference_sharded,
                "sharded windowed pass at {threads} threads"
            );
        }
    }

    #[test]
    fn batched_window_sweeps_are_thread_count_independent() {
        let corpus = scenario::excavator_europe(7);
        let db = KeywordDatabase::excavator_seed();
        let configs: Vec<PspConfig> = (2018..2024)
            .map(|y| PspConfig::excavator_europe().with_window(DateWindow::years(y, y)))
            .collect();
        let reference = rayon::with_thread_count(1, || {
            ShardedEngine::new(corpus.clone(), ShardSpec::ByTimeYears(2)).sai_lists(&db, &configs)
        });
        for threads in [2, 5, 16] {
            let swept = rayon::with_thread_count(threads, || {
                ShardedEngine::new(corpus.clone(), ShardSpec::ByTimeYears(2))
                    .sai_lists(&db, &configs)
            });
            assert_eq!(swept, reference, "sweep diverged at {threads} threads");
        }
    }
}
