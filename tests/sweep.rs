//! Integration and property suite for the sweep plane (`sai_windows`): the
//! prefix-summed columnar window sweep must be **bit-identical** to scoring
//! each window through the batch `sai_lists` path, to one `sai_list` call per
//! window, and to the naive `SaiList::compute_naive` oracle — on all three
//! engine shapes, over random corpora, window grids, shard axes and (behind
//! the `shim-rayon` feature) forced thread counts.
//!
//! The sweep answers the integer evidence by prefix-sum subtraction and
//! re-folds the order-sensitive float evidence per window; these tests are
//! what keeps that decomposition honest to the last bit.

use proptest::prelude::*;
use psp_suite::psp::config::PspConfig;
use psp_suite::psp::engine::{LiveEngine, SaiScorer, ScoringEngine, ShardedEngine, WindowAxis};
use psp_suite::psp::keyword_db::KeywordDatabase;
use psp_suite::psp::sai::SaiList;
use psp_suite::socialsim::corpus::Corpus;
use psp_suite::socialsim::engagement::Engagement;
use psp_suite::socialsim::index::ShardSpec;
use psp_suite::socialsim::post::{Post, Region, TargetApplication};
use psp_suite::socialsim::scenario;
use psp_suite::socialsim::time::{DateWindow, SimDate};
use psp_suite::socialsim::user::User;

fn excavator_setup() -> (KeywordDatabase, PspConfig) {
    (
        KeywordDatabase::excavator_seed(),
        PspConfig::excavator_europe(),
    )
}

/// One config per window — the unswept reference shape.
fn windowed_configs(base: &PspConfig, windows: &[DateWindow]) -> Vec<PspConfig> {
    windows
        .iter()
        .map(|w| base.clone().with_window(*w))
        .collect()
}

/// Asserts a sweep over `windows` matches, per window, the batch path, the
/// one-at-a-time path and the naive oracle — bit for bit.
fn assert_sweep_exact<E: SaiScorer>(
    engine: &E,
    corpus: &Corpus,
    db: &KeywordDatabase,
    base: &PspConfig,
    windows: &[DateWindow],
) {
    let swept = engine.sai_windows(db, base, &WindowAxis::each(windows));
    assert_eq!(swept.len(), windows.len());
    let configs = windowed_configs(base, windows);
    assert_eq!(
        swept,
        engine.sai_lists(db, &configs),
        "sweep vs batch lists"
    );
    for (config, list) in configs.iter().zip(&swept) {
        assert_eq!(list, &engine.sai_list(db, config), "sweep vs single list");
        assert_eq!(
            list,
            &SaiList::compute_naive(corpus, db, config),
            "sweep vs naive oracle"
        );
    }
}

#[test]
fn sweep_is_exact_on_the_reference_scenes_for_all_three_shapes() {
    let corpus = scenario::passenger_car_europe(42);
    let db = KeywordDatabase::passenger_car_seed();
    let base = PspConfig::passenger_car_europe();
    // Overlapping two-year windows plus one duplicate and one empty-range
    // year, deliberately unordered: the sweep must not assume sorted,
    // disjoint or distinct windows.
    let windows: Vec<DateWindow> = vec![
        DateWindow::years(2019, 2020),
        DateWindow::years(2015, 2016),
        DateWindow::years(2020, 2021),
        DateWindow::years(2019, 2020),
        DateWindow::years(1999, 2000),
        DateWindow::years(2015, 2023),
    ];
    let single = ScoringEngine::new(&corpus);
    assert_sweep_exact(&single, &corpus, &db, &base, &windows);

    let mut live = LiveEngine::new(Corpus::new());
    for chunk in corpus.posts().to_vec().chunks(97) {
        live.ingest(chunk.to_vec());
    }
    assert_sweep_exact(&live, &corpus, &db, &base, &windows);

    for spec in [
        ShardSpec::yearly(),
        ShardSpec::ByTimeYears(3),
        ShardSpec::ByRegion,
    ] {
        let sharded = ShardedEngine::new(corpus.clone(), spec);
        assert_sweep_exact(&sharded, &corpus, &db, &base, &windows);
    }
}

#[test]
fn weight_presets_share_one_plan_without_changing_results() {
    // SAI weights are applied at sweep time, not baked into the cached plan:
    // sweeping the same windows under different weight presets must stay
    // exact for each preset.
    let corpus = scenario::passenger_car_europe(42);
    let db = KeywordDatabase::passenger_car_seed();
    let windows: Vec<DateWindow> = (2016..2023).map(|y| DateWindow::years(y, y)).collect();
    let engine = ScoringEngine::new(&corpus);
    for weights in [
        psp_suite::psp::config::SaiWeights::default(),
        psp_suite::psp::config::SaiWeights::views_only(),
        psp_suite::psp::config::SaiWeights::interactions_only(),
    ] {
        let base = PspConfig::passenger_car_europe().with_weights(weights);
        assert_eq!(
            engine.sai_windows(&db, &base, &WindowAxis::each(&windows)),
            engine.sai_lists(&db, &windowed_configs(&base, &windows)),
            "weights {weights:?}"
        );
    }
}

#[test]
fn sweep_honours_the_poisoning_filter() {
    let corpus = scenario::excavator_europe(7);
    let (db, base) = excavator_setup();
    let filtered = base.with_poisoning_filter(0.25);
    let windows: Vec<DateWindow> = (2017..2023).map(|y| DateWindow::years(y, y + 1)).collect();
    let engine = ScoringEngine::new(&corpus);
    assert_sweep_exact(&engine, &corpus, &db, &filtered, &windows);
    let sharded = ShardedEngine::new(corpus.clone(), ShardSpec::ByTimeYears(2));
    assert_sweep_exact(&sharded, &corpus, &db, &filtered, &windows);
}

/// A Europe/excavator post at an explicit date, with a mined price so the
/// order-sensitive price stream is exercised.
fn dated_post(id: u64, date: SimDate, price: u32) -> Post {
    Post::new(
        id,
        User::new("sweep_user", 90, 20),
        format!("#dpfdelete kit {price} EUR"),
        vec![],
        date,
        Region::Europe,
        TargetApplication::Excavator,
        Engagement::new(1_200, 30, 6, 3),
    )
}

#[test]
fn backdated_posts_keep_the_fold_in_post_id_order() {
    // Ids and dates run in *opposite* directions, so inside any window the
    // date-sorted columns disagree with post-id order: the per-window re-sort
    // is what keeps the intent fold and the price stream bit-identical.
    let posts: Vec<Post> = (0..8_u64)
        .map(|i| {
            dated_post(
                i + 1,
                SimDate::new(2022 - i as i32 / 2, 1 + i as u8, 5),
                300 + i as u32,
            )
        })
        .collect();
    let corpus = Corpus::from_posts(posts);
    let (db, base) = excavator_setup();
    let windows: Vec<DateWindow> = (2018..2023).map(|y| DateWindow::years(y, y + 1)).collect();
    let engine = ScoringEngine::new(&corpus);
    assert_sweep_exact(&engine, &corpus, &db, &base, &windows);

    // The full-history window returns the prices in ascending post-id order,
    // not date order.
    let all = &engine.sai_windows(
        &db,
        &base,
        &WindowAxis::each(&[DateWindow::years(2015, 2025)]),
    )[0];
    let dpf = all.entry("dpfdelete").expect("scored");
    assert_eq!(
        dpf.prices,
        (0..8).map(|i| 300.0 + f64::from(i)).collect::<Vec<_>>()
    );
}

#[test]
fn posts_sharing_one_date_stay_in_id_order_across_window_bounds() {
    // Many posts on the exact window boundary day: the stable date sort must
    // keep them in ascending id order, and a window ending on that day must
    // include them all.
    let boundary = SimDate::new(2020, 12, 28);
    let posts: Vec<Post> = (0..5_u64)
        .map(|i| dated_post(i + 1, boundary, 400 + i as u32))
        .chain((5..8_u64).map(|i| dated_post(i + 1, SimDate::new(2021, 1, 1), 500 + i as u32)))
        .collect();
    let corpus = Corpus::from_posts(posts);
    let (db, base) = excavator_setup();
    let engine = ScoringEngine::new(&corpus);
    let windows = [
        DateWindow::years(2020, 2020),
        DateWindow::years(2021, 2021),
        DateWindow::years(2020, 2021),
    ];
    assert_sweep_exact(&engine, &corpus, &db, &base, &windows);
    let swept = engine.sai_windows(&db, &base, &WindowAxis::each(&windows));
    let dpf = swept[0].entry("dpfdelete").expect("scored");
    assert_eq!(dpf.posts, 5);
    assert_eq!(dpf.prices, vec![400.0, 401.0, 402.0, 403.0, 404.0]);
}

#[test]
fn inverted_windows_report_zero_evidence_like_the_batch_path() {
    // DateWindow's fields are pub (and it deserialises), so an inverted
    // window can bypass DateWindow::new's bound swap.  It contains no date;
    // the sweep must degrade to zero evidence exactly like sai_lists, not
    // panic or wrap.
    let corpus = scenario::excavator_europe(7);
    let (db, base) = excavator_setup();
    let inverted = DateWindow {
        from: SimDate::new(2022, 1, 1),
        to: SimDate::new(2019, 1, 1),
    };
    let windows = [inverted, DateWindow::years(2020, 2021)];
    for engine in [
        Box::new(ScoringEngine::new(&corpus)) as Box<dyn SaiScorer + '_>,
        Box::new(ShardedEngine::new(corpus.clone(), ShardSpec::yearly())),
    ] {
        let swept = engine.sai_windows(&db, &base, &WindowAxis::each(&windows));
        assert_eq!(
            swept,
            engine.sai_lists(&db, &windowed_configs(&base, &windows))
        );
        assert!(swept[0]
            .entries()
            .iter()
            .all(|e| e.posts == 0 && e.sai == 0.0));
    }
}

#[test]
fn full_history_entries_ride_the_same_plan_as_windows() {
    let corpus = scenario::passenger_car_europe(42);
    let db = KeywordDatabase::passenger_car_seed();
    let base = PspConfig::passenger_car_europe();
    let recent = DateWindow::years(2021, 2023);
    for engine in [
        Box::new(ScoringEngine::new(&corpus)) as Box<dyn SaiScorer + '_>,
        Box::new(ShardedEngine::new(corpus.clone(), ShardSpec::yearly())),
    ] {
        let swept = engine.sai_windows(&db, &base, &WindowAxis::spans(&[None, Some(recent), None]));
        assert_eq!(swept[0], engine.sai_list(&db, &base));
        assert_eq!(swept[2], swept[0]);
        assert_eq!(
            swept[1],
            engine.sai_list(&db, &base.clone().with_window(recent))
        );
    }
}

#[test]
fn sharded_sweep_prunes_without_changing_results_after_ingest() {
    // Grow a sharded engine batch by batch (invalidating per-shard plans as
    // batches land in their shards), sweeping between ingests: every sweep
    // must match a cold single engine over the same grown corpus.
    let posts = scenario::excavator_europe(42).posts().to_vec();
    let (db, base) = excavator_setup();
    let windows: Vec<DateWindow> = (2015..2024).map(|y| DateWindow::years(y, y)).collect();
    let mut sharded = ShardedEngine::new(Corpus::new(), ShardSpec::yearly());
    let mut grown = Corpus::new();
    for chunk in posts.chunks(151) {
        sharded.ingest(chunk.to_vec());
        grown.extend(chunk.to_vec());
        let cold = ScoringEngine::new(&grown);
        assert_eq!(
            sharded.sai_windows(&db, &base, &WindowAxis::each(&windows)),
            cold.sai_windows(&db, &base, &WindowAxis::each(&windows)),
            "sweep diverged after ingesting {} posts",
            grown.len()
        );
    }
}

proptest! {
    /// On random corpora and window grids, the sweep over every engine shape
    /// is bit-identical to per-window batch scoring and the naive oracle.
    #[test]
    fn sweep_equals_per_window_scoring_on_random_corpora(
        corpus in arb_corpus(),
        from in 2014i32..2021,
        span in 1i32..4,
    ) {
        let (db, base) = excavator_setup();
        let windows: Vec<DateWindow> = (from..from + 4)
            .map(|y| DateWindow::years(y, y + span - 1))
            .collect();
        let configs = windowed_configs(&base, &windows);

        let single = ScoringEngine::new(&corpus);
        let swept = single.sai_windows(&db, &base, &WindowAxis::each(&windows));
        prop_assert_eq!(&swept, &single.sai_lists(&db, &configs));
        for (config, list) in configs.iter().zip(&swept) {
            prop_assert_eq!(list, &SaiList::compute_naive(&corpus, &db, config));
        }
    }

    /// The sharded sweep — any axis, any granularity — matches the single
    /// engine's sweep bit for bit.
    #[test]
    fn sharded_sweep_equals_single_sweep(
        corpus in arb_corpus(),
        spec in arb_spec(),
        from in 2014i32..2021,
    ) {
        let (db, base) = excavator_setup();
        let windows: Vec<DateWindow> = (from..from + 4)
            .map(|y| DateWindow::years(y, y + 1))
            .collect();
        let sharded = ShardedEngine::new(corpus.clone(), spec);
        let single = ScoringEngine::new(&corpus);
        prop_assert_eq!(
            sharded.sai_windows(&db, &base, &WindowAxis::each(&windows)),
            single.sai_windows(&db, &base, &WindowAxis::each(&windows))
        );
    }

    /// A live engine fed in arbitrary chunks — sweeping between ingests so
    /// plans are genuinely built, invalidated and rebuilt — sweeps exactly
    /// like a cold engine over the finished corpus.
    #[test]
    fn live_sweep_survives_ingest_invalidation(
        corpus in arb_corpus(),
        chunk in 1usize..9,
    ) {
        let (db, base) = excavator_setup();
        let windows: Vec<DateWindow> = (2016..2023)
            .map(|y| DateWindow::years(y, y))
            .collect();
        let posts = corpus.posts().to_vec();
        let mut live = LiveEngine::new(Corpus::new());
        for batch in posts.chunks(chunk) {
            // Sweep *before* ingesting the next batch: caches a plan that the
            // ingest must invalidate.
            let _ = live.sai_windows(&db, &base, &WindowAxis::each(&windows));
            live.ingest(batch.to_vec());
        }
        prop_assert_eq!(
            live.sai_windows(&db, &base, &WindowAxis::each(&windows)),
            ScoringEngine::new(&corpus).sai_windows(&db, &base, &WindowAxis::each(&windows))
        );
    }

    /// Sweeping with the poisoning filter on random corpora stays exact (the
    /// credibility rule is baked into the plan, not re-checked per window).
    #[test]
    fn filtered_sweep_equals_naive_on_random_corpora(corpus in arb_corpus()) {
        let (db, base) = excavator_setup();
        let filtered = base.with_poisoning_filter(0.25);
        let windows = [DateWindow::years(2016, 2018), DateWindow::years(2019, 2023)];
        let engine = ScoringEngine::new(&corpus);
        let swept = engine.sai_windows(&db, &filtered, &WindowAxis::each(&windows));
        for (config, list) in windowed_configs(&filtered, &windows).iter().zip(&swept) {
            prop_assert_eq!(list, &SaiList::compute_naive(&corpus, &db, config));
        }
    }
}

/// Word pool for synthetic post text: attack tags, their fragments, noise.
const WORDS: [&str; 12] = [
    "#dpfdelete",
    "dpfdelete",
    "#egrdelete",
    "egr",
    "kit",
    "sale",
    "360",
    "EUR",
    "excavator",
    "quarry",
    "#jobsite",
    "install",
];

fn arb_region() -> impl Strategy<Value = Region> {
    prop_oneof![
        Just(Region::Europe),
        Just(Region::NorthAmerica),
        Just(Region::AsiaPacific),
    ]
}

fn arb_application() -> impl Strategy<Value = TargetApplication> {
    prop_oneof![
        Just(TargetApplication::Excavator),
        Just(TargetApplication::PassengerCar),
    ]
}

fn arb_post() -> impl Strategy<Value = Post> {
    (
        prop::collection::vec(0usize..WORDS.len(), 0..7),
        2015i32..2024,
        1u8..=12,
        1u8..=28,
        arb_region(),
        arb_application(),
        0u64..50_000,
        0u64..500,
    )
        .prop_map(
            |(word_ids, year, month, day, region, application, views, likes)| {
                let text: Vec<&str> = word_ids.iter().map(|i| WORDS[*i]).collect();
                Post::new(
                    0,
                    User::new("sweep_prop_user", views / 100, 24),
                    text.join(" "),
                    vec![],
                    SimDate::new(year, month, day),
                    region,
                    application,
                    Engagement::new(views, likes, likes / 4, likes / 8),
                )
            },
        )
}

fn arb_corpus() -> impl Strategy<Value = Corpus> {
    prop::collection::vec(arb_post(), 0..40).prop_map(|posts| {
        Corpus::from_posts(
            posts
                .into_iter()
                .enumerate()
                .map(|(id, post)| {
                    Post::new(
                        id as u64 + 1,
                        post.author().clone(),
                        post.text(),
                        vec![],
                        post.date(),
                        post.region(),
                        post.application(),
                        *post.engagement(),
                    )
                })
                .collect::<Vec<_>>(),
        )
    })
}

/// Random shard axes and granularities: 1-4-year time buckets or regions.
fn arb_spec() -> impl Strategy<Value = ShardSpec> {
    prop_oneof![
        (1i32..5).prop_map(ShardSpec::ByTimeYears),
        Just(ShardSpec::ByRegion),
    ]
}

/// Thread-count independence of the sweep fan-out on every engine shape —
/// shim-only determinism hook, see `tests/sharding.rs`.
#[cfg(feature = "shim-rayon")]
mod thread_count_independence {
    use super::*;

    #[test]
    fn sweeps_are_identical_at_every_thread_count() {
        let corpus = scenario::excavator_europe(42);
        let (db, base) = excavator_setup();
        let windows: Vec<DateWindow> = (2016..2024).map(|y| DateWindow::years(y, y)).collect();

        let reference = rayon::with_thread_count(1, || {
            ScoringEngine::new(&corpus).sai_windows(&db, &base, &WindowAxis::each(&windows))
        });
        for threads in [1, 2, 3, 8] {
            let (single, live, sharded) =
                rayon::with_thread_count(threads, || {
                    let single = ScoringEngine::new(&corpus).sai_windows(
                        &db,
                        &base,
                        &WindowAxis::each(&windows),
                    );
                    let live = LiveEngine::new(corpus.clone()).sai_windows(
                        &db,
                        &base,
                        &WindowAxis::each(&windows),
                    );
                    let sharded = ShardedEngine::new(corpus.clone(), ShardSpec::yearly())
                        .sai_windows(&db, &base, &WindowAxis::each(&windows));
                    (single, live, sharded)
                });
            assert_eq!(single, reference, "single sweep at {threads} threads");
            assert_eq!(live, reference, "live sweep at {threads} threads");
            assert_eq!(sharded, reference, "sharded sweep at {threads} threads");
        }
    }
}
