//! Machine-readable perf reports and the committed-baseline comparison.
//!
//! The perf benches (`engine_scaling`, `engine_ingest`) write one
//! [`PerfReport`] per run to `target/perf/<bench>.json`.  A blessed copy of
//! each report is committed under `crates/bench/baselines/`, and the CI
//! `perf-smoke` job re-runs the benches at small sizes and fails the build
//! when a fresh run regresses more than a factor (default 2x) against the
//! committed numbers — see [`compare_with`] and the `perf_check` binary.
//!
//! Reports carry two kinds of rows:
//!
//! * **metrics** — absolute mean nanoseconds per measured path.  These are
//!   machine-dependent, so a baseline blessed on one machine does not bound a
//!   run on different hardware — CI skips them (`perf_check --ratios-only`)
//!   and they are enforced only for same-machine comparisons;
//! * **ratios** — dimensionless speedups (e.g. append-then-score vs
//!   rebuild-then-score).  Both sides of a ratio run on the same machine in
//!   the same process, so ratios transfer across hardware far better than
//!   absolute timings and are the primary regression signal.  They are not
//!   perfectly portable: a ratio whose fast side parallelises (rayon) scales
//!   with core count while the naive side does not, so baselines are blessed
//!   on a low-core machine — more cores only raise such ratios above the
//!   enforced floor, never below it.
//!
//! Only rows present in *both* the baseline and the fresh report are compared,
//! which is what lets CI run the benches at reduced sizes against a baseline
//! recorded at full scale.
//!
//! To bless a new baseline after an intentional perf change:
//!
//! ```text
//! cargo bench --bench engine_scaling
//! cargo bench --bench engine_ingest
//! cp target/perf/engine_scaling.json crates/bench/baselines/
//! cp target/perf/engine_ingest.json crates/bench/baselines/
//! ```

use criterion::Criterion;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// The mean nanoseconds the criterion shim measured for one bench id
/// (`group/name/size`), `NaN` when the row was not measured this run — the
/// shared results lookup of the perf benches.  (Shim-only API: real criterion
/// has no `results()`; see the ROADMAP porting note.)
#[must_use]
pub fn mean_ns(c: &Criterion, name: &str) -> f64 {
    c.results()
        .iter()
        .find(|r| r.name == name)
        .map(|r| r.mean_ns)
        .unwrap_or(f64::NAN)
}

/// One bench run's machine-readable results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// The bench that produced the report (`engine_scaling`, `engine_ingest`).
    pub bench: String,
    /// Absolute timings: `(row name, mean nanoseconds)`.
    pub metrics: Vec<(String, f64)>,
    /// Dimensionless speedups: `(row name, ratio)`.  Larger is better.
    pub ratios: Vec<(String, f64)>,
}

impl PerfReport {
    /// An empty report for one bench.
    #[must_use]
    pub fn new(bench: &str) -> Self {
        Self {
            bench: bench.to_string(),
            metrics: Vec::new(),
            ratios: Vec::new(),
        }
    }

    /// Records an absolute timing row.  Non-finite values (a bench that did
    /// not run at this size) are silently skipped so reduced-size runs produce
    /// valid, smaller reports.
    pub fn push_metric(&mut self, name: impl Into<String>, mean_ns: f64) {
        if mean_ns.is_finite() {
            self.metrics.push((name.into(), mean_ns));
        }
    }

    /// Records a speedup row; non-finite ratios are skipped.
    pub fn push_ratio(&mut self, name: impl Into<String>, ratio: f64) {
        if ratio.is_finite() {
            self.ratios.push((name.into(), ratio));
        }
    }

    /// The absolute timing row with this name, if present.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The speedup row with this name, if present.
    #[must_use]
    pub fn ratio(&self, name: &str) -> Option<f64> {
        self.ratios.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Serialises the report as pretty JSON to `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Returns a description when serialisation or any filesystem step fails.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|err| format!("serialise perf report: {err:?}"))?;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|err| format!("create {}: {err}", parent.display()))?;
        }
        std::fs::write(path, json + "\n").map_err(|err| format!("write {}: {err}", path.display()))
    }

    /// Loads a report from JSON.
    ///
    /// # Errors
    ///
    /// Returns a description when the file is unreadable or malformed.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|err| format!("read {}: {err}", path.display()))?;
        serde_json::from_str(&text).map_err(|err| format!("parse {}: {err:?}", path.display()))
    }
}

/// Where a bench writes its fresh report: `target/perf/<bench>.json`,
/// honouring `CARGO_TARGET_DIR`.
#[must_use]
pub fn fresh_report_path(bench: &str) -> PathBuf {
    let target_dir = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target"));
    target_dir.join("perf").join(format!("{bench}.json"))
}

/// The committed baseline for a bench: `crates/bench/baselines/<bench>.json`.
#[must_use]
pub fn baseline_path(bench: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("baselines")
        .join(format!("{bench}.json"))
}

/// Bench sizes from the `PSP_BENCH_SIZES` environment variable (comma-separated
/// post counts), falling back to `default`.  This is how the CI perf-smoke job
/// runs the scaling benches at reduced sizes.
#[must_use]
pub fn sizes_from_env(default: &[usize]) -> Vec<usize> {
    parse_sizes(std::env::var("PSP_BENCH_SIZES").ok().as_deref(), default)
}

/// Parses a `PSP_BENCH_SIZES`-style override (`"1000,10000"`), falling back to
/// `default` when the value is absent or yields no positive sizes.
#[must_use]
pub fn parse_sizes(raw: Option<&str>, default: &[usize]) -> Vec<usize> {
    let sizes: Vec<usize> = raw
        .unwrap_or("")
        .split(',')
        .filter_map(|part| part.trim().parse().ok())
        .filter(|n| *n > 0)
        .collect();
    if sizes.is_empty() {
        default.to_vec()
    } else {
        sizes
    }
}

/// One comparison row that exceeded the allowed regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The metric/ratio name.
    pub name: String,
    /// The committed baseline value.
    pub baseline: f64,
    /// The value measured by the fresh run.
    pub fresh: f64,
    /// The threshold the fresh value violated.
    pub limit: f64,
    /// Whether the row is a speedup ratio (fresh must stay *above* the limit)
    /// rather than an absolute timing (fresh must stay *below* it).
    pub is_ratio: bool,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ratio {
            write!(
                f,
                "{}: speedup {:.2}x fell below {:.2}x (baseline {:.2}x)",
                self.name, self.fresh, self.limit, self.baseline
            )
        } else {
            write!(
                f,
                "{}: {:.0} ns exceeded {:.0} ns (baseline {:.0} ns)",
                self.name, self.fresh, self.limit, self.baseline
            )
        }
    }
}

/// One row present in both the baseline and the fresh report — recorded for
/// every checked row (not only regressions), so a passing perf-smoke run
/// still logs the measured-vs-baseline trend.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedRow {
    /// The metric/ratio name.
    pub name: String,
    /// The committed baseline value.
    pub baseline: f64,
    /// The value measured by the fresh run.
    pub fresh: f64,
    /// Whether the row is a speedup ratio (larger is better) rather than an
    /// absolute timing (smaller is better).
    pub is_ratio: bool,
}

impl CheckedRow {
    /// Fresh-over-baseline for ratios, baseline-over-fresh for timings — so
    /// the printed factor reads "≥ 1.0 is at least as good as the baseline"
    /// either way.
    #[must_use]
    pub fn vs_baseline(&self) -> f64 {
        if self.is_ratio {
            self.fresh / self.baseline
        } else {
            self.baseline / self.fresh
        }
    }
}

impl fmt::Display for CheckedRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ratio {
            write!(
                f,
                "{}: speedup {:.2}x vs baseline {:.2}x ({:.2}x of baseline)",
                self.name,
                self.fresh,
                self.baseline,
                self.vs_baseline()
            )
        } else {
            write!(
                f,
                "{}: {:.0} ns vs baseline {:.0} ns ({:.2}x of baseline)",
                self.name,
                self.fresh,
                self.baseline,
                self.vs_baseline()
            )
        }
    }
}

/// The outcome of comparing a fresh report against a committed baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Number of rows present in both reports and therefore checked.
    pub checked: usize,
    /// Every checked row with both its values — regressed or not.
    pub rows: Vec<CheckedRow>,
    /// The rows that regressed beyond the allowed factor.
    pub regressions: Vec<Regression>,
}

impl Comparison {
    /// Whether every checked row stayed within the allowed regression.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares a fresh report against the committed baseline, checking both
/// absolute metrics and speedup ratios — the right call when both reports
/// come from the same machine.  See [`compare_with`].
#[must_use]
pub fn compare(baseline: &PerfReport, fresh: &PerfReport, max_regression: f64) -> Comparison {
    compare_with(baseline, fresh, max_regression, true)
}

/// Compares a fresh report against the committed baseline.
///
/// Every row present in **both** reports is checked (rows only in the
/// baseline — e.g. the 100k sizes CI skips — are ignored):
///
/// * absolute metrics regress when `fresh > baseline * max_regression` —
///   only checked when `include_metrics` is true, because absolute
///   nanoseconds are machine-dependent and a baseline blessed on one machine
///   does not bound a fresh run on different hardware;
/// * speedup ratios regress when `fresh < baseline / max_regression` — both
///   sides of a ratio run on the same machine in the same process, so these
///   transfer across hardware (CI passes `include_metrics = false` via
///   `perf_check --ratios-only`).
#[must_use]
pub fn compare_with(
    baseline: &PerfReport,
    fresh: &PerfReport,
    max_regression: f64,
    include_metrics: bool,
) -> Comparison {
    let mut rows = Vec::new();
    let mut regressions = Vec::new();
    if include_metrics {
        for (name, base) in &baseline.metrics {
            if let Some(measured) = fresh.metric(name) {
                rows.push(CheckedRow {
                    name: name.clone(),
                    baseline: *base,
                    fresh: measured,
                    is_ratio: false,
                });
                let limit = base * max_regression;
                if measured > limit {
                    regressions.push(Regression {
                        name: name.clone(),
                        baseline: *base,
                        fresh: measured,
                        limit,
                        is_ratio: false,
                    });
                }
            }
        }
    }
    for (name, base) in &baseline.ratios {
        if let Some(measured) = fresh.ratio(name) {
            rows.push(CheckedRow {
                name: name.clone(),
                baseline: *base,
                fresh: measured,
                is_ratio: true,
            });
            let limit = base / max_regression;
            if measured < limit {
                regressions.push(Regression {
                    name: name.clone(),
                    baseline: *base,
                    fresh: measured,
                    limit,
                    is_ratio: true,
                });
            }
        }
    }
    Comparison {
        checked: rows.len(),
        rows,
        regressions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(metrics: &[(&str, f64)], ratios: &[(&str, f64)]) -> PerfReport {
        let mut r = PerfReport::new("test");
        for (name, v) in metrics {
            r.push_metric(*name, *v);
        }
        for (name, v) in ratios {
            r.push_ratio(*name, *v);
        }
        r
    }

    #[test]
    fn within_tolerance_passes() {
        let baseline = report(&[("a/100", 1000.0)], &[("speed/100", 10.0)]);
        let fresh = report(&[("a/100", 1900.0)], &[("speed/100", 5.5)]);
        let outcome = compare(&baseline, &fresh, 2.0);
        assert_eq!(outcome.checked, 2);
        assert!(outcome.passed());
    }

    #[test]
    fn metric_regression_is_flagged() {
        let baseline = report(&[("a/100", 1000.0)], &[]);
        let fresh = report(&[("a/100", 2100.0)], &[]);
        let outcome = compare(&baseline, &fresh, 2.0);
        assert_eq!(outcome.regressions.len(), 1);
        let regression = &outcome.regressions[0];
        assert!(!regression.is_ratio);
        assert_eq!(regression.limit, 2000.0);
        assert!(regression.to_string().contains("a/100"));
    }

    #[test]
    fn ratio_collapse_is_flagged() {
        let baseline = report(&[], &[("speed/100", 10.0)]);
        let fresh = report(&[], &[("speed/100", 4.0)]);
        let outcome = compare(&baseline, &fresh, 2.0);
        assert_eq!(outcome.regressions.len(), 1);
        let regression = &outcome.regressions[0];
        assert!(regression.is_ratio);
        assert_eq!(regression.limit, 5.0);
        assert!(regression.to_string().contains("fell below"));
    }

    #[test]
    fn every_checked_row_is_recorded_even_when_passing() {
        let baseline = report(&[("a/100", 1000.0)], &[("speed/100", 10.0)]);
        let fresh = report(&[("a/100", 500.0)], &[("speed/100", 12.0)]);
        let outcome = compare(&baseline, &fresh, 2.0);
        assert!(outcome.passed());
        assert_eq!(outcome.rows.len(), 2);
        assert_eq!(outcome.checked, outcome.rows.len());
        // Both rows improved: the normalised factor reads >= 1 either way.
        assert_eq!(outcome.rows[0].vs_baseline(), 2.0); // 1000 ns -> 500 ns
        assert_eq!(outcome.rows[1].vs_baseline(), 1.2); // 10x -> 12x
        assert!(outcome.rows[0].to_string().contains("ns vs baseline"));
        assert!(outcome.rows[1].to_string().contains("speedup"));
    }

    #[test]
    fn ratios_only_rows_exclude_metrics() {
        let baseline = report(&[("a/100", 1000.0)], &[("speed/100", 10.0)]);
        let fresh = report(&[("a/100", 900.0)], &[("speed/100", 9.0)]);
        let outcome = compare_with(&baseline, &fresh, 2.0, false);
        assert_eq!(outcome.rows.len(), 1);
        assert!(outcome.rows[0].is_ratio);
    }

    #[test]
    fn rows_missing_from_the_fresh_run_are_skipped() {
        // The baseline was recorded at full scale; the fresh (CI) run only
        // covered the small sizes.
        let baseline = report(
            &[("a/1000", 10.0), ("a/100000", 9999.0)],
            &[("speed/100000", 50.0)],
        );
        let fresh = report(&[("a/1000", 11.0)], &[]);
        let outcome = compare(&baseline, &fresh, 2.0);
        assert_eq!(outcome.checked, 1);
        assert!(outcome.passed());
    }

    #[test]
    fn non_finite_rows_are_never_recorded() {
        let mut r = PerfReport::new("test");
        r.push_metric("nan", f64::NAN);
        r.push_ratio("inf", f64::INFINITY);
        assert!(r.metrics.is_empty());
        assert!(r.ratios.is_empty());
    }

    #[test]
    fn reports_round_trip_through_json() {
        let original = report(&[("a/10", 1.5)], &[("s/10", 3.25)]);
        let json = serde_json::to_string(&original).unwrap();
        assert_eq!(serde_json::from_str::<PerfReport>(&json).unwrap(), original);
    }

    #[test]
    fn size_override_parsing() {
        assert_eq!(parse_sizes(None, &[10, 20]), vec![10, 20]);
        assert_eq!(parse_sizes(Some(""), &[10, 20]), vec![10, 20]);
        assert_eq!(parse_sizes(Some("garbage,-3,0"), &[10, 20]), vec![10, 20]);
        assert_eq!(
            parse_sizes(Some(" 1000 ,10000"), &[10, 20]),
            vec![1000, 10000]
        );
    }

    #[test]
    fn ratios_only_comparison_skips_metric_regressions() {
        let baseline = report(&[("a/100", 1000.0)], &[("speed/100", 10.0)]);
        // Metrics regressed 10x (a different machine), ratios held.
        let fresh = report(&[("a/100", 10_000.0)], &[("speed/100", 9.0)]);
        let outcome = compare_with(&baseline, &fresh, 2.0, false);
        assert_eq!(outcome.checked, 1);
        assert!(outcome.passed());
        assert!(!compare(&baseline, &fresh, 2.0).passed());
    }
}
