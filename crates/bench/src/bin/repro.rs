//! Experiment regeneration binary.
//!
//! ```text
//! cargo run -p psp-bench --bin repro -- all
//! cargo run -p psp-bench --bin repro -- fig9
//! ```
//!
//! One sub-command per paper artefact (see DESIGN.md's experiment index); `all`
//! runs every experiment in order.  The output is the plain-text equivalent of the
//! corresponding table or figure.

use iso21434::cal::CalMatrix;
use iso21434::feasibility::attack_vector::AttackVectorTable;
use iso21434::impact::ImpactRating;
use iso21434::tables;
use market::bep::BreakEvenAnalysis;
use market::datasets;
use psp::config::PspConfig;
use psp::dynamic_tara::{ecm_reference_tara, DynamicTaraComparison};
use psp::financial::{FinancialAssessment, FinancialInputs};
use psp::keyword_db::KeywordDatabase;
use psp::timewindow::compare_windows;
use psp::weights::WeightGenerator;
use psp_bench::{excavator_sai, passenger_corpus, passenger_outcome, passenger_sai, recent_window};
use vehicle::attack_surface::AttackVector;
use vehicle::lifecycle::{DevelopmentLifecycle, LifecyclePhase};
use vehicle::reachability::ReachabilityAnalysis;
use vehicle::reference::passenger_car;
use vehicle::standards_graph::{RelationshipStrength, StandardsGraph};

fn main() {
    let experiments: Vec<String> = std::env::args().skip(1).collect();
    let requested: Vec<&str> = if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        vec![
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
            "fig11", "fig12", "eq6", "eq7",
        ]
    } else {
        experiments.iter().map(String::as_str).collect()
    };

    for experiment in requested {
        match experiment {
            "fig1" => fig1(),
            "fig2" => fig2(),
            "fig3" => fig3(),
            "fig4" => fig4(),
            "fig5" => fig5(),
            "fig6" => fig6(),
            "fig7" => fig7(),
            "fig8" => fig8(),
            "fig9" => fig9(),
            "fig10" => fig10(),
            "fig11" => fig11(),
            "fig12" => fig12(),
            "eq6" => eq6(),
            "eq7" => eq7(),
            other => eprintln!("unknown experiment `{other}` (use fig1..fig12, eq6, eq7, all)"),
        }
    }
}

fn header(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

fn fig1() {
    header("E1 / Figure 1 — standards contribution list to ISO/SAE-21434");
    let graph = StandardsGraph::paper_figure_1();
    println!("target: {}", graph.target().designation);
    for strength in [RelationshipStrength::Strong, RelationshipStrength::Medium] {
        let contributors = graph.contributors_with(strength);
        println!("{strength} relationships ({}):", contributors.len());
        for std in contributors {
            println!(
                "  {:<28} automotive-specific: {}",
                std.designation, std.automotive_specific
            );
        }
    }
    println!(
        "non-automotive contributor fraction: {:.0}%",
        graph.non_automotive_fraction() * 100.0
    );
}

fn fig2() {
    header("E2 / Figure 2 — ISO/SAE-21434 development life cycle");
    for phase in LifecyclePhase::ALL {
        println!(
            "  {:<45} {:<18} TARA reprocessing: {}",
            phase.label(),
            phase.clause(),
            if phase.triggers_tara_reprocessing() {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!(
        "total TARA passes over the life cycle: {}",
        DevelopmentLifecycle::new().run_to_completion()
    );
}

fn fig3() {
    header("E3 / Figure 3 — attack-potential weights model (Clause 15 / Annex G)");
    let mut current = "";
    for row in tables::attack_potential_rows() {
        if row.parameter != current {
            current = row.parameter;
            println!("{current}:");
        }
        println!("  {:<36} {:>3}", row.level, row.value);
    }
    println!("aggregation bands:");
    for (lo, hi, rating) in tables::ATTACK_POTENTIAL_BANDS {
        let hi_label = if hi == u32::MAX {
            "+".to_string()
        } else {
            hi.to_string()
        };
        println!("  {lo:>3} ..= {hi_label:<4} -> {rating}");
    }
}

fn fig4() {
    header("E4 / Figure 4 — ECU attack-range classification (reference passenger car)");
    let car = passenger_car();
    let analysis = ReachabilityAnalysis::analyze(&car);
    println!(
        "{:<10} {:<34} {:<22} {:<22} reachable (through gateways)",
        "ECU", "full name", "domain", "dominant (no gateway)"
    );
    for ecu in car.ecus() {
        let classification = analysis.classification_of(ecu.name()).expect("classified");
        let reachable: Vec<String> = classification
            .reachable_ranges()
            .iter()
            .map(ToString::to_string)
            .collect();
        println!(
            "{:<10} {:<34} {:<22} {:<22} {}",
            ecu.name(),
            ecu.full_name(),
            ecu.domain().to_string(),
            classification
                .dominant_range(0)
                .map_or("-".to_string(), |r| r.to_string()),
            reachable.join(", ")
        );
    }
    println!("\ncolour groups of Figure 4 (dominant range, no gateway traversal):");
    for (range, ecus) in analysis.grouped_by_dominant_range(0) {
        println!("  {:<22} {}", range.to_string(), ecus.join(", "));
    }
}

fn fig5() {
    header("E5 / Figure 5 & 8-A & 9-A — attack-vector-based approach (standard G.9)");
    print!("{}", AttackVectorTable::standard());
}

fn fig6() {
    header("E6 / Figure 6 — CAL determination (impact x attack vector)");
    let matrix = CalMatrix::new();
    print!("{:<14}", "impact \\ AV");
    for vector in AttackVector::ALL {
        print!("{:<12}", vector.to_string());
    }
    println!();
    for impact in ImpactRating::ALL {
        print!("{:<14}", impact.to_string());
        for vector in AttackVector::ALL {
            let cell = matrix
                .cal(impact, vector)
                .map_or("-".to_string(), |c| c.to_string());
            print!("{cell:<12}");
        }
        println!();
    }
    println!(
        "max CAL reachable through the Physical vector: {}",
        matrix.max_cal_for_vector(AttackVector::Physical)
    );
}

fn fig7() {
    header("E7 / Figure 7 — PSP workflow (blocks 1-12) on the passenger-car scene");
    let corpus = passenger_corpus();
    println!("block 1   target application input: PassengerCar / Europe");
    println!("blocks 2-4 corpus queried: {} posts", corpus.len());
    let outcome = passenger_outcome(None);
    println!(
        "block 5   keyword learning: {} new keywords ({} total in DB)",
        outcome.learned_count(),
        outcome.database.len()
    );
    println!("blocks 6-7 SAI list ({} entries):", outcome.sai.len());
    for entry in outcome.sai.entries() {
        println!(
            "  {:<16} scenario={:<20} vector={:<9} origin={:<8} posts={:<5} SAI={:>12.1} p={:>5.1}%",
            entry.keyword,
            entry.scenario,
            entry.vector.to_string(),
            entry.origin.to_string(),
            entry.posts,
            entry.sai,
            entry.probability * 100.0
        );
    }
    println!(
        "blocks 8-9 insider entries: {}, outsider entries: {}",
        outcome.sai.insider_entries().len(),
        outcome.sai.outsider_entries().len()
    );
    println!(
        "blocks 10-12 generated insider tables: {:?}",
        outcome.insider_scenarios()
    );
}

fn fig8() {
    header("E8 / Figure 8 — outsider (A) vs PSP-tuned insider (B) weights, ECM reprogramming");
    let outcome = passenger_outcome(None);
    println!("A) outsider threats (standard G.9):");
    print!("{}", outcome.outsider_table);
    println!("B) insider threats (PSP corrective factors, full history):");
    print!(
        "{}",
        outcome
            .insider_table("ecm-reprogramming")
            .expect("scenario tuned")
    );
    let factors =
        WeightGenerator::new().corrective_factors(&passenger_sai(None), "ecm-reprogramming");
    println!("corrective factors (SAI share per vector):");
    for (vector, share) in factors {
        println!(
            "  {:<9} {:>6.1}%",
            vector.to_string(),
            share.max(0.0) * 100.0
        );
    }
}

fn fig9() {
    header("E9 / Figure 9 — G.9 revisions: all-history (B) vs since-2021 (C)");
    let comparison = compare_windows(
        &passenger_corpus(),
        &KeywordDatabase::passenger_car_seed(),
        &PspConfig::passenger_car_europe(),
        "ecm-reprogramming",
        recent_window(),
    );
    println!("A) original G.9 table:");
    print!("{}", AttackVectorTable::standard());
    println!("B) PSP revision, full history:");
    print!("{}", comparison.baseline_table);
    println!("C) PSP revision, posts since 2021 only:");
    print!("{}", comparison.recent_table);
    println!(
        "dominant vector: {} (full history) -> {} (2021+); trend inversion: {}",
        comparison.baseline_dominant(),
        comparison.recent_dominant(),
        comparison.trend_inverted()
    );

    println!("\nimpact on the reference ECM TARA (static vs dynamic):");
    let outcome = passenger_outcome(None);
    let tara_cmp =
        DynamicTaraComparison::evaluate(&ecm_reference_tara("ECM"), &outcome, "ecm-reprogramming")
            .expect("reference TARA evaluates");
    for delta in tara_cmp.deltas.values() {
        println!(
            "  {:<38} feasibility {:>8} -> {:<8} risk {} -> {}",
            delta.threat_title,
            delta.static_feasibility.to_string(),
            delta.dynamic_feasibility.to_string(),
            delta.static_risk,
            delta.dynamic_risk
        );
    }
}

fn excavator_assessment() -> FinancialAssessment {
    FinancialAssessment::assess(
        "dpf-tampering",
        &excavator_sai(),
        &datasets::excavator_sales_europe(),
        &datasets::annual_report(),
        &FinancialInputs::paper_excavator_example(),
    )
    .expect("calibrated example assesses")
}

fn fig10() {
    header("E10 / Figure 10 — financial attack-feasibility workflow (excavator DPF)");
    let a = excavator_assessment();
    println!("block 1  threat scenario: {}", a.scenario);
    println!("block 2  PPIA (price mining): {:.0} EUR", a.ppia);
    println!(
        "block 3  cybersecurity annual report PEA: {:.1}%",
        a.pea * 100.0
    );
    println!("block 4  previous-year sales VS: {}", a.vehicle_sales);
    println!("block 5  PAE = VS x PEA = {:.0}", a.pae);
    println!("block 6  MV = PAE x PPIA = {:.0} EUR/yr", a.market_value);
    println!(
        "block 7  VCU = {:.0} EUR, FC (Eq.4) = {:.0} EUR, BEP (Eq.3) = {}",
        a.vcu,
        a.forward_fixed_cost,
        a.break_even_units
            .map_or("n/a".into(), |v| format!("{v:.0} units"))
    );
    println!(
        "         investment bound FC (Eq.5, BEP=PAE) = {:.0} EUR",
        a.investment_bound
    );
    println!(
        "         profitable: {}, financial feasibility rating: {}",
        a.profitable, a.rating
    );
}

fn fig11() {
    header("E11 / Figure 11 — break-even diagram (revenue vs cost)");
    let a = excavator_assessment();
    let analysis = BreakEvenAnalysis::new(
        a.forward_fixed_cost,
        a.ppia,
        a.vcu,
        datasets::PAPER_COMPETITORS,
    );
    println!(
        "FC = {:.0} EUR, PPIA = {:.0} EUR, VCU = {:.0} EUR, n = {}",
        a.forward_fixed_cost,
        a.ppia,
        a.vcu,
        datasets::PAPER_COMPETITORS
    );
    println!(
        "{:>8} {:>14} {:>14} {:>6}",
        "units", "revenue", "cost", "zone"
    );
    for point in analysis.curve(a.pae * 2.0, 11) {
        println!(
            "{:>8.0} {:>14.0} {:>14.0} {:>6}",
            point.units,
            point.revenue,
            point.cost,
            if point.is_profitable() { "blue" } else { "red" }
        );
    }
    println!(
        "break-even point: {} units",
        analysis
            .break_even_units()
            .map_or("n/a".into(), |v| format!("{v:.0}"))
    );
}

fn fig12() {
    header("E12 / Figure 12 — SAI ranking for excavator insider attacks (Europe)");
    let sai = excavator_sai();
    println!(
        "{:<22} {:>12} {:>8} {:>12} {:>8}",
        "scenario", "SAI", "posts", "views", "prob"
    );
    for (scenario_name, score) in sai.scenario_ranking() {
        let entries = sai.scenario_entries(&scenario_name);
        let posts: usize = entries.iter().map(|e| e.posts).sum();
        let views: u64 = entries.iter().map(|e| e.views).sum();
        let prob: f64 = entries.iter().map(|e| e.probability).sum();
        println!(
            "{:<22} {:>12.1} {:>8} {:>12} {:>7.1}%",
            scenario_name,
            score,
            posts,
            views,
            prob * 100.0
        );
    }
}

fn eq6() {
    header("E13 / Equation 6 — market value of DPF tampering");
    let a = excavator_assessment();
    println!(
        "MV = PAE x PPIA = {:.0} x {:.0} EUR = {:.0} EUR/yr  (paper: 1406 x 360 = 506160 EUR)",
        a.pae, a.ppia, a.market_value
    );
}

fn eq7() {
    header("E14 / Equation 7 — attacker investment bound");
    let a = excavator_assessment();
    println!(
        "FC = BEP x (PPIA - VCU) / n = {:.0} x ({:.0} - {:.0}) / {} = {:.0} EUR  (paper: ~145286 EUR)",
        a.pae,
        a.ppia,
        a.vcu,
        datasets::PAPER_COMPETITORS,
        a.investment_bound
    );
    println!(
        "-> the anti-tampering architecture should withstand an adversary investment of {:.0} EUR",
        a.investment_bound
    );
}
