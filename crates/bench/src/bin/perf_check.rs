//! Enforces the committed perf baselines.
//!
//! For each bench name given on the command line (default: `engine_scaling
//! engine_ingest`), loads the committed baseline from
//! `crates/bench/baselines/<bench>.json` and the fresh run from
//! `target/perf/<bench>.json` (written by `cargo bench --bench <bench>`), and
//! fails when any row present in both regressed by more than the allowed
//! factor (default 2x; override with `--max-regression <factor>` or the
//! `PSP_PERF_MAX_REGRESSION` environment variable).  With `--ratios-only`,
//! the absolute nanosecond rows are skipped and only the machine-portable
//! speedup ratios are enforced — what CI does, since its hardware differs
//! from the machine that blessed the baseline.
//!
//! ```text
//! PSP_BENCH_SIZES=1000,10000 cargo bench --bench engine_scaling
//! PSP_BENCH_SIZES=10000 cargo bench --bench engine_ingest
//! cargo run --release -p psp-bench --bin perf_check -- --ratios-only
//! ```

use psp_bench::perf::{baseline_path, compare_with, fresh_report_path, PerfReport};

const DEFAULT_BENCHES: [&str; 2] = ["engine_scaling", "engine_ingest"];
const DEFAULT_MAX_REGRESSION: f64 = 2.0;

fn main() {
    let mut benches: Vec<String> = Vec::new();
    let mut include_metrics = true;
    let mut max_regression = std::env::var("PSP_PERF_MAX_REGRESSION")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(DEFAULT_MAX_REGRESSION);

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-regression" => {
                let value = args
                    .next()
                    .and_then(|raw| raw.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--max-regression expects a number");
                        std::process::exit(2);
                    });
                max_regression = value;
            }
            // Absolute nanoseconds only bound runs on the machine that blessed
            // the baseline; CI (different hardware) checks the machine-portable
            // speedup ratios only.
            "--ratios-only" => include_metrics = false,
            name => benches.push(name.to_string()),
        }
    }
    if !(max_regression.is_finite() && max_regression >= 1.0) {
        eprintln!("max regression factor must be >= 1.0, got {max_regression}");
        std::process::exit(2);
    }
    if benches.is_empty() {
        benches = DEFAULT_BENCHES.iter().map(ToString::to_string).collect();
    }

    let mut failed = false;
    for bench in &benches {
        let baseline = match PerfReport::load(&baseline_path(bench)) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("{bench}: cannot load committed baseline: {err}");
                failed = true;
                continue;
            }
        };
        let fresh = match PerfReport::load(&fresh_report_path(bench)) {
            Ok(report) => report,
            Err(err) => {
                eprintln!(
                    "{bench}: cannot load fresh report ({err}); run `cargo bench --bench {bench}` first"
                );
                failed = true;
                continue;
            }
        };
        let outcome = compare_with(&baseline, &fresh, max_regression, include_metrics);
        if outcome.checked == 0 {
            eprintln!(
                "{bench}: no overlapping rows between the baseline and the fresh run — \
                 the bench sizes or row names diverged"
            );
            failed = true;
            continue;
        }
        // Always print the measured-vs-baseline values, pass or fail, so
        // perf-smoke logs double as a trend record across runs.
        for row in &outcome.rows {
            println!("{bench}:   {row}");
        }
        if outcome.passed() {
            println!(
                "{bench}: OK — {} rows within {max_regression}x of the committed baseline",
                outcome.checked
            );
        } else {
            eprintln!(
                "{bench}: {} of {} rows regressed beyond {max_regression}x:",
                outcome.regressions.len(),
                outcome.checked
            );
            for regression in &outcome.regressions {
                eprintln!("  {regression}");
            }
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
