//! E7 / Figure 7 — the full PSP workflow (corpus generation, SAI, learning,
//! weight-table generation) on the passenger-car scene.

use criterion::{criterion_group, criterion_main, Criterion};
use psp::config::PspConfig;
use psp::keyword_db::KeywordDatabase;
use psp::workflow::PspWorkflow;
use psp_bench::passenger_corpus;
use socialsim::scenario;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(20));

    group.bench_function("corpus_generation_passenger", |b| {
        b.iter(|| black_box(scenario::passenger_car_europe(42)))
    });

    let corpus = passenger_corpus();
    let db = KeywordDatabase::passenger_car_seed();
    group.bench_function("full_workflow_with_learning", |b| {
        b.iter(|| {
            black_box(PspWorkflow::new(PspConfig::passenger_car_europe(), db.clone()).run(&corpus))
        })
    });
    group.bench_function("full_workflow_without_learning", |b| {
        b.iter(|| {
            black_box(
                PspWorkflow::new(
                    PspConfig::passenger_car_europe().with_learning(false),
                    db.clone(),
                )
                .run(&corpus),
            )
        })
    });
    // The amortised serving shape: the corpus is indexed once in a
    // ScoringEngine and each workflow run only pays the indexed scoring pass.
    let engine = psp::engine::ScoringEngine::new(&corpus);
    group.bench_function("full_workflow_prebuilt_engine", |b| {
        b.iter(|| {
            black_box(
                PspWorkflow::new(PspConfig::passenger_car_europe(), db.clone())
                    .run_with_engine(&engine),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
