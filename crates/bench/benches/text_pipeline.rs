//! The text-analysis hot path — single-pass analyzer vs the frozen multi-pass
//! seed, and cold one-shot SAI with and without the persisted signal cache.
//!
//! ROADMAP's "One-shot parity" item: a single cold SAI computation is bounded
//! by `textmine::pipeline::analyze` over the matching posts.  This bench pins
//! the two remedies PR 4 shipped:
//!
//! * **single-pass analyzer** — `analyze/single_pass/<n>` vs
//!   `analyze/reference/<n>` measure per-post document analysis over the
//!   corpus texts (the reference rows run the frozen multi-pass
//!   implementation in `textmine::reference`, i.e. what the seed shipped);
//!   `signals/single_pass/<n>` additionally measures the engine-facing lean
//!   entry point that materialises no token strings.
//! * **cold-start** — `cold_sai/reference|fresh|cached/<n>` measure a full
//!   one-shot SAI computation on a cold engine: with the seed pipeline, with
//!   the single-pass pipeline, and with a [`SignalCacheFile`] installed
//!   instead of running text mining at all (the restart path; the cache is
//!   exported, round-tripped through JSON once, and validated bit-exact
//!   before timing).
//!
//! Enforced ratios: `speedup_analyze/<n>` (reference / single-pass, the
//! per-post pipeline speedup), `speedup_cold/<n>` (cold one-shot SAI,
//! reference pipeline / single-pass — the headline "vs seed" number) and
//! `speedup_cache/<n>` (cold SAI, fresh mining / cache load).  The report
//! lands in `target/perf/text_pipeline.json`; the blessed baseline in
//! `crates/bench/baselines/text_pipeline.json` records the acceptance targets
//! (single-pass analyze >= 3x the seed, cold one-shot SAI >= 2x at 100k
//! posts).  The CI `perf-smoke` job enforces the ratios at reduced sizes via
//! `perf_check --ratios-only`.

use criterion::{criterion_group, criterion_main, Criterion};
use psp::config::PspConfig;
use psp::engine::{ScoringEngine, SignalCacheFile};
use psp::keyword_db::KeywordDatabase;
use psp_bench::perf::{fresh_report_path, mean_ns, sizes_from_env, PerfReport};
use psp_bench::scaled_excavator_corpus;
use std::hint::black_box;
use std::time::Duration;
use textmine::pipeline::TextPipeline;
use textmine::reference;

/// Default corpus sizes; override with `PSP_BENCH_SIZES=10000`.
const DEFAULT_SIZES: [usize; 2] = [10_000, 100_000];

fn write_report(c: &Criterion, sizes: &[usize]) {
    let mut report = PerfReport::new("text_pipeline");
    for size in sizes {
        let single = mean_ns(c, &format!("text_pipeline/analyze/single_pass/{size}"));
        let multi = mean_ns(c, &format!("text_pipeline/analyze/reference/{size}"));
        let lean = mean_ns(c, &format!("text_pipeline/signals/single_pass/{size}"));
        let cold_ref = mean_ns(c, &format!("text_pipeline/cold_sai/reference/{size}"));
        let cold_fresh = mean_ns(c, &format!("text_pipeline/cold_sai/fresh/{size}"));
        let cold_cached = mean_ns(c, &format!("text_pipeline/cold_sai/cached/{size}"));
        let speedup_analyze = multi / single;
        let speedup_cold = cold_ref / cold_fresh;
        let speedup_cache = cold_fresh / cold_cached;
        println!(
            "{size:>7} posts: analyze {multi:>12.0} -> {single:>11.0} ns ({speedup_analyze:.1}x, lean {lean:.0} ns) | \
             cold SAI {cold_ref:>12.0} -> {cold_fresh:>11.0} ns ({speedup_cold:.1}x) | \
             cache-loaded {cold_cached:>11.0} ns ({speedup_cache:.1}x vs fresh)"
        );
        report.push_metric(format!("analyze/single_pass/{size}"), single);
        report.push_metric(format!("analyze/reference/{size}"), multi);
        report.push_metric(format!("signals/single_pass/{size}"), lean);
        report.push_metric(format!("cold_sai/reference/{size}"), cold_ref);
        report.push_metric(format!("cold_sai/fresh/{size}"), cold_fresh);
        report.push_metric(format!("cold_sai/cached/{size}"), cold_cached);
        report.push_ratio(format!("speedup_analyze/{size}"), speedup_analyze);
        report.push_ratio(format!("speedup_cold/{size}"), speedup_cold);
        report.push_ratio(format!("speedup_cache/{size}"), speedup_cache);
    }
    let path = fresh_report_path("text_pipeline");
    match report.save(&path) {
        Ok(()) => println!("perf report written to {}", path.display()),
        Err(err) => eprintln!("could not write perf report: {err}"),
    }
}

fn bench(c: &mut Criterion) {
    let db = KeywordDatabase::excavator_seed();
    let config = PspConfig::excavator_europe();
    let sizes = sizes_from_env(&DEFAULT_SIZES);
    let fast = TextPipeline::new();
    let slow = TextPipeline::reference();

    for &size in &sizes {
        let corpus = scaled_excavator_corpus(size, 42);
        let texts: Vec<&str> = corpus.posts().iter().map(|p| p.text()).collect();

        // Sanity: the two pipelines must agree bit-for-bit before being timed,
        // and a JSON-round-tripped signal cache must restore exact scores.
        for text in &texts {
            assert_eq!(
                fast.analyze(text),
                reference::analyze(fast.lexicon(), text),
                "single-pass diverged from reference on {text:?}"
            );
        }
        let fresh_scores = ScoringEngine::new(&corpus).sai_list(&db, &config);
        let cache: SignalCacheFile = {
            let exported = ScoringEngine::new(&corpus).export_signal_cache();
            let json = serde_json::to_string(&exported).expect("serialise cache");
            let round_tripped = serde_json::from_str(&json).expect("parse cache");
            assert_eq!(exported, round_tripped, "cache JSON round trip drifted");
            round_tripped
        };
        {
            let warmed = ScoringEngine::new(&corpus);
            assert_eq!(
                warmed.load_signal_cache(&cache).expect("cache validates"),
                corpus.len(),
                "cache load must warm every post"
            );
            assert_eq!(
                warmed.sai_list(&db, &config),
                fresh_scores,
                "cache-loaded scores diverged at {size} posts"
            );
        }

        let mut group = c.benchmark_group("text_pipeline");
        group
            .sample_size(3)
            .measurement_time(Duration::from_secs(10));
        group.bench_function(&format!("analyze/single_pass/{size}"), |b| {
            b.iter(|| {
                let mut hits = 0_usize;
                for text in &texts {
                    let analysis = fast.analyze(text);
                    hits += analysis.intent.engagement_hits + analysis.prices.len();
                }
                black_box(hits)
            })
        });
        group.bench_function(&format!("analyze/reference/{size}"), |b| {
            b.iter(|| {
                let mut hits = 0_usize;
                for text in &texts {
                    let analysis = slow.analyze(text);
                    hits += analysis.intent.engagement_hits + analysis.prices.len();
                }
                black_box(hits)
            })
        });
        group.bench_function(&format!("signals/single_pass/{size}"), |b| {
            b.iter(|| {
                let mut hits = 0_usize;
                for text in &texts {
                    let signals = fast.signals(text);
                    hits += signals.intent.engagement_hits + signals.prices.len();
                }
                black_box(hits)
            })
        });
        group.bench_function(&format!("cold_sai/reference/{size}"), |b| {
            b.iter(|| {
                let engine = ScoringEngine::with_pipeline(&corpus, TextPipeline::reference());
                black_box(engine.sai_list(&db, &config))
            })
        });
        group.bench_function(&format!("cold_sai/fresh/{size}"), |b| {
            b.iter(|| {
                let engine = ScoringEngine::new(&corpus);
                black_box(engine.sai_list(&db, &config))
            })
        });
        group.bench_function(&format!("cold_sai/cached/{size}"), |b| {
            b.iter(|| {
                let engine = ScoringEngine::new(&corpus);
                engine
                    .load_signal_cache(&cache)
                    .expect("cache validates against its own corpus");
                black_box(engine.sai_list(&db, &config))
            })
        });
        group.finish();
    }

    write_report(c, &sizes);
}

criterion_group!(benches, bench);
criterion_main!(benches);
