//! Engine scaling — naive linear-scan SAI vs the indexed `ScoringEngine` at
//! 1k / 10k / 100k posts.
//!
//! Three paths are measured per corpus size:
//!
//! * `naive` — `SaiList::compute_naive`, the O(keywords × posts) reference
//!   (rescans the corpus and re-runs the text pipeline per keyword);
//! * `one_shot_engine` — `SaiList::compute`, which builds a throwaway
//!   `ScoringEngine` (index + one text-pipeline pass) and scores through it;
//! * `indexed_pass` — `ScoringEngine::sai_list` on a prebuilt engine, the
//!   amortised serving cost once a corpus snapshot is indexed.
//!
//! After measuring, the bench writes a `PerfReport` to
//! `target/perf/engine_scaling.json`.  The blessed baseline lives in
//! `crates/bench/baselines/engine_scaling.json`; the CI `perf-smoke` job
//! re-runs this bench at small sizes (`PSP_BENCH_SIZES=1000,10000`) and fails
//! on a > 2x regression via `cargo run -p psp-bench --bin perf_check`.

use criterion::{criterion_group, criterion_main, Criterion};
use psp::config::PspConfig;
use psp::engine::ScoringEngine;
use psp::keyword_db::KeywordDatabase;
use psp::sai::SaiList;
use psp_bench::perf::{fresh_report_path, mean_ns, sizes_from_env, PerfReport};
use psp_bench::scaled_excavator_corpus;
use std::hint::black_box;
use std::time::Duration;

/// Default corpus sizes; override with `PSP_BENCH_SIZES=1000,10000`.
const DEFAULT_SIZES: [usize; 3] = [1_000, 10_000, 100_000];

/// The corpus size at which the monitoring-style window sweep is measured.
const SWEEP_SIZE: usize = 100_000;

/// Window start years of the monitoring-style sweep (three-year windows).
const SWEEP_YEARS: std::ops::RangeInclusive<i32> = 2018..=2023;

fn sweep_configs() -> Vec<PspConfig> {
    SWEEP_YEARS
        .map(|year| {
            PspConfig::excavator_europe()
                .with_window(socialsim::time::DateWindow::years(year, year + 2))
        })
        .collect()
}

fn write_report(c: &Criterion, sizes: &[usize]) {
    let mut report = PerfReport::new("engine_scaling");
    for size in sizes {
        let naive = mean_ns(c, &format!("engine_scaling/naive/{size}"));
        let one_shot = mean_ns(c, &format!("engine_scaling/one_shot_engine/{size}"));
        let indexed = mean_ns(c, &format!("engine_scaling/indexed_pass/{size}"));
        let speedup_one_shot = naive / one_shot;
        let speedup_indexed = naive / indexed;
        println!(
            "posts {size:>7}: naive {naive:>14.0} ns | one-shot engine {one_shot:>13.0} ns \
             ({speedup_one_shot:.1}x) | indexed pass {indexed:>11.0} ns ({speedup_indexed:.1}x)"
        );
        report.push_metric(format!("naive/{size}"), naive);
        report.push_metric(format!("one_shot_engine/{size}"), one_shot);
        report.push_metric(format!("indexed_pass/{size}"), indexed);
        report.push_ratio(format!("speedup_one_shot/{size}"), speedup_one_shot);
        report.push_ratio(format!("speedup_indexed_pass/{size}"), speedup_indexed);
    }
    if sizes.contains(&SWEEP_SIZE) {
        let sweep_naive = mean_ns(
            c,
            &format!("engine_scaling/window_sweep_naive/{SWEEP_SIZE}"),
        );
        let sweep_engine = mean_ns(
            c,
            &format!("engine_scaling/window_sweep_engine/{SWEEP_SIZE}"),
        );
        let sweep_speedup = sweep_naive / sweep_engine;
        println!(
            "window sweep ({SWEEP_SIZE} posts, {} windows incl. engine build): naive \
             {sweep_naive:.0} ns | engine {sweep_engine:.0} ns ({sweep_speedup:.1}x)",
            sweep_configs().len()
        );
        report.push_metric(format!("window_sweep_naive/{SWEEP_SIZE}"), sweep_naive);
        report.push_metric(format!("window_sweep_engine/{SWEEP_SIZE}"), sweep_engine);
        report.push_ratio(format!("window_sweep_speedup/{SWEEP_SIZE}"), sweep_speedup);
    }
    let path = fresh_report_path("engine_scaling");
    match report.save(&path) {
        Ok(()) => println!("perf report written to {}", path.display()),
        Err(err) => eprintln!("could not write perf report: {err}"),
    }
}

fn bench(c: &mut Criterion) {
    let db = KeywordDatabase::excavator_seed();
    let config = PspConfig::excavator_europe();
    let sizes = sizes_from_env(&DEFAULT_SIZES);

    for &size in &sizes {
        let corpus = scaled_excavator_corpus(size, 42);
        let mut group = c.benchmark_group("engine_scaling");
        group
            .sample_size(3)
            .measurement_time(Duration::from_secs(10));
        group.bench_function(&format!("naive/{size}"), |b| {
            b.iter(|| black_box(SaiList::compute_naive(&corpus, &db, &config)))
        });
        group.bench_function(&format!("one_shot_engine/{size}"), |b| {
            b.iter(|| black_box(SaiList::compute(&corpus, &db, &config)))
        });
        let engine = ScoringEngine::new(&corpus);
        group.bench_function(&format!("indexed_pass/{size}"), |b| {
            b.iter(|| black_box(engine.sai_list(&db, &config)))
        });
        // The monitoring-style sweep at the largest size: many windows over one
        // corpus is where indexing amortises even including engine build.
        if size == SWEEP_SIZE {
            let configs = sweep_configs();
            group.bench_function(&format!("window_sweep_naive/{size}"), |b| {
                b.iter(|| {
                    for cfg in &configs {
                        black_box(SaiList::compute_naive(&corpus, &db, cfg));
                    }
                })
            });
            group.bench_function(&format!("window_sweep_engine/{size}"), |b| {
                b.iter(|| {
                    let engine = ScoringEngine::new(&corpus);
                    black_box(engine.sai_lists(&db, &configs))
                })
            });
        }
        group.finish();
    }

    write_report(c, &sizes);
}

criterion_group!(benches, bench);
criterion_main!(benches);
