//! Engine scaling — naive linear-scan SAI vs the indexed `ScoringEngine` at
//! 1k / 10k / 100k posts.
//!
//! Three paths are measured per corpus size:
//!
//! * `naive` — `SaiList::compute_naive`, the O(keywords × posts) reference
//!   (rescans the corpus and re-runs the text pipeline per keyword);
//! * `one_shot_engine` — `SaiList::compute`, which builds a throwaway
//!   `ScoringEngine` (index + one text-pipeline pass) and scores through it;
//! * `indexed_pass` — `ScoringEngine::sai_list` on a prebuilt engine, the
//!   amortised serving cost once a corpus snapshot is indexed.
//!
//! After measuring, the bench writes `target/engine_scaling_baseline.json`
//! with nanosecond means and speedup ratios so future PRs can track the perf
//! trajectory against this baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use psp::config::PspConfig;
use psp::engine::ScoringEngine;
use psp::keyword_db::KeywordDatabase;
use psp::sai::SaiList;
use socialsim::corpus::Corpus;
use socialsim::generator::CorpusGenerator;
use socialsim::post::{Region, TargetApplication};
use socialsim::trend::{TopicTrend, TrendModel};
use std::hint::black_box;
use std::time::Duration;

const SIZES: [usize; 3] = [1_000, 10_000, 100_000];

/// The excavator scene scaled to roughly `total_posts` posts: one topic per
/// seeded attack keyword plus an equal volume of benign machine chatter (posts
/// no attack query matches — the realistic shape of a social corpus), spread
/// uniformly over six years.
fn scaled_corpus(total_posts: usize) -> Corpus {
    let attack_topics: [(&str, &str, f64); 10] = [
        ("dpf-delete", "dpfdelete", 360.0),
        ("dpf-off", "dpfoff", 340.0),
        ("egr-delete", "egrdelete", 250.0),
        ("egr-removal", "egrremoval", 260.0),
        ("adblue-emulator", "adblueemulator", 180.0),
        ("scr-off", "scroff", 190.0),
        ("chip-tuning", "chiptuning", 500.0),
        ("power-boost", "powerboost", 480.0),
        ("speed-limiter", "speedlimiteroff", 150.0),
        ("hour-meter", "hourmeterrollback", 120.0),
    ];
    let noise_topics: [&str; 10] = [
        "jobsite",
        "quarrylife",
        "sunsetdig",
        "bigiron",
        "trenchday",
        "steeltracks",
        "mudseason",
        "operatorview",
        "liftplan",
        "siteprep",
    ];
    let years = 6; // 2018..=2023
    let per_cell =
        (total_posts / ((attack_topics.len() + noise_topics.len()) * years)).max(1) as u32;
    let mut model = TrendModel::new(TargetApplication::Excavator, Region::Europe);
    for (name, tag, price) in attack_topics {
        model = model.topic(
            TopicTrend::new(name)
                .with_hashtag(tag)
                .volume_range(2018, 2023, per_cell)
                .engagement(2_000, 60)
                .advertised_price(price),
        );
    }
    for tag in noise_topics {
        model = model.topic(
            TopicTrend::new(tag)
                .with_hashtag(tag)
                .volume_range(2018, 2023, per_cell)
                .engagement(1_500, 40),
        );
    }
    CorpusGenerator::new(42).generate(&model)
}

fn mean_ns(c: &Criterion, name: &str) -> f64 {
    c.results()
        .iter()
        .find(|r| r.name == name)
        .map(|r| r.mean_ns)
        .unwrap_or(f64::NAN)
}

/// Window start years of the monitoring-style sweep (three-year windows).
const SWEEP_YEARS: std::ops::RangeInclusive<i32> = 2018..=2023;

fn sweep_configs() -> Vec<PspConfig> {
    SWEEP_YEARS
        .map(|year| {
            PspConfig::excavator_europe()
                .with_window(socialsim::time::DateWindow::years(year, year + 2))
        })
        .collect()
}

fn write_baseline(c: &Criterion) {
    let mut rows = String::new();
    for (i, size) in SIZES.iter().enumerate() {
        let naive = mean_ns(c, &format!("engine_scaling/naive/{size}"));
        let one_shot = mean_ns(c, &format!("engine_scaling/one_shot_engine/{size}"));
        let indexed = mean_ns(c, &format!("engine_scaling/indexed_pass/{size}"));
        let speedup_one_shot = naive / one_shot;
        let speedup_indexed = naive / indexed;
        println!(
            "posts {size:>7}: naive {naive:>14.0} ns | one-shot engine {one_shot:>13.0} ns \
             ({speedup_one_shot:.1}x) | indexed pass {indexed:>11.0} ns ({speedup_indexed:.1}x)"
        );
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"posts\": {size}, \"naive_ns\": {naive:.0}, \"one_shot_engine_ns\": {one_shot:.0}, \
             \"indexed_pass_ns\": {indexed:.0}, \"speedup_one_shot\": {speedup_one_shot:.2}, \
             \"speedup_indexed_pass\": {speedup_indexed:.2}}}"
        ));
    }
    let sweep_naive = mean_ns(c, "engine_scaling/window_sweep_naive/100000");
    let sweep_engine = mean_ns(c, "engine_scaling/window_sweep_engine/100000");
    let sweep_speedup = sweep_naive / sweep_engine;
    println!(
        "window sweep (100k posts, {} windows incl. engine build): naive {sweep_naive:.0} ns | \
         engine {sweep_engine:.0} ns ({sweep_speedup:.1}x)",
        sweep_configs().len()
    );
    let indexed_100k = mean_ns(c, "engine_scaling/naive/100000")
        / mean_ns(c, "engine_scaling/indexed_pass/100000");
    println!(
        "acceptance: indexed ScoringEngine vs naive scan at 100k posts = {indexed_100k:.1}x \
         (target >= 5x)"
    );
    let json = format!(
        "{{\n  \"bench\": \"engine_scaling\",\n  \"keywords\": {},\n  \"sizes\": [\n{rows}\n  ],\n  \
         \"window_sweep_100k\": {{\"windows\": {}, \"naive_ns\": {sweep_naive:.0}, \
         \"engine_ns\": {sweep_engine:.0}, \"speedup\": {sweep_speedup:.2}}}\n}}\n",
        KeywordDatabase::excavator_seed().len(),
        sweep_configs().len()
    );
    let target_dir = std::env::var("CARGO_TARGET_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target"));
    let path = target_dir.join("engine_scaling_baseline.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("baseline written to {}", path.display()),
        Err(err) => eprintln!("could not write baseline: {err}"),
    }
}

fn bench(c: &mut Criterion) {
    let db = KeywordDatabase::excavator_seed();
    let config = PspConfig::excavator_europe();

    for size in SIZES {
        let corpus = scaled_corpus(size);
        let mut group = c.benchmark_group("engine_scaling");
        group
            .sample_size(3)
            .measurement_time(Duration::from_secs(10));
        group.bench_function(&format!("naive/{size}"), |b| {
            b.iter(|| black_box(SaiList::compute_naive(&corpus, &db, &config)))
        });
        group.bench_function(&format!("one_shot_engine/{size}"), |b| {
            b.iter(|| black_box(SaiList::compute(&corpus, &db, &config)))
        });
        let engine = ScoringEngine::new(&corpus);
        group.bench_function(&format!("indexed_pass/{size}"), |b| {
            b.iter(|| black_box(engine.sai_list(&db, &config)))
        });
        // The monitoring-style sweep at the largest size: many windows over one
        // corpus is where indexing amortises even including engine build.
        if size == 100_000 {
            let configs = sweep_configs();
            group.bench_function(&format!("window_sweep_naive/{size}"), |b| {
                b.iter(|| {
                    for cfg in &configs {
                        black_box(SaiList::compute_naive(&corpus, &db, cfg));
                    }
                })
            });
            group.bench_function(&format!("window_sweep_engine/{size}"), |b| {
                b.iter(|| {
                    let engine = ScoringEngine::new(&corpus);
                    black_box(engine.sai_lists(&db, &configs))
                })
            });
        }
        group.finish();
    }

    write_baseline(c);
}

criterion_group!(benches, bench);
criterion_main!(benches);
