//! Serving latency under concurrent ingest — the TARA service daemon's
//! snapshot-isolation promise, measured.
//!
//! The workload is the daemon steady state: reader threads issue `Score`
//! requests against a warm [`TaraService`] while (in the busy phase) a
//! duty-cycled writer keeps publishing new engine generations.  Snapshot
//! isolation means a reader never waits for an ingest to finish — the only
//! contention left is the CPU itself, which is why the writer is
//! duty-cycled (each ingest is followed by a sleep of twice its duration,
//! capping the writer at ~1/3 of one core): on small CI machines a
//! free-running writer would measure raw scheduler contention, not the
//! service design.
//!
//! Not a criterion bench: the interesting statistic is the tail (p99) of
//! individual request latencies across threads, which criterion's
//! mean-of-batches model cannot express — so this harness times every
//! request and reports percentiles directly.
//!
//! Per corpus size (default 10k and 50k posts; `PSP_BENCH_SIZES` overrides):
//!
//! * `serve_idle_p50/<size>`, `serve_idle_p99/<size>` — request latency with
//!   no writer;
//! * `serve_busy_p50/<size>`, `serve_busy_p99/<size>` — the same readers
//!   while the duty-cycled writer ingests;
//! * `socket_score_p50/<size>`, `socket_score_p99/<size>` — one full
//!   connect/score/close cycle against a [`SocketServer`] over the same warm
//!   service (the cost a short-lived wire client pays: TCP setup, JSON
//!   framing both ways, admission, teardown);
//! * ratio `p99_idle_over_busy/<size>` — idle p99 / busy p99.  The CI floor
//!   (baseline/2) makes this the acceptance bar: with a blessed ratio near
//!   1.0, the check fails when the busy p99 degrades past ~2x the idle p99
//!   relative to the baseline — i.e. when scoring starts blocking on ingest;
//! * ratio `p99_idle_over_socket/<size>` — idle p99 / socket p99: how much
//!   of the in-process latency survives the trip through the transport.  Its
//!   CI floor catches the socket plane regressing into a bottleneck (framing,
//!   admission, or per-connection threads dominating the score itself).
//!
//! Before anything is timed, a served response is asserted bit-identical to
//! a standalone engine at the same generation.  The report lands in
//! `target/perf/engine_serve.json`; the blessed baseline in
//! `crates/bench/baselines/engine_serve.json` is enforced by the CI
//! perf-smoke job via `perf_check --ratios-only`.

use psp::config::PspConfig;
use psp::engine::LiveEngine;
use psp::keyword_db::KeywordDatabase;
use psp::service::net::{NetConfig, SocketServer};
use psp::service::wire::{encode_request, WireRequest, WireResponse};
use psp::service::{ServiceRegistry, ServiceRequest, ServiceResponse, TaraService};
use psp_bench::perf::{fresh_report_path, sizes_from_env, PerfReport};
use psp_bench::scaled_excavator_corpus;
use socialsim::post::Post;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default corpus sizes; override with `PSP_BENCH_SIZES=10000`.
const DEFAULT_SIZES: [usize; 2] = [10_000, 50_000];

/// Reader threads issuing requests.
const READERS: usize = 2;

/// Requests timed per reader per phase.
const REQUESTS_PER_READER: usize = 30;

/// Posts per ingest batch published by the busy-phase writer.
const WRITER_BATCH: usize = 500;

fn score_request() -> ServiceRequest {
    ServiceRequest::Score {
        db: "excavator".into(),
        config: "excavator".into(),
    }
}

/// Runs one measurement phase: `READERS` threads each time
/// `REQUESTS_PER_READER` `Score` requests; with `writer_posts`, a writer
/// thread concurrently publishes generations at <= 1/3 duty cycle.  Returns
/// all request latencies in nanoseconds.
fn run_phase(service: &TaraService, writer_posts: Option<&[Post]>) -> Vec<f64> {
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        if let Some(posts) = writer_posts {
            let (service, done) = (service, &done);
            scope.spawn(move || {
                let mut batches = posts.chunks(WRITER_BATCH).cycle();
                while !done.load(Ordering::SeqCst) {
                    let batch = batches.next().expect("cycle never ends").to_vec();
                    let start = Instant::now();
                    match service.handle(ServiceRequest::Ingest { posts: batch }) {
                        ServiceResponse::Ingested { .. } => {}
                        other => panic!("unexpected response: {other:?}"),
                    }
                    // Duty cycling: rest twice as long as the ingest took so
                    // the writer stays a background load, not a saturating
                    // one.
                    std::thread::sleep(2 * start.elapsed());
                }
            });
        }

        let handles: Vec<_> = (0..READERS)
            .map(|_| {
                scope.spawn(|| {
                    let mut latencies = Vec::with_capacity(REQUESTS_PER_READER);
                    for _ in 0..REQUESTS_PER_READER {
                        let start = Instant::now();
                        match service.handle(score_request()) {
                            ServiceResponse::Score { .. } => {}
                            other => panic!("unexpected response: {other:?}"),
                        }
                        latencies.push(start.elapsed().as_nanos() as f64);
                    }
                    latencies
                })
            })
            .collect();
        let mut all = Vec::with_capacity(READERS * REQUESTS_PER_READER);
        for handle in handles {
            all.extend(handle.join().expect("reader thread panicked"));
        }
        done.store(true, Ordering::SeqCst);
        all
    })
}

/// Times `REQUESTS_PER_READER` full connect/score/close cycles per reader
/// against a bound [`SocketServer`]: each sample covers TCP connect, one
/// `Score` request line out, the response line back, and the close.
fn run_socket_phase(service: &Arc<TaraService>) -> Vec<f64> {
    let server = SocketServer::bind(Arc::clone(service), "127.0.0.1:0", NetConfig::default())
        .expect("bind an OS-picked port");
    let addr = server.local_addr();
    let line = format!(
        "{}\n",
        encode_request(&WireRequest {
            id: 1,
            request: score_request(),
        })
    );
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..READERS)
            .map(|_| {
                let line = line.as_str();
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(REQUESTS_PER_READER);
                    for _ in 0..REQUESTS_PER_READER {
                        let start = Instant::now();
                        let mut stream = TcpStream::connect(addr).expect("socket server accepts");
                        stream.write_all(line.as_bytes()).expect("request written");
                        let mut response = String::new();
                        BufReader::new(&stream)
                            .read_line(&mut response)
                            .expect("response read");
                        drop(stream);
                        latencies.push(start.elapsed().as_nanos() as f64);
                        let decoded: WireResponse =
                            serde_json::from_str(response.trim_end()).expect("response decodes");
                        assert!(
                            matches!(decoded.response, ServiceResponse::Score { .. }),
                            "unexpected response: {:?}",
                            decoded.response
                        );
                    }
                    latencies
                })
            })
            .collect();
        let mut all = Vec::with_capacity(READERS * REQUESTS_PER_READER);
        for handle in handles {
            all.extend(handle.join().expect("socket reader thread panicked"));
        }
        all
    })
}

/// Nearest-rank percentile over unsorted samples.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

fn main() {
    let sizes = sizes_from_env(&DEFAULT_SIZES);
    let db = KeywordDatabase::excavator_seed();
    let config = PspConfig::excavator_europe();
    let mut report = PerfReport::new("engine_serve");

    for &size in &sizes {
        let corpus = scaled_excavator_corpus(size, 42);
        // The writer replays a disjoint stream so every published generation
        // genuinely changes the corpus.
        let extra = scaled_excavator_corpus(size.min(20_000), 7)
            .posts()
            .to_vec();

        // The warm serving state: indexed, every text signal memoised.
        let engine = LiveEngine::new(corpus.clone());
        engine.precompute_signals();
        let registry = ServiceRegistry::new()
            .database("excavator", db.clone())
            .config("excavator", config.clone());
        let service = Arc::new(TaraService::with_workers(engine, registry, READERS));

        // Sanity: a served response is bit-identical to a standalone engine
        // at the same generation before anything is timed.  (Also warms the
        // service's plan cache — the daemon steady state.)
        match service.handle(score_request()) {
            ServiceResponse::Score { generation, sai } => {
                assert_eq!(generation, 0);
                assert_eq!(
                    sai,
                    LiveEngine::new(corpus.clone()).sai_list(&db, &config),
                    "served response diverged from a standalone engine at {size} posts"
                );
            }
            other => panic!("unexpected response: {other:?}"),
        }

        let mut idle = run_phase(&service, None);
        let mut busy = run_phase(&service, Some(&extra));
        let mut socket = run_socket_phase(&service);

        let idle_p50 = percentile(&mut idle, 50.0);
        let idle_p99 = percentile(&mut idle, 99.0);
        let busy_p50 = percentile(&mut busy, 50.0);
        let busy_p99 = percentile(&mut busy, 99.0);
        let socket_p50 = percentile(&mut socket, 50.0);
        let socket_p99 = percentile(&mut socket, 99.0);
        let ratio = idle_p99 / busy_p99;
        let socket_ratio = idle_p99 / socket_p99;
        println!(
            "{size:>7} posts: idle p50 {idle_p50:>11.0} ns, p99 {idle_p99:>11.0} ns | \
             busy p50 {busy_p50:>11.0} ns, p99 {busy_p99:>11.0} ns | idle/busy p99 {ratio:.2}"
        );
        println!(
            "{size:>7} posts: socket p50 {socket_p50:>9.0} ns, p99 {socket_p99:>11.0} ns | \
             idle/socket p99 {socket_ratio:.2}"
        );
        report.push_metric(format!("serve_idle_p50/{size}"), idle_p50);
        report.push_metric(format!("serve_idle_p99/{size}"), idle_p99);
        report.push_metric(format!("serve_busy_p50/{size}"), busy_p50);
        report.push_metric(format!("serve_busy_p99/{size}"), busy_p99);
        report.push_metric(format!("socket_score_p50/{size}"), socket_p50);
        report.push_metric(format!("socket_score_p99/{size}"), socket_p99);
        report.push_ratio(format!("p99_idle_over_busy/{size}"), ratio);
        report.push_ratio(format!("p99_idle_over_socket/{size}"), socket_ratio);
    }

    let path = fresh_report_path("engine_serve");
    match report.save(&path) {
        Ok(()) => println!("perf report written to {}", path.display()),
        Err(err) => eprintln!("could not write perf report: {err}"),
    }
}
