//! E13 / E14 — the financial workflow (Equations 1-7) end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use market::datasets;
use psp::financial::{FinancialAssessment, FinancialInputs};
use psp_bench::excavator_sai;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let sai = excavator_sai();
    let sales = datasets::excavator_sales_europe();
    let report = datasets::annual_report();
    let inputs = FinancialInputs::paper_excavator_example();

    let mut group = c.benchmark_group("financial");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(10));
    group.bench_function("eq6_eq7_assessment_dpf", |b| {
        b.iter(|| {
            black_box(
                FinancialAssessment::assess("dpf-tampering", &sai, &sales, &report, &inputs)
                    .expect("assesses"),
            )
        })
    });
    group.bench_function("eq6_eq7_assessment_all_scenarios", |b| {
        b.iter(|| {
            let mut ratings = Vec::new();
            for scenario in [
                "dpf-tampering",
                "egr-tampering",
                "scr-emulation",
                "power-tuning",
                "limiter-removal",
                "hour-meter-fraud",
            ] {
                let mut scenario_inputs = inputs.clone();
                scenario_inputs.report_category = "emission tampering (DPF)".to_string();
                if let Ok(a) =
                    FinancialAssessment::assess(scenario, &sai, &sales, &report, &scenario_inputs)
                {
                    ratings.push(a.rating);
                }
            }
            black_box(ratings)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
