//! Streaming ingestion — append-then-score vs rebuild-then-score.
//!
//! The continuous-monitoring loop ingests a batch of new posts into a corpus
//! that is already being served, then re-evaluates SAI.  Before incremental
//! indexing, that meant rebuilding the whole `ScoringEngine` (full index build
//! plus a cold text-pipeline pass over every matching post).  With
//! `LiveEngine::ingest`, only the batch is indexed and only the batch's posts
//! ever pay the text pipeline.
//!
//! Per base-corpus size (default 10k and 100k posts; `PSP_BENCH_SIZES`
//! overrides), a 1k-post batch arrives and three paths are measured:
//!
//! * `rebuild_then_score` — clone the base corpus, append the batch, build a
//!   fresh `ScoringEngine`, score.  The pre-ingestion state of the art.
//! * `append_then_score` — clone a *warm* `LiveEngine` (signals memoised),
//!   ingest the batch in place, score.  The clone is an artefact of repeatable
//!   measurement (a real serving loop mutates one engine); its cost is
//!   measured separately so the report can also state the net append cost.
//! * `clone_warm_engine` — just the clone, for that correction.
//!
//! The headline ratio `speedup_append/<size>` uses the raw (conservative,
//! clone-included) append timing.  The report lands in
//! `target/perf/engine_ingest.json`; the blessed baseline in
//! `crates/bench/baselines/engine_ingest.json` records the acceptance target
//! (append beats rebuild by >= 5x at 100k posts).  The CI `perf-smoke` job
//! enforces the small-size rows via `perf_check` (it runs with
//! `PSP_BENCH_SIZES=10000`); the 100k row is checked whenever the bench runs
//! at full size — locally and at baseline-blessing time.

use criterion::{criterion_group, criterion_main, Criterion};
use psp::config::PspConfig;
use psp::engine::{LiveEngine, ScoringEngine};
use psp::keyword_db::KeywordDatabase;
use psp_bench::perf::{fresh_report_path, mean_ns, sizes_from_env, PerfReport};
use psp_bench::scaled_excavator_corpus;
use socialsim::post::Post;
use std::hint::black_box;
use std::time::Duration;

/// Default base-corpus sizes; override with `PSP_BENCH_SIZES=10000`.
const DEFAULT_SIZES: [usize; 2] = [10_000, 100_000];

/// Posts per arriving batch.
const BATCH: usize = 1_000;

/// The arriving batch: same topic shape as the base corpus, disjoint seed.
/// Generated oversized because the corpus builder rounds post counts down to
/// whole topic/year cells, then truncated to exactly [`BATCH`] posts.
fn arriving_batch() -> Vec<Post> {
    let stream = scaled_excavator_corpus(BATCH * 6 / 5, 7);
    let batch: Vec<Post> = stream.posts().iter().take(BATCH).cloned().collect();
    assert_eq!(batch.len(), BATCH, "batch generation came up short");
    batch
}

fn write_report(c: &Criterion, sizes: &[usize]) {
    let mut report = PerfReport::new("engine_ingest");
    for size in sizes {
        let rebuild = mean_ns(c, &format!("engine_ingest/rebuild_then_score/{size}"));
        let append = mean_ns(c, &format!("engine_ingest/append_then_score/{size}"));
        let clone = mean_ns(c, &format!("engine_ingest/clone_warm_engine/{size}"));
        let speedup = rebuild / append;
        let speedup_net = rebuild / (append - clone).max(1.0);
        println!(
            "base {size:>7} + {BATCH} posts: rebuild {rebuild:>13.0} ns | append {append:>12.0} ns \
             ({speedup:.1}x) | net of clone {speedup_net:.1}x"
        );
        report.push_metric(format!("rebuild_then_score/{size}"), rebuild);
        report.push_metric(format!("append_then_score/{size}"), append);
        report.push_metric(format!("clone_warm_engine/{size}"), clone);
        report.push_ratio(format!("speedup_append/{size}"), speedup);
        // speedup_net divides by the *difference* of two independently
        // measured noisy means, so it is printed for context but never
        // recorded: a jittery denominator must not poison the enforced
        // baseline.
    }
    let path = fresh_report_path("engine_ingest");
    match report.save(&path) {
        Ok(()) => println!("perf report written to {}", path.display()),
        Err(err) => eprintln!("could not write perf report: {err}"),
    }
}

fn bench(c: &mut Criterion) {
    let db = KeywordDatabase::excavator_seed();
    let config = PspConfig::excavator_europe();
    let sizes = sizes_from_env(&DEFAULT_SIZES);
    let batch = arriving_batch();

    for &size in &sizes {
        let base = scaled_excavator_corpus(size, 42);

        // The warm serving state: indexed, every signal memoised.
        let warm = {
            let live = LiveEngine::new(base.clone());
            live.precompute_signals();
            live
        };

        // Sanity: the two paths must agree bit-for-bit before being timed.
        {
            let mut appended = warm.clone();
            appended.ingest(batch.clone());
            let mut grown = base.clone();
            grown.extend(batch.iter().cloned());
            assert_eq!(
                appended.sai_list(&db, &config),
                ScoringEngine::new(&grown).sai_list(&db, &config),
                "append path diverged from rebuild path at {size} posts"
            );
        }

        let mut group = c.benchmark_group("engine_ingest");
        group
            .sample_size(3)
            .measurement_time(Duration::from_secs(10));
        group.bench_function(&format!("rebuild_then_score/{size}"), |b| {
            b.iter(|| {
                let mut grown = base.clone();
                grown.extend(batch.iter().cloned());
                let engine = ScoringEngine::new(&grown);
                black_box(engine.sai_list(&db, &config))
            })
        });
        group.bench_function(&format!("append_then_score/{size}"), |b| {
            b.iter(|| {
                let mut live = warm.clone();
                live.ingest(batch.iter().cloned());
                black_box(live.sai_list(&db, &config))
            })
        });
        group.bench_function(&format!("clone_warm_engine/{size}"), |b| {
            b.iter(|| black_box(warm.clone()))
        });
        group.finish();
    }

    write_report(c, &sizes);
}

criterion_group!(benches, bench);
criterion_main!(benches);
