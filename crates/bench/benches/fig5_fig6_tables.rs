//! E5 / E6 — the attack-vector table (Figure 5) and CAL matrix (Figure 6), plus a
//! full reference-TARA evaluation under the standard model.

use criterion::{criterion_group, criterion_main, Criterion};
use iso21434::cal::CalMatrix;
use iso21434::feasibility::attack_vector::{AttackVectorModel, AttackVectorTable};
use iso21434::impact::ImpactRating;
use psp::dynamic_tara::ecm_reference_tara;
use std::hint::black_box;
use vehicle::attack_surface::AttackVector;

fn bench(c: &mut Criterion) {
    let table = AttackVectorTable::standard();
    c.bench_function("fig5/g9_lookup_all_vectors", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for vector in AttackVector::ALL {
                acc += table.rating(black_box(vector)).value();
            }
            black_box(acc)
        })
    });

    let matrix = CalMatrix::new();
    c.bench_function("fig6/cal_matrix_full_table", |b| {
        b.iter(|| {
            let mut levels = 0u8;
            for impact in ImpactRating::ALL {
                for vector in AttackVector::ALL {
                    if let Some(cal) = matrix.cal(black_box(impact), black_box(vector)) {
                        levels += cal.level();
                    }
                }
            }
            black_box(levels)
        })
    });

    let tara = ecm_reference_tara("ECM");
    let model = AttackVectorModel::standard();
    c.bench_function("fig5/reference_tara_static_evaluation", |b| {
        b.iter(|| black_box(tara.evaluate(&model).expect("evaluates")))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
