//! E9 / Figure 9 — the windowed analysis behind the trend-inversion
//! experiment, on the sweep entry point.
//!
//! `compare_windows` measures the full cold-start artefact cost (engine
//! build + a two-entry sweep: full history vs the recent window);
//! `warm_yearly_sweep` measures the steady-state monitoring shape the sweep
//! plane exists for — one warm engine resolving every yearly window of the
//! scene through `sai_windows` — and `warm_yearly_lists` keeps the per-window
//! batch path alongside it as the honest reference.

use criterion::{criterion_group, criterion_main, Criterion};
use psp::config::PspConfig;
use psp::engine::{ScoringEngine, WindowAxis};
use psp::keyword_db::KeywordDatabase;
use psp::timewindow::compare_windows;
use psp_bench::{passenger_corpus, recent_window};
use socialsim::time::DateWindow;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let corpus = passenger_corpus();
    let db = KeywordDatabase::passenger_car_seed();
    let config = PspConfig::passenger_car_europe();
    let windows: Vec<DateWindow> = (2015..=2023).map(|y| DateWindow::years(y, y)).collect();
    let configs: Vec<PspConfig> = windows
        .iter()
        .map(|w| config.clone().with_window(*w))
        .collect();

    let engine = ScoringEngine::new(&corpus);
    // Sanity before timing: the sweep must match the per-window batch path.
    assert_eq!(
        engine.sai_windows(&db, &config, &WindowAxis::each(&windows)),
        engine.sai_lists(&db, &configs),
        "fig9 sweep diverged from per-window lists"
    );

    let mut group = c.benchmark_group("fig9");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(20));
    group.bench_function("compare_windows_ecm_reprogramming", |b| {
        b.iter(|| {
            black_box(compare_windows(
                &corpus,
                &db,
                &config,
                "ecm-reprogramming",
                recent_window(),
            ))
        })
    });
    group.bench_function("warm_yearly_sweep", |b| {
        b.iter(|| black_box(engine.sai_windows(&db, &config, &WindowAxis::each(&windows))))
    });
    group.bench_function("warm_yearly_lists", |b| {
        b.iter(|| black_box(engine.sai_lists(&db, &configs)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
