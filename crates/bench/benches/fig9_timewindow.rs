//! E9 / Figure 9 — the windowed analysis behind the trend-inversion experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use psp::config::PspConfig;
use psp::keyword_db::KeywordDatabase;
use psp::timewindow::compare_windows;
use psp_bench::{passenger_corpus, recent_window};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let corpus = passenger_corpus();
    let db = KeywordDatabase::passenger_car_seed();
    let config = PspConfig::passenger_car_europe();

    let mut group = c.benchmark_group("fig9");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(20));
    group.bench_function("compare_windows_ecm_reprogramming", |b| {
        b.iter(|| {
            black_box(compare_windows(
                &corpus,
                &db,
                &config,
                "ecm-reprogramming",
                recent_window(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
