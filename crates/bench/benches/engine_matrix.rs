//! The batch plane vs hand-nested loops — the (scenario × weights × windows)
//! cross-product hot path.
//!
//! The workload is a fleet assessment: one warm engine answers a full
//! cross-product of 2 scenario databases × 4 weight/scene configurations ×
//! 20 overlapping one-year analysis windows (quarterly starts over
//! 2018-2022) of the scaled excavator corpus — 160 cells per request.  The
//! nested-loop equivalent runs one per-window batch (`sai_lists`, one config
//! per window) per (database, configuration) pair: each of the 8 row pairs
//! walks every keyword's whole candidate set per window.  The matrix
//! (`sai_matrix`) schedules the same cells through per-(database, scene)
//! sweep plans — the three weight presets share one plan, the
//! credibility-filtered scene gets its own — so each row resolves its 20
//! windows against prefix-summed columns instead of 20 candidate walks.
//! Plans are cached on the engine (the bounded keyed `PlanCache`), so the
//! steady-state cost — what a TARA serving loop pays per matrix request —
//! is pure window resolution; the sanity check before timing warms the
//! plans exactly like a first request would.
//!
//! Per corpus size (default 10k and 100k posts; `PSP_BENCH_SIZES` overrides),
//! three paths are measured:
//!
//! * `nested_lists/<size>` — the warm single engine through hand-nested
//!   loops: per (database, configuration), one `sai_lists` call over the
//!   windowed configs — the pre-matrix hot path;
//! * `matrix_cells/<size>` — the same cells through one `sai_matrix` request;
//! * `matrix_sharded/<size>` — the same request on a warm `ShardedEngine`
//!   over yearly shards (per-shard plans, window-pruned, pre-normalisation
//!   merge).
//!
//! The headline ratio `speedup_matrix/<size>` is nested/matrix (the
//! acceptance target: >= 3x at 100k posts); `speedup_matrix_sharded/<size>`
//! is nested/sharded-matrix.  All paths are asserted bit-identical cell by
//! cell before anything is timed.  The report lands in
//! `target/perf/engine_matrix.json`; the blessed baseline in
//! `crates/bench/baselines/engine_matrix.json` is enforced by the CI
//! perf-smoke job via `perf_check --ratios-only`.

use criterion::{criterion_group, criterion_main, Criterion};
use psp::config::{PspConfig, SaiWeights};
use psp::engine::{MatrixSpec, SaiScorer, ScoringEngine, ShardedEngine};
use psp::keyword_db::KeywordDatabase;
use psp::sai::SaiList;
use psp_bench::perf::{fresh_report_path, mean_ns, sizes_from_env, PerfReport};
use psp_bench::scaled_excavator_corpus;
use socialsim::index::ShardSpec;
use socialsim::time::{DateWindow, SimDate};
use std::hint::black_box;
use std::time::Duration;

/// Default corpus sizes; override with `PSP_BENCH_SIZES=10000`.
const DEFAULT_SIZES: [usize; 2] = [10_000, 100_000];

/// Number of analysis windows in the grid.
const WINDOWS: usize = 20;

/// 20 overlapping one-year windows starting quarterly at 2018-01 (the scaled
/// corpus spans 2018-2023) — the same grid as the `engine_sweep` bench.
fn sweep_windows() -> Vec<DateWindow> {
    (0..WINDOWS)
        .map(|i| {
            let start_month = 3 * i; // months since 2018-01
            let end_month = start_month + 11;
            DateWindow::new(
                SimDate::new(
                    2018 + (start_month / 12) as i32,
                    (1 + start_month % 12) as u8,
                    1,
                ),
                SimDate::new(
                    2018 + (end_month / 12) as i32,
                    (1 + end_month % 12) as u8,
                    28,
                ),
            )
        })
        .collect()
}

/// The scenario axis: two keyword databases.
fn scenario_axis() -> Vec<(&'static str, KeywordDatabase)> {
    vec![
        ("excavator", KeywordDatabase::excavator_seed()),
        ("passenger-car", KeywordDatabase::passenger_car_seed()),
    ]
}

/// The configuration axis: three weight presets sharing one scene plus a
/// credibility-filtered scene of its own — two plan keys per database.
fn config_axis() -> Vec<(&'static str, PspConfig)> {
    let base = PspConfig::excavator_europe();
    vec![
        ("balanced", base.clone()),
        (
            "views-only",
            base.clone().with_weights(SaiWeights::views_only()),
        ),
        (
            "interactions-only",
            base.clone().with_weights(SaiWeights::interactions_only()),
        ),
        ("filtered", base.with_poisoning_filter(0.25)),
    ]
}

/// The full cross-product as a [`MatrixSpec`].
fn matrix_spec(windows: &[DateWindow]) -> MatrixSpec {
    let mut spec = MatrixSpec::new();
    for (label, db) in scenario_axis() {
        spec = spec.scenario(label, db);
    }
    for (label, config) in config_axis() {
        spec = spec.config(label, config);
    }
    spec.windows(windows)
}

/// The hand-nested reference: per (database, configuration), one per-window
/// batch call — cells in the same order the matrix streams them.
fn nested_cells(engine: &ScoringEngine<'_>, windows: &[DateWindow]) -> Vec<SaiList> {
    let mut cells = Vec::new();
    for (_, db) in scenario_axis() {
        for (_, config) in config_axis() {
            let windowed: Vec<PspConfig> = windows
                .iter()
                .map(|w| config.clone().with_window(*w))
                .collect();
            cells.extend(engine.sai_lists(&db, &windowed));
        }
    }
    cells
}

fn write_report(c: &Criterion, sizes: &[usize]) {
    let mut report = PerfReport::new("engine_matrix");
    for size in sizes {
        let nested = mean_ns(c, &format!("engine_matrix/nested_lists/{size}"));
        let matrix = mean_ns(c, &format!("engine_matrix/matrix_cells/{size}"));
        let sharded = mean_ns(c, &format!("engine_matrix/matrix_sharded/{size}"));
        let speedup = nested / matrix;
        let speedup_sharded = nested / sharded;
        println!(
            "{size:>7} posts, 160 cells: nested {nested:>13.0} ns | matrix {matrix:>12.0} ns \
             ({speedup:.1}x) | sharded matrix {sharded:>12.0} ns ({speedup_sharded:.1}x)"
        );
        report.push_metric(format!("nested_lists/{size}"), nested);
        report.push_metric(format!("matrix_cells/{size}"), matrix);
        report.push_metric(format!("matrix_sharded/{size}"), sharded);
        report.push_ratio(format!("speedup_matrix/{size}"), speedup);
        // The sharded matrix is merge-dominated at small sizes (same as the
        // sharded sweep): only enforce its ratio at full scale.
        if *size >= 100_000 {
            report.push_ratio(format!("speedup_matrix_sharded/{size}"), speedup_sharded);
        }
    }
    let path = fresh_report_path("engine_matrix");
    match report.save(&path) {
        Ok(()) => println!("perf report written to {}", path.display()),
        Err(err) => eprintln!("could not write perf report: {err}"),
    }
}

fn bench(c: &mut Criterion) {
    let windows = sweep_windows();
    let spec = matrix_spec(&windows);
    let sizes = sizes_from_env(&DEFAULT_SIZES);

    for &size in &sizes {
        let corpus = scaled_excavator_corpus(size, 42);

        // The warm serving state: indexed, every text signal memoised.
        let single = ScoringEngine::new(&corpus);
        single.precompute_signals();
        let sharded = ShardedEngine::new(corpus.clone(), ShardSpec::yearly());
        sharded.precompute_signals();

        // Sanity: the matrix must be bit-identical to the nested loops on
        // both engine shapes before being timed.  (These first calls also
        // build and cache the sweep plans — the warm steady state the bench
        // measures.)
        let reference = nested_cells(&single, &windows);
        let cells: Vec<SaiList> = single
            .sai_matrix(&spec)
            .into_cells()
            .into_iter()
            .map(|(_, sai)| sai)
            .collect();
        assert_eq!(
            cells, reference,
            "matrix diverged from nested loops at {size} posts"
        );
        let sharded_cells: Vec<SaiList> = sharded
            .sai_matrix(&spec)
            .into_cells()
            .into_iter()
            .map(|(_, sai)| sai)
            .collect();
        assert_eq!(
            sharded_cells, reference,
            "sharded matrix diverged from nested loops at {size} posts"
        );

        let mut group = c.benchmark_group("engine_matrix");
        group
            .sample_size(3)
            .measurement_time(Duration::from_secs(10));
        group.bench_function(&format!("nested_lists/{size}"), |b| {
            b.iter(|| black_box(nested_cells(&single, &windows)))
        });
        group.bench_function(&format!("matrix_cells/{size}"), |b| {
            b.iter(|| black_box(single.sai_matrix(&spec)))
        });
        group.bench_function(&format!("matrix_sharded/{size}"), |b| {
            b.iter(|| black_box(sharded.sai_matrix(&spec)))
        });
        group.finish();
    }

    write_report(c, &sizes);
}

criterion_group!(benches, bench);
criterion_main!(benches);
