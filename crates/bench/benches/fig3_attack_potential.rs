//! E3 / Figure 3 — the attack-potential feasibility model over its whole
//! parameter space.

use criterion::{criterion_group, criterion_main, Criterion};
use iso21434::feasibility::attack_potential::{
    AttackPotential, ElapsedTime, Equipment, Expertise, Knowledge, WindowOfOpportunity,
};
use iso21434::tables;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("fig3/table_rows", |b| {
        b.iter(|| black_box(tables::attack_potential_rows()))
    });

    c.bench_function("fig3/rate_full_parameter_space", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for et in ElapsedTime::ALL {
                for ex in Expertise::ALL {
                    for kn in Knowledge::ALL {
                        for wo in WindowOfOpportunity::ALL {
                            for eq in Equipment::ALL {
                                let ap = AttackPotential::new(et, ex, kn, wo, eq);
                                acc += ap.rating().value() as u32;
                            }
                        }
                    }
                }
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
