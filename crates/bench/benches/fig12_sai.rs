//! E12 / Figure 12 — SAI computation on the excavator scene.
//!
//! `SaiList::compute` now routes through the indexed `ScoringEngine`; this
//! bench measures the one-shot path, the engine build, the amortised indexed
//! pass on a prebuilt engine, and the naive linear-scan reference.

use criterion::{criterion_group, criterion_main, Criterion};
use psp::config::PspConfig;
use psp::engine::ScoringEngine;
use psp::keyword_db::KeywordDatabase;
use psp::sai::SaiList;
use psp_bench::{excavator_corpus, excavator_sai};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let corpus = excavator_corpus();
    let db = KeywordDatabase::excavator_seed();
    let config = PspConfig::excavator_europe();

    let mut group = c.benchmark_group("fig12");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(20));
    group.bench_function("sai_computation_excavator", |b| {
        b.iter(|| black_box(SaiList::compute(&corpus, &db, &config)))
    });
    group.bench_function("sai_naive_reference_excavator", |b| {
        b.iter(|| black_box(SaiList::compute_naive(&corpus, &db, &config)))
    });
    group.bench_function("engine_build_excavator", |b| {
        b.iter(|| black_box(ScoringEngine::new(&corpus)))
    });
    let engine = ScoringEngine::new(&corpus);
    group.bench_function("engine_sai_indexed_pass", |b| {
        b.iter(|| black_box(engine.sai_list(&db, &config)))
    });
    group.finish();

    let sai = excavator_sai();
    c.bench_function("fig12/scenario_ranking", |b| {
        b.iter(|| black_box(sai.scenario_ranking()))
    });
    c.bench_function("fig12/vector_shares", |b| {
        b.iter(|| black_box(sai.vector_shares("dpf-tampering")))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
