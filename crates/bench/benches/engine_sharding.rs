//! Sharded vs single-engine scoring — the fleet-scale fan-out.
//!
//! The workload is the monitoring hot path: a warm engine (index built, every
//! text signal memoised) answers a sweep of yearly analysis windows.  The
//! single engine resolves each keyword's content candidates once but must
//! re-filter the *whole corpus'* candidate set for every window; the sharded
//! engine (yearly time shards) prunes every shard whose year span a window
//! cannot touch, so each window only filters the candidates of the one shard
//! it overlaps — the work per sweep drops from `windows x corpus` to
//! `windows x shard`.  That locality win is thread-count independent, and on
//! multi-core machines shard fan-out stacks on top of it.
//!
//! Per corpus size (default 10k and 100k posts; `PSP_BENCH_SIZES` overrides),
//! four paths are measured:
//!
//! * `window_sweep_single/<size>` — one warm `ScoringEngine`, batch-scoring
//!   one config per year (6 windows over 2018-2023);
//! * `window_sweep_sharded/<size>` — a warm `ShardedEngine` on yearly shards,
//!   same configs, shard pruning active;
//! * `cold_build_single/<size>` / `cold_build_sharded/<size>` — constructing
//!   the engines from scratch and scoring once (context: sharding must not
//!   make cold starts materially worse).  `ShardedEngine::new` takes the
//!   corpus by value, so *both* paths clone the corpus inside the timed loop —
//!   the comparison is clone+build+score vs clone+build+score, never
//!   penalising one side with the clone.
//!
//! The headline ratio `speedup_window_sweep/<size>` is single/sharded.  The
//! report lands in `target/perf/engine_sharding.json`; the blessed baseline in
//! `crates/bench/baselines/engine_sharding.json` records the acceptance target
//! (the sharded sweep beats the single-engine sweep at 100k posts).  The CI
//! `perf-smoke` job enforces the ratio rows via `perf_check --ratios-only` at
//! reduced sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use psp::config::PspConfig;
use psp::engine::{ScoringEngine, ShardedEngine};
use psp::keyword_db::KeywordDatabase;
use psp_bench::perf::{fresh_report_path, mean_ns, sizes_from_env, PerfReport};
use psp_bench::scaled_excavator_corpus;
use socialsim::index::ShardSpec;
use socialsim::time::DateWindow;
use std::hint::black_box;
use std::time::Duration;

/// Default corpus sizes; override with `PSP_BENCH_SIZES=10000`.
const DEFAULT_SIZES: [usize; 2] = [10_000, 100_000];

/// The yearly analysis windows of the sweep (the scaled corpus spans
/// 2018-2023).
fn sweep_configs() -> Vec<PspConfig> {
    (2018..=2023)
        .map(|y| PspConfig::excavator_europe().with_window(DateWindow::years(y, y)))
        .collect()
}

fn write_report(c: &Criterion, sizes: &[usize]) {
    let mut report = PerfReport::new("engine_sharding");
    for size in sizes {
        let single = mean_ns(c, &format!("engine_sharding/window_sweep_single/{size}"));
        let sharded = mean_ns(c, &format!("engine_sharding/window_sweep_sharded/{size}"));
        let cold_single = mean_ns(c, &format!("engine_sharding/cold_build_single/{size}"));
        let cold_sharded = mean_ns(c, &format!("engine_sharding/cold_build_sharded/{size}"));
        let speedup = single / sharded;
        println!(
            "{size:>7} posts: sweep single {single:>13.0} ns | sharded {sharded:>12.0} ns \
             ({speedup:.1}x) | cold build single {cold_single:>13.0} ns | sharded {cold_sharded:>13.0} ns"
        );
        report.push_metric(format!("window_sweep_single/{size}"), single);
        report.push_metric(format!("window_sweep_sharded/{size}"), sharded);
        report.push_metric(format!("cold_build_single/{size}"), cold_single);
        report.push_metric(format!("cold_build_sharded/{size}"), cold_sharded);
        report.push_ratio(format!("speedup_window_sweep/{size}"), speedup);
    }
    let path = fresh_report_path("engine_sharding");
    match report.save(&path) {
        Ok(()) => println!("perf report written to {}", path.display()),
        Err(err) => eprintln!("could not write perf report: {err}"),
    }
}

fn bench(c: &mut Criterion) {
    let db = KeywordDatabase::excavator_seed();
    let configs = sweep_configs();
    let sizes = sizes_from_env(&DEFAULT_SIZES);

    for &size in &sizes {
        let corpus = scaled_excavator_corpus(size, 42);

        // The warm serving state for both shapes: indexed, signals memoised.
        let single = ScoringEngine::new(&corpus);
        single.precompute_signals();
        let sharded = ShardedEngine::new(corpus.clone(), ShardSpec::yearly());
        sharded.precompute_signals();

        // Sanity: the sharded sweep must be bit-identical before being timed.
        assert_eq!(
            sharded.sai_lists(&db, &configs),
            single.sai_lists(&db, &configs),
            "sharded sweep diverged from the single-engine sweep at {size} posts"
        );

        let mut group = c.benchmark_group("engine_sharding");
        group
            .sample_size(3)
            .measurement_time(Duration::from_secs(10));
        group.bench_function(&format!("window_sweep_single/{size}"), |b| {
            b.iter(|| black_box(single.sai_lists(&db, &configs)))
        });
        group.bench_function(&format!("window_sweep_sharded/{size}"), |b| {
            b.iter(|| black_box(sharded.sai_lists(&db, &configs)))
        });
        group.bench_function(&format!("cold_build_single/{size}"), |b| {
            b.iter(|| {
                // Clone to mirror the sharded path's by-value corpus intake.
                let snapshot = corpus.clone();
                black_box(ScoringEngine::new(&snapshot).sai_list(&db, &configs[0]))
            })
        });
        group.bench_function(&format!("cold_build_sharded/{size}"), |b| {
            b.iter(|| {
                black_box(
                    ShardedEngine::new(corpus.clone(), ShardSpec::yearly())
                        .sai_list(&db, &configs[0]),
                )
            })
        });
        group.finish();
    }

    write_report(c, &sizes);
}

criterion_group!(benches, bench);
criterion_main!(benches);
