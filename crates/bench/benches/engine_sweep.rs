//! The sweep plane vs per-window batch scoring — the N-window monitoring
//! hot path.
//!
//! The workload is a monitoring sweep: one warm engine (index built, signals
//! memoised) answers 20 overlapping one-year analysis windows (quarterly
//! starts over 2018-2022) of the scaled excavator corpus.  The batch
//! `sai_lists` path resolves each keyword's candidates once but still walks
//! the whole candidate set per window (a date filter plus a signal fold);
//! `sai_windows` projects the candidates once into date-sorted, prefix-summed
//! columns and resolves each window with two binary searches plus a fold over
//! only the window's own rows.  The sweep plan is cached on the engine, so
//! the steady-state cost — what a `LiveMonitor` pays per re-evaluation — is
//! pure window resolution; the sanity check before timing warms the plan
//! exactly like the first monitoring pass would.
//!
//! Per corpus size (default 10k and 100k posts; `PSP_BENCH_SIZES` overrides),
//! three paths are measured:
//!
//! * `window_sweep_lists/<size>` — the warm single engine through per-window
//!   batch scoring (`sai_lists`, one config per window) — the pre-sweep hot
//!   path;
//! * `window_sweep_plan/<size>` — the same engine and windows through
//!   `sai_windows`;
//! * `window_sweep_sharded_plan/<size>` — a warm `ShardedEngine` on yearly
//!   shards through `sai_windows` (per-shard plans + pre-normalisation merge).
//!
//! The headline ratio `speedup_sweep/<size>` is lists/plan (the acceptance
//! target: >= 5x at 100k posts); `speedup_sweep_sharded/<size>` is
//! lists/sharded-plan.  All three paths are asserted bit-identical before
//! anything is timed.  The report lands in `target/perf/engine_sweep.json`;
//! the blessed baseline in `crates/bench/baselines/engine_sweep.json` is
//! enforced by the CI perf-smoke job via `perf_check --ratios-only`.

use criterion::{criterion_group, criterion_main, Criterion};
use psp::config::PspConfig;
use psp::engine::{LiveEngine, ScoringEngine, ShardedEngine, WindowAxis};
use psp::keyword_db::KeywordDatabase;
use psp_bench::perf::{fresh_report_path, mean_ns, sizes_from_env, PerfReport};
use psp_bench::scaled_excavator_corpus;
use socialsim::index::ShardSpec;
use socialsim::time::{DateWindow, SimDate};
use std::hint::black_box;
use std::time::Duration;

/// Default corpus sizes; override with `PSP_BENCH_SIZES=10000`.
const DEFAULT_SIZES: [usize; 2] = [10_000, 100_000];

/// Number of analysis windows in the sweep.
const WINDOWS: usize = 20;

/// 20 overlapping one-year windows starting quarterly at 2018-01 (the scaled
/// corpus spans 2018-2023) — the shape of a monthly-cadence monitoring loop.
fn sweep_windows() -> Vec<DateWindow> {
    (0..WINDOWS)
        .map(|i| {
            let start_month = 3 * i; // months since 2018-01
            let end_month = start_month + 11;
            DateWindow::new(
                SimDate::new(
                    2018 + (start_month / 12) as i32,
                    (1 + start_month % 12) as u8,
                    1,
                ),
                SimDate::new(
                    2018 + (end_month / 12) as i32,
                    (1 + end_month % 12) as u8,
                    28,
                ),
            )
        })
        .collect()
}

fn write_report(c: &Criterion, sizes: &[usize]) {
    let mut report = PerfReport::new("engine_sweep");
    for size in sizes {
        let lists = mean_ns(c, &format!("engine_sweep/window_sweep_lists/{size}"));
        let plan = mean_ns(c, &format!("engine_sweep/window_sweep_plan/{size}"));
        let sharded = mean_ns(c, &format!("engine_sweep/window_sweep_sharded_plan/{size}"));
        let speedup = lists / plan;
        let speedup_sharded = lists / sharded;
        println!(
            "{size:>7} posts, {WINDOWS} windows: lists {lists:>13.0} ns | sweep {plan:>12.0} ns \
             ({speedup:.1}x) | sharded sweep {sharded:>12.0} ns ({speedup_sharded:.1}x)"
        );
        report.push_metric(format!("window_sweep_lists/{size}"), lists);
        report.push_metric(format!("window_sweep_plan/{size}"), plan);
        report.push_metric(format!("window_sweep_sharded_plan/{size}"), sharded);
        report.push_ratio(format!("speedup_sweep/{size}"), speedup);
        // The sharded sweep is merge-dominated at small sizes and hovers near
        // parity there — too noisy to enforce as a CI ratio floor, so the
        // speedup row is only recorded at full scale, where it has headroom.
        if *size >= 100_000 {
            report.push_ratio(format!("speedup_sweep_sharded/{size}"), speedup_sharded);
        }
    }
    let path = fresh_report_path("engine_sweep");
    match report.save(&path) {
        Ok(()) => println!("perf report written to {}", path.display()),
        Err(err) => eprintln!("could not write perf report: {err}"),
    }
}

fn bench(c: &mut Criterion) {
    let db = KeywordDatabase::excavator_seed();
    let base = PspConfig::excavator_europe();
    let windows = sweep_windows();
    let configs: Vec<PspConfig> = windows
        .iter()
        .map(|w| base.clone().with_window(*w))
        .collect();
    let sizes = sizes_from_env(&DEFAULT_SIZES);

    for &size in &sizes {
        let corpus = scaled_excavator_corpus(size, 42);

        // The warm serving state: indexed, every text signal memoised.
        let single = ScoringEngine::new(&corpus);
        single.precompute_signals();
        let sharded = ShardedEngine::new(corpus.clone(), ShardSpec::yearly());
        sharded.precompute_signals();

        // Sanity: every sweep path must be bit-identical to per-window batch
        // scoring before being timed.  (These first calls also build and
        // cache the sweep plans — the warm steady state the bench measures.)
        let reference = single.sai_lists(&db, &configs);
        assert_eq!(
            single.sai_windows(&db, &base, &WindowAxis::each(&windows)),
            reference,
            "sweep diverged from per-window lists at {size} posts"
        );
        assert_eq!(
            sharded.sai_windows(&db, &base, &WindowAxis::each(&windows)),
            reference,
            "sharded sweep diverged from per-window lists at {size} posts"
        );
        if size <= 10_000 {
            let live = LiveEngine::new(corpus.clone());
            assert_eq!(
                live.sai_windows(&db, &base, &WindowAxis::each(&windows)),
                reference,
                "live sweep diverged from per-window lists at {size} posts"
            );
        }

        let mut group = c.benchmark_group("engine_sweep");
        group
            .sample_size(3)
            .measurement_time(Duration::from_secs(10));
        group.bench_function(&format!("window_sweep_lists/{size}"), |b| {
            b.iter(|| black_box(single.sai_lists(&db, &configs)))
        });
        group.bench_function(&format!("window_sweep_plan/{size}"), |b| {
            b.iter(|| black_box(single.sai_windows(&db, &base, &WindowAxis::each(&windows))))
        });
        group.bench_function(&format!("window_sweep_sharded_plan/{size}"), |b| {
            b.iter(|| black_box(sharded.sai_windows(&db, &base, &WindowAxis::each(&windows))))
        });
        group.finish();
    }

    write_report(c, &sizes);
}

criterion_group!(benches, bench);
criterion_main!(benches);
