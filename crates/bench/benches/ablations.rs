//! Ablation benches for the design choices called out in DESIGN.md: SAI weight
//! presets, keyword learning on/off, rank-based vs proportional weight mapping and
//! the poisoning filter.

use criterion::{criterion_group, criterion_main, Criterion};
use psp::config::{PspConfig, SaiWeights};
use psp::engine::{ScoringEngine, WindowAxis};
use psp::keyword_db::KeywordDatabase;
use psp::weights::{WeightGenerator, WeightMapping};
use psp::workflow::PspWorkflow;
use psp_bench::{passenger_corpus, passenger_sai};
use socialsim::poisoning::BotCampaign;
use socialsim::post::{Region, TargetApplication};
use socialsim::time::DateWindow;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let corpus = passenger_corpus();
    let db = KeywordDatabase::passenger_car_seed();

    let mut group = c.benchmark_group("ablations");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(20));

    // SAI weight presets, each swept over the yearly windows of the scene
    // through the sweep entry point.  Weights are applied at sweep time, so
    // all three presets resolve against one cached plan on the warm engine —
    // the ablation isolates the weight formula, not plan rebuilds.
    let engine = ScoringEngine::new(&corpus);
    let windows: Vec<DateWindow> = (2015..=2023).map(|y| DateWindow::years(y, y)).collect();
    for (label, weights) in [
        ("sai_sweep_default_weights", SaiWeights::default()),
        ("sai_sweep_views_only", SaiWeights::views_only()),
        (
            "sai_sweep_interactions_only",
            SaiWeights::interactions_only(),
        ),
    ] {
        let config = PspConfig::passenger_car_europe().with_weights(weights);
        // Sanity before timing: the swept preset matches per-window scoring.
        let per_window: Vec<PspConfig> = windows
            .iter()
            .map(|w| config.clone().with_window(*w))
            .collect();
        assert_eq!(
            engine.sai_windows(&db, &config, &WindowAxis::each(&windows)),
            engine.sai_lists(&db, &per_window),
            "{label} sweep diverged from per-window lists"
        );
        group.bench_function(label, |b| {
            b.iter(|| black_box(engine.sai_windows(&db, &config, &WindowAxis::each(&windows))))
        });
    }

    // Weight-mapping variants (pure table generation, cheap).
    let sai = passenger_sai(None);
    for (label, mapping) in [
        ("mapping_rank_based", WeightMapping::RankBased),
        ("mapping_proportional", WeightMapping::Proportional),
    ] {
        group.bench_function(label, |b| {
            let generator = WeightGenerator::with_mapping(mapping);
            b.iter(|| black_box(generator.insider_table(&sai, "ecm-reprogramming")))
        });
    }

    // Poisoning filter on/off against a poisoned corpus.
    let mut poisoned = corpus.clone();
    BotCampaign::new("chiptuning", 1_000, 2023)
        .targeting(Region::Europe, TargetApplication::PassengerCar)
        .inject(&mut poisoned, 7);
    group.bench_function("poisoned_workflow_no_filter", |b| {
        b.iter(|| {
            black_box(
                PspWorkflow::new(PspConfig::passenger_car_europe(), db.clone()).run(&poisoned),
            )
        })
    });
    group.bench_function("poisoned_workflow_with_filter", |b| {
        b.iter(|| {
            black_box(
                PspWorkflow::new(
                    PspConfig::passenger_car_europe().with_poisoning_filter(0.25),
                    db.clone(),
                )
                .run(&poisoned),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
