//! E4 / Figure 4 — reachability analysis over the reference architectures.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vehicle::reachability::ReachabilityAnalysis;
use vehicle::reference::{excavator, light_truck, passenger_car};

fn bench(c: &mut Criterion) {
    for (name, topology) in [
        ("passenger_car", passenger_car()),
        ("light_truck", light_truck()),
        ("excavator", excavator()),
    ] {
        c.bench_function(&format!("fig4/analyze_{name}"), |b| {
            b.iter(|| black_box(ReachabilityAnalysis::analyze(&topology)))
        });
    }

    let car = passenger_car();
    let analysis = ReachabilityAnalysis::analyze(&car);
    c.bench_function("fig4/group_by_dominant_range", |b| {
        b.iter(|| black_box(analysis.grouped_by_dominant_range(0)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
