//! E11 / Figure 11 — break-even curves over a sweep of fixed costs, margins and
//! competitor counts.

use criterion::{criterion_group, criterion_main, Criterion};
use market::bep::BreakEvenAnalysis;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("fig11/single_curve_201_points", |b| {
        let analysis = BreakEvenAnalysis::new(145_286.0, 360.0, 50.0, 3);
        b.iter(|| black_box(analysis.curve(3_000.0, 201)))
    });

    c.bench_function("fig11/parameter_sweep", |b| {
        b.iter(|| {
            let mut profitable = 0usize;
            for fc in [10_000.0, 50_000.0, 145_286.0, 500_000.0] {
                for margin in [50.0, 150.0, 310.0, 600.0] {
                    for n in [1u32, 2, 3, 5] {
                        let analysis = BreakEvenAnalysis::new(fc, margin + 50.0, 50.0, n);
                        if analysis.is_profitable_at(black_box(1_406.0)) {
                            profitable += 1;
                        }
                    }
                }
            }
            black_box(profitable)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
