//! E1 / Figure 1 — building and querying the standards-contribution graph.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vehicle::standards_graph::{RelationshipStrength, StandardsGraph};

fn bench(c: &mut Criterion) {
    c.bench_function("fig1/build_paper_graph", |b| {
        b.iter(|| black_box(StandardsGraph::paper_figure_1()))
    });

    let graph = StandardsGraph::paper_figure_1();
    c.bench_function("fig1/query_strong_contributors", |b| {
        b.iter(|| black_box(graph.contributors_with(RelationshipStrength::Strong)))
    });
    c.bench_function("fig1/non_automotive_fraction", |b| {
        b.iter(|| black_box(graph.non_automotive_fraction()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
