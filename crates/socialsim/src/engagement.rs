//! Post engagement metrics.
//!
//! The PSP SAI computation "elaborates on the number of views, interactions, and
//! popularity of the identified posts"; these are the metrics a search endpoint
//! returns per post.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Engagement counters of one post.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Engagement {
    /// Number of views / impressions.
    pub views: u64,
    /// Number of likes.
    pub likes: u64,
    /// Number of replies.
    pub replies: u64,
    /// Number of reposts / retweets.
    pub reposts: u64,
}

impl Engagement {
    /// Creates an engagement record.
    #[must_use]
    pub fn new(views: u64, likes: u64, replies: u64, reposts: u64) -> Self {
        Self {
            views,
            likes,
            replies,
            reposts,
        }
    }

    /// Total active interactions (likes + replies + reposts).
    #[must_use]
    pub fn interactions(&self) -> u64 {
        self.likes + self.replies + self.reposts
    }

    /// Interaction rate: interactions per view (0 when the post has no views).
    #[must_use]
    pub fn interaction_rate(&self) -> f64 {
        if self.views == 0 {
            0.0
        } else {
            self.interactions() as f64 / self.views as f64
        }
    }

    /// A single popularity score: views weighted lightly, interactions heavily
    /// (an interaction signals far stronger intent than a passive impression).
    #[must_use]
    pub fn popularity(&self) -> f64 {
        self.views as f64 * 0.01 + self.interactions() as f64
    }

    /// Element-wise sum of two engagement records.
    #[must_use]
    pub fn combined(&self, other: &Engagement) -> Engagement {
        Engagement {
            views: self.views + other.views,
            likes: self.likes + other.likes,
            replies: self.replies + other.replies,
            reposts: self.reposts + other.reposts,
        }
    }
}

impl fmt::Display for Engagement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} views / {} interactions",
            self.views,
            self.interactions()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interactions_sum_active_signals() {
        let e = Engagement::new(1_000, 40, 10, 5);
        assert_eq!(e.interactions(), 55);
    }

    #[test]
    fn interaction_rate_handles_zero_views() {
        assert_eq!(Engagement::new(0, 5, 5, 5).interaction_rate(), 0.0);
        let e = Engagement::new(200, 10, 0, 0);
        assert!((e.interaction_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn popularity_weights_interactions_more_than_views() {
        let viewed = Engagement::new(10_000, 0, 0, 0);
        let engaged = Engagement::new(1_000, 150, 30, 20);
        assert!(engaged.popularity() > viewed.popularity());
    }

    #[test]
    fn combined_adds_elementwise() {
        let a = Engagement::new(10, 1, 2, 3);
        let b = Engagement::new(20, 4, 5, 6);
        let c = a.combined(&b);
        assert_eq!(c, Engagement::new(30, 5, 7, 9));
    }

    #[test]
    fn default_is_all_zero() {
        let e = Engagement::default();
        assert_eq!(e.views, 0);
        assert_eq!(e.popularity(), 0.0);
    }

    #[test]
    fn display_mentions_views() {
        assert!(Engagement::new(7, 1, 0, 0).to_string().contains("7 views"));
    }
}
