//! The search-endpoint-shaped query type.
//!
//! A [`Query`] mirrors the search dimensions the paper's PSP prototype sends to the
//! Twitter API: free-text keywords, hashtags, region, target application and a time
//! window (the lever behind Figure 9-B vs 9-C).

use crate::hashtag::Hashtag;
use crate::post::{Post, Region, TargetApplication};
use crate::time::DateWindow;
use serde::{Deserialize, Serialize};

/// A corpus search query.  All constraints are conjunctive; keyword and hashtag
/// lists are disjunctive within themselves ("any of these keywords").
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Query {
    keywords: Vec<String>,
    hashtags: Vec<Hashtag>,
    region: Option<Region>,
    application: Option<TargetApplication>,
    window: Option<DateWindow>,
}

impl Query {
    /// Creates an unconstrained query (matches every post).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a free-text keyword (matched case-insensitively against text and tags).
    #[must_use]
    pub fn with_keyword(mut self, keyword: impl Into<String>) -> Self {
        self.keywords.push(keyword.into());
        self
    }

    /// Adds a hashtag constraint.
    #[must_use]
    pub fn with_hashtag(mut self, tag: impl Into<Hashtag>) -> Self {
        self.hashtags.push(tag.into());
        self
    }

    /// Restricts to a region.
    #[must_use]
    pub fn in_region(mut self, region: Region) -> Self {
        self.region = Some(region);
        self
    }

    /// Restricts to a target application.
    #[must_use]
    pub fn about(mut self, application: TargetApplication) -> Self {
        self.application = Some(application);
        self
    }

    /// Restricts to a date window.
    #[must_use]
    pub fn within(mut self, window: DateWindow) -> Self {
        self.window = Some(window);
        self
    }

    /// The keyword list.
    #[must_use]
    pub fn keywords(&self) -> &[String] {
        &self.keywords
    }

    /// The hashtag list.
    #[must_use]
    pub fn hashtags(&self) -> &[Hashtag] {
        &self.hashtags
    }

    /// The region constraint.
    #[must_use]
    pub fn region(&self) -> Option<Region> {
        self.region
    }

    /// The application constraint.
    #[must_use]
    pub fn application(&self) -> Option<TargetApplication> {
        self.application
    }

    /// The time-window constraint.
    #[must_use]
    pub fn window(&self) -> Option<DateWindow> {
        self.window
    }

    /// Whether a post matches the query.
    #[must_use]
    pub fn matches(&self, post: &Post) -> bool {
        if let Some(region) = self.region {
            if post.region() != region {
                return false;
            }
        }
        if let Some(application) = self.application {
            if post.application() != application {
                return false;
            }
        }
        if let Some(window) = self.window {
            if !window.contains(post.date()) {
                return false;
            }
        }
        let keyword_hit =
            self.keywords.is_empty() || self.keywords.iter().any(|k| post.mentions(k));
        let hashtag_hit =
            self.hashtags.is_empty() || self.hashtags.iter().any(|h| post.has_hashtag(h));
        // If both keyword and hashtag constraints are present, either may satisfy
        // the content condition (that is how search terms behave on the platform).
        if self.keywords.is_empty() && self.hashtags.is_empty() {
            true
        } else if self.keywords.is_empty() {
            hashtag_hit
        } else if self.hashtags.is_empty() {
            keyword_hit
        } else {
            keyword_hit || hashtag_hit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engagement::Engagement;
    use crate::time::SimDate;
    use crate::user::User;

    fn post(text: &str, year: i32, region: Region, app: TargetApplication) -> Post {
        Post::new(
            0,
            User::new("u", 10, 10),
            text,
            vec![],
            SimDate::new(year, 6, 1),
            region,
            app,
            Engagement::default(),
        )
    }

    #[test]
    fn empty_query_matches_everything() {
        let q = Query::new();
        assert!(q.matches(&post(
            "anything",
            2020,
            Region::Europe,
            TargetApplication::Excavator
        )));
    }

    #[test]
    fn keyword_filtering() {
        let q = Query::new().with_keyword("dpf");
        assert!(q.matches(&post(
            "my #dpfdelete story",
            2021,
            Region::Europe,
            TargetApplication::Excavator
        )));
        assert!(!q.matches(&post(
            "nice tractor",
            2021,
            Region::Europe,
            TargetApplication::Excavator
        )));
    }

    #[test]
    fn region_and_application_are_conjunctive() {
        let q = Query::new()
            .in_region(Region::Europe)
            .about(TargetApplication::Excavator);
        assert!(q.matches(&post(
            "x",
            2021,
            Region::Europe,
            TargetApplication::Excavator
        )));
        assert!(!q.matches(&post(
            "x",
            2021,
            Region::NorthAmerica,
            TargetApplication::Excavator
        )));
        assert!(!q.matches(&post(
            "x",
            2021,
            Region::Europe,
            TargetApplication::PassengerCar
        )));
    }

    #[test]
    fn window_filters_by_date() {
        let q = Query::new().within(DateWindow::years(2021, 2023));
        assert!(q.matches(&post(
            "x",
            2022,
            Region::Europe,
            TargetApplication::Excavator
        )));
        assert!(!q.matches(&post(
            "x",
            2019,
            Region::Europe,
            TargetApplication::Excavator
        )));
    }

    #[test]
    fn hashtag_or_keyword_satisfies_content_condition() {
        let q = Query::new()
            .with_keyword("adblue")
            .with_hashtag("#dpfdelete");
        assert!(q.matches(&post(
            "check my #dpfdelete",
            2021,
            Region::Europe,
            TargetApplication::Excavator
        )));
        assert!(q.matches(&post(
            "adblue emulator installed",
            2021,
            Region::Europe,
            TargetApplication::Excavator
        )));
        assert!(!q.matches(&post(
            "stock machine",
            2021,
            Region::Europe,
            TargetApplication::Excavator
        )));
    }

    #[test]
    fn accessors_expose_constraints() {
        let q = Query::new()
            .with_keyword("egr")
            .with_hashtag("#egroff")
            .in_region(Region::Europe)
            .about(TargetApplication::Agriculture)
            .within(DateWindow::years(2020, 2022));
        assert_eq!(q.keywords().len(), 1);
        assert_eq!(q.hashtags().len(), 1);
        assert_eq!(q.region(), Some(Region::Europe));
        assert_eq!(q.application(), Some(TargetApplication::Agriculture));
        assert!(q.window().is_some());
    }
}
