//! The inverted corpus index and its batch query API.
//!
//! [`Corpus::search`] answers a [`Query`] with a linear scan over every post —
//! fine for one query, ruinous for the PSP hot path, which re-queries the same
//! corpus once per attack keyword (and once per analysis window in monitoring
//! runs).  [`CorpusIndex`] is built once per corpus and answers the same
//! queries from inverted structures:
//!
//! * a *mention vocabulary* — every lowercase whitespace token of each post's
//!   text plus each of its normalised hashtags, mapped to the posts containing
//!   it.  Because a keyword match (`Post::mentions`) is a case-insensitive
//!   substring test and keywords never contain whitespace, a post mentions a
//!   keyword exactly when one of its vocabulary terms contains the keyword as a
//!   substring, so scanning the (small) vocabulary replaces scanning the
//!   (large) corpus;
//! * an exact hashtag posting list for [`Query::hashtags`] constraints;
//! * per-[`Region`] and per-[`TargetApplication`] bitsets and a per-post date
//!   array for the conjunctive metadata filters.
//!
//! Results are always produced in ascending post order (= insertion order), so
//! indexed queries return exactly what the naive scan returns, in the same
//! order — a property the `psp-suite` property tests pin down.
//!
//! The index is built once per corpus ([`CorpusIndex::build`]) and then kept
//! live under streaming ingestion: [`CorpusIndex::append`] extends every
//! inverted structure in place as posts are appended to the corpus, in
//! amortised O(new posts), without rescanning or re-answering anything already
//! indexed.

use crate::corpus::Corpus;
use crate::hashtag::Hashtag;
use crate::post::{Post, Region, TargetApplication};
use crate::query::Query;
use crate::time::{DateWindow, SimDate};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// How a corpus is partitioned into independently indexed shards.
///
/// A sharded engine holds one [`CorpusIndex`] per shard and scores shards in
/// parallel; the spec decides which shard every post belongs to.  The routing
/// is a pure function of the post alone — never of arrival order or of which
/// shards already exist — so partitioning a finished corpus in one pass and
/// routing the same posts one batch at a time produce identical shard layouts
/// (the shard-then-ingest == ingest-then-shard property the `psp-suite` tests
/// pin down).
///
/// Choosing an axis:
///
/// * **time** ([`ShardSpec::ByTimeYears`]) when the workload sweeps analysis
///   windows (monitoring, Figure-9 comparisons): a windowed query can only
///   match shards whose year span overlaps the window, so every other shard is
///   pruned without touching its index;
/// * **region** ([`ShardSpec::ByRegion`]) when corpora arrive per market and
///   queries filter on one region: only the matching region's shard is scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardSpec {
    /// One shard per span of `n` consecutive calendar years (clamped to at
    /// least 1).  Buckets are aligned to year 0 (`year.div_euclid(n)`), so the
    /// layout does not depend on which posts have been seen: a 2024 post lands
    /// in the same shard whether it arrives first, last, or alone.
    ByTimeYears(i32),
    /// One shard per [`Region`] present in the corpus.
    ByRegion,
}

impl ShardSpec {
    /// Sharding by single calendar years.
    #[must_use]
    pub fn yearly() -> Self {
        ShardSpec::ByTimeYears(1)
    }

    /// The years-per-shard span (clamped to at least 1); 1 for region shards.
    fn span(self) -> i32 {
        match self {
            ShardSpec::ByTimeYears(n) => n.max(1),
            ShardSpec::ByRegion => 1,
        }
    }

    /// The shard key a post routes to — deterministic from the post alone.
    #[must_use]
    pub fn key_for(&self, post: &Post) -> ShardKey {
        match self {
            ShardSpec::ByTimeYears(_) => {
                let span = self.span();
                let from = post.date().year().div_euclid(span) * span;
                ShardKey::Years {
                    from,
                    to: from + span - 1,
                }
            }
            ShardSpec::ByRegion => ShardKey::Region(post.region()),
        }
    }

    /// Partitions a corpus into shards: keys in ascending order with, per
    /// shard, the ids of the posts routed to it, ascending.  Every post lands
    /// in exactly one shard (the partition is lossless); buckets with no posts
    /// do not appear.
    #[must_use]
    pub fn partition(&self, corpus: &Corpus) -> Vec<(ShardKey, Vec<u32>)> {
        let mut by_key: BTreeMap<ShardKey, Vec<u32>> = BTreeMap::new();
        for (id, post) in corpus.posts().iter().enumerate() {
            by_key
                .entry(self.key_for(post))
                .or_default()
                .push(id as u32);
        }
        by_key.into_iter().collect()
    }
}

/// The identity of one shard under a [`ShardSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ShardKey {
    /// All posts dated within the inclusive calendar-year span `from..=to`.
    Years {
        /// First year of the span (inclusive).
        from: i32,
        /// Last year of the span (inclusive).
        to: i32,
    },
    /// All posts from one region.
    Region(Region),
}

impl ShardKey {
    /// Whether any post carrying this key can satisfy the given metadata
    /// filters.  `false` is a proof that *no* post in the shard matches — the
    /// scoring fan-out prunes the shard without touching its index; `true` is
    /// merely conservative (the shard is scored normally).
    ///
    /// A time key prunes on the window (a shard of 2018-2019 posts cannot
    /// satisfy a 2021+ window); a region key prunes on the region filter.
    /// Each axis ignores the other filter — that one is applied post-by-post
    /// inside the shard, exactly as the unsharded path does.
    #[must_use]
    pub fn may_match(&self, region: Option<Region>, window: Option<&DateWindow>) -> bool {
        match self {
            ShardKey::Years { from, to } => {
                window.is_none_or(|w| w.from.year() <= *to && w.to.year() >= *from)
            }
            ShardKey::Region(shard_region) => region.is_none_or(|filter| filter == *shard_region),
        }
    }
}

impl fmt::Display for ShardKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardKey::Years { from, to } if from == to => write!(f, "{from}"),
            ShardKey::Years { from, to } => write!(f, "{from}-{to}"),
            ShardKey::Region(region) => write!(f, "{region}"),
        }
    }
}

/// A fixed-capacity bitset over post ids.
#[derive(Debug, Clone, Default)]
struct IdBitSet {
    bits: Vec<u64>,
}

impl IdBitSet {
    fn with_capacity(posts: usize) -> Self {
        Self {
            bits: vec![0; posts.div_ceil(64)],
        }
    }

    /// Sets a bit, growing the backing storage when the id lies beyond the
    /// capacity the set was created with (append-path inserts do this).
    fn insert(&mut self, id: u32) {
        let word = id as usize / 64;
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        self.bits[word] |= 1 << (id % 64);
    }

    fn contains(&self, id: u32) -> bool {
        self.bits
            .get(id as usize / 64)
            .is_some_and(|word| word & (1 << (id % 64)) != 0)
    }
}

/// An inverted index over a [`Corpus`] snapshot.
///
/// The index holds post *ids* (positions in [`Corpus::posts`]), not post data,
/// so it stays valid as long as the corpus it was built from is only ever
/// *appended to*.  Build it once, answer any number of queries against it, and
/// extend it in place with [`CorpusIndex::append`] as new posts stream in —
/// appending is amortised O(new posts) and never rescans the existing corpus.
#[derive(Debug, Clone, Default)]
pub struct CorpusIndex {
    /// Mention term → ascending ids of posts whose text/hashtags contain it.
    vocab: HashMap<String, Vec<u32>>,
    /// Exact hashtag → ascending ids of posts carrying it.
    by_hashtag: HashMap<Hashtag, Vec<u32>>,
    /// One membership bitset per region present in the corpus.
    by_region: HashMap<Region, IdBitSet>,
    /// One membership bitset per target application present in the corpus.
    by_application: HashMap<TargetApplication, IdBitSet>,
    /// Posting date per post id, for window filtering.
    dates: Vec<SimDate>,
}

impl CorpusIndex {
    /// Builds the index in one pass over the corpus.
    #[must_use]
    pub fn build(corpus: &Corpus) -> Self {
        let mut index = Self {
            vocab: HashMap::new(),
            by_hashtag: HashMap::new(),
            by_region: HashMap::new(),
            by_application: HashMap::new(),
            dates: Vec::with_capacity(corpus.posts().len()),
        };
        index.index_from(corpus, 0);
        index
    }

    /// Extends the index in place with the posts appended to `corpus` since the
    /// index last covered it.
    ///
    /// `new_posts` is the number of trailing posts that are new; the corpus must
    /// be exactly the snapshot this index covers plus those posts (posts are
    /// append-only and immutable, so every previously indexed structure stays
    /// valid as-is).
    ///
    /// # Contract
    ///
    /// * **Bit-exactness** — after `append`, every query answer is identical to
    ///   what a from-scratch [`CorpusIndex::build`] over the grown corpus would
    ///   produce: new post ids are larger than every indexed id, so posting
    ///   lists stay strictly ascending and both paths run the exact same
    ///   per-post indexing code (`index_from`).  The `psp-suite` property tests
    ///   pin this down.
    /// * **Complexity** — amortised `O(new_posts)` (times per-post text length);
    ///   the previously indexed posts are never rescanned.
    ///
    /// # Panics
    ///
    /// Panics when `corpus.posts().len() != self.post_count() + new_posts` —
    /// the corpus diverged from the indexed snapshot (posts were removed,
    /// reordered, or the count is simply wrong).
    pub fn append(&mut self, corpus: &Corpus, new_posts: usize) {
        let indexed = self.post_count();
        assert_eq!(
            corpus.posts().len(),
            indexed + new_posts,
            "CorpusIndex::append: index covers {indexed} posts and {new_posts} are claimed new, \
             but the corpus holds {} posts",
            corpus.posts().len()
        );
        self.index_from(corpus, indexed);
    }

    /// Indexes `corpus.posts()[from..]`, the shared core of [`build`](Self::build)
    /// and [`append`](Self::append).  Ids are assigned by corpus position, so
    /// indexing a suffix later is indistinguishable from having indexed it in
    /// the original pass.
    fn index_from(&mut self, corpus: &Corpus, from: usize) {
        let posts = corpus.posts();
        let capacity = posts.len();
        self.dates.reserve(capacity - from);
        for (id, post) in posts.iter().enumerate().skip(from) {
            let id = id as u32;
            self.dates.push(post.date());
            self.by_region
                .entry(post.region())
                .or_insert_with(|| IdBitSet::with_capacity(capacity))
                .insert(id);
            self.by_application
                .entry(post.application())
                .or_insert_with(|| IdBitSet::with_capacity(capacity))
                .insert(id);
            for tag in post.hashtags() {
                // Allocate the owned key only when the tag is new to the index.
                match self.by_hashtag.get_mut(tag) {
                    Some(ids) => ids.push(id),
                    None => {
                        self.by_hashtag.insert(tag.clone(), vec![id]);
                    }
                }
            }
            // The mention vocabulary: lowercase text tokens plus hashtag strings,
            // deduplicated per post so each posting list stays strictly ascending.
            let lowered = post.text().to_lowercase();
            let mut terms: Vec<&str> = Vec::with_capacity(16);
            for token in lowered.split_whitespace() {
                if !terms.contains(&token) {
                    terms.push(token);
                }
            }
            for tag in post.hashtags() {
                if !terms.contains(&tag.as_str()) {
                    terms.push(tag.as_str());
                }
            }
            for term in &terms {
                match self.vocab.get_mut(*term) {
                    Some(ids) => ids.push(id),
                    None => {
                        self.vocab.insert((*term).to_string(), vec![id]);
                    }
                }
            }
        }
    }

    /// Number of posts covered by the index.
    #[must_use]
    pub fn post_count(&self) -> usize {
        self.dates.len()
    }

    /// Number of distinct mention terms in the vocabulary.
    #[must_use]
    pub fn vocabulary_size(&self) -> usize {
        self.vocab.len()
    }

    /// Ids of posts that mention `keyword`, ascending — the indexed equivalent
    /// of filtering with [`Post::mentions`].
    #[must_use]
    pub fn mentioning(&self, corpus: &Corpus, keyword: &str) -> Vec<u32> {
        let mut ids = Vec::new();
        self.collect_mentions(corpus, keyword, &mut ids);
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    fn collect_mentions(&self, corpus: &Corpus, keyword: &str, out: &mut Vec<u32>) {
        let needle = keyword.to_lowercase();
        if needle.is_empty() {
            return;
        }
        if needle.chars().any(char::is_whitespace) {
            // A whitespace-bearing keyword can span token boundaries; the
            // vocabulary cannot answer it, so fall back to the exact scan.
            for (id, post) in corpus.posts().iter().enumerate() {
                if post.mentions(keyword) {
                    out.push(id as u32);
                }
            }
            return;
        }
        for (term, ids) in &self.vocab {
            if term.contains(&needle) {
                out.extend_from_slice(ids);
            }
        }
    }

    /// Ids of posts carrying the exact hashtag, ascending.
    #[must_use]
    pub fn with_hashtag(&self, tag: &Hashtag) -> &[u32] {
        self.by_hashtag.get(tag).map_or(&[], Vec::as_slice)
    }

    /// Whether post `id` satisfies the query's region / application / window
    /// constraints (the content condition is not checked).
    #[must_use]
    pub fn matches_metadata(&self, id: u32, query: &Query) -> bool {
        self.matches_scene(id, query) && self.in_window(id, query.window())
    }

    /// Whether post `id` satisfies the query's *scene* constraints — region
    /// and target application, the metadata that does not depend on the
    /// analysis window.  Batch callers sweeping many windows over otherwise
    /// identical configurations check the scene once per candidate and
    /// re-apply only [`in_window`](Self::in_window) per window.
    #[must_use]
    pub fn matches_scene(&self, id: u32, query: &Query) -> bool {
        if let Some(region) = query.region() {
            if !self
                .by_region
                .get(&region)
                .is_some_and(|set| set.contains(id))
            {
                return false;
            }
        }
        if let Some(application) = query.application() {
            if !self
                .by_application
                .get(&application)
                .is_some_and(|set| set.contains(id))
            {
                return false;
            }
        }
        true
    }

    /// Whether post `id`'s date falls inside the window (`None` = full
    /// history) — the only per-window half of the metadata predicate.
    #[must_use]
    pub fn in_window(&self, id: u32, window: Option<DateWindow>) -> bool {
        window.is_none_or(|w| w.contains(self.dates[id as usize]))
    }

    /// The posting date of post `id`, from the index's own date column.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not covered by the index.
    #[must_use]
    pub fn date_of(&self, id: u32) -> SimDate {
        self.dates[id as usize]
    }

    /// Ids of posts satisfying the query's *content* condition (keywords OR
    /// hashtags), ascending; every post when the query has no content
    /// constraints.  Content candidates are independent of the region /
    /// application / window constraints, so batch callers sweeping many
    /// windows can resolve them once per keyword set and re-apply
    /// [`matches_metadata`](Self::matches_metadata) per window.
    #[must_use]
    pub fn content_candidates(&self, corpus: &Corpus, query: &Query) -> Vec<u32> {
        if query.keywords().is_empty() && query.hashtags().is_empty() {
            return (0..self.dates.len() as u32).collect();
        }
        // Keyword and hashtag constraints are disjunctive with each other
        // (see `Query::matches`), so the candidate set is the union.
        let mut ids = Vec::new();
        for keyword in query.keywords() {
            self.collect_mentions(corpus, keyword, &mut ids);
        }
        for tag in query.hashtags() {
            ids.extend_from_slice(self.with_hashtag(tag));
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Ids of posts matching the query, ascending.  Produces exactly the posts
    /// the naive [`Corpus::search`] scan returns, in the same order.
    #[must_use]
    pub fn query(&self, corpus: &Corpus, query: &Query) -> Vec<u32> {
        self.content_candidates(corpus, query)
            .into_iter()
            .filter(|id| self.matches_metadata(*id, query))
            .collect()
    }

    /// Answers a batch of queries against the same index in one call — a
    /// convenience for callers holding a prepared query set.  (The PSP scoring
    /// engine uses the finer-grained [`content_candidates`](Self::content_candidates)
    /// / [`matches_metadata`](Self::matches_metadata) split instead, so it can
    /// reuse one candidate set across many windows.)
    #[must_use]
    pub fn query_many(&self, corpus: &Corpus, queries: &[Query]) -> Vec<Vec<u32>> {
        queries.iter().map(|q| self.query(corpus, q)).collect()
    }

    /// Posts matching the query, borrowed from the corpus in ascending order.
    #[must_use]
    pub fn matching_posts<'a>(&self, corpus: &'a Corpus, query: &Query) -> Vec<&'a Post> {
        self.query(corpus, query)
            .into_iter()
            .map(|id| &corpus.posts()[id as usize])
            .collect()
    }
}

impl Corpus {
    /// Builds a [`CorpusIndex`] over the current posts.  After appending more
    /// posts, extend the index in place with [`CorpusIndex::append`] instead of
    /// rebuilding it.
    #[must_use]
    pub fn build_index(&self) -> CorpusIndex {
        CorpusIndex::build(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engagement::Engagement;
    use crate::scenario;
    use crate::time::DateWindow;
    use crate::user::User;

    fn post(id: u64, text: &str, year: i32, region: Region, app: TargetApplication) -> Post {
        Post::new(
            id,
            User::new("u", 50, 12),
            text,
            vec![],
            SimDate::new(year, 6, 15),
            region,
            app,
            Engagement::new(100, 5, 1, 1),
        )
    }

    fn sample() -> Corpus {
        Corpus::from_posts(vec![
            post(
                1,
                "got my #dpfdelete done",
                2019,
                Region::Europe,
                TargetApplication::Excavator,
            ),
            post(
                2,
                "#dpfdelete kit 360 EUR",
                2021,
                Region::Europe,
                TargetApplication::Excavator,
            ),
            post(
                3,
                "#egrdelete how-to",
                2020,
                Region::NorthAmerica,
                TargetApplication::Excavator,
            ),
            post(
                4,
                "stock machine is fine",
                2022,
                Region::Europe,
                TargetApplication::PassengerCar,
            ),
        ])
    }

    fn ids(posts: &[&Post]) -> Vec<u64> {
        posts.iter().map(|p| p.id()).collect()
    }

    #[test]
    fn indexed_query_matches_naive_scan() {
        let corpus = sample();
        let index = corpus.build_index();
        let queries = [
            Query::new(),
            Query::new().with_keyword("dpf"),
            Query::new()
                .with_keyword("dpfdelete")
                .with_hashtag("#egrdelete"),
            Query::new().in_region(Region::Europe),
            Query::new()
                .with_keyword("kit")
                .about(TargetApplication::Excavator),
            Query::new().within(DateWindow::years(2020, 2021)),
            Query::new().with_keyword("zzz-no-such"),
        ];
        for query in &queries {
            let naive = ids(&corpus.search(query));
            let indexed = ids(&index.matching_posts(&corpus, query));
            assert_eq!(naive, indexed, "query {query:?}");
        }
    }

    #[test]
    fn batch_api_answers_all_queries() {
        let corpus = sample();
        let index = corpus.build_index();
        let queries = vec![
            Query::new().with_keyword("dpf"),
            Query::new().with_keyword("egr"),
        ];
        let results = index.query_many(&corpus, &queries);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].len(), 2);
        assert_eq!(results[1].len(), 1);
    }

    #[test]
    fn substring_keywords_hit_tokens_and_hashtags() {
        let corpus = sample();
        let index = corpus.build_index();
        // "dpf" is a substring of the token/hashtag "dpfdelete".
        assert_eq!(index.mentioning(&corpus, "dpf"), vec![0, 1]);
        // Case-insensitive like Post::mentions.
        assert_eq!(index.mentioning(&corpus, "DPF"), vec![0, 1]);
        assert!(index.mentioning(&corpus, "").is_empty());
    }

    #[test]
    fn whitespace_keywords_fall_back_to_the_scan() {
        let corpus = sample();
        let index = corpus.build_index();
        let naive: Vec<u32> = corpus
            .posts()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.mentions("machine is"))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(index.mentioning(&corpus, "machine is"), naive);
        assert_eq!(naive, vec![3]);
    }

    #[test]
    fn metadata_bitsets_filter_correctly() {
        let corpus = sample();
        let index = corpus.build_index();
        let europe = index.query(&corpus, &Query::new().in_region(Region::Europe));
        assert_eq!(europe, vec![0, 1, 3]);
        let excavator = index.query(
            &corpus,
            &Query::new()
                .about(TargetApplication::Excavator)
                .in_region(Region::Europe),
        );
        assert_eq!(excavator, vec![0, 1]);
        let windowed = index.query(&corpus, &Query::new().within(DateWindow::years(2021, 2022)));
        assert_eq!(windowed, vec![1, 3]);
    }

    #[test]
    fn metadata_split_agrees_with_the_combined_predicate() {
        let corpus = sample();
        let index = corpus.build_index();
        let queries = [
            Query::new(),
            Query::new().in_region(Region::Europe),
            Query::new().about(TargetApplication::Excavator),
            Query::new().within(DateWindow::years(2020, 2021)),
            Query::new()
                .in_region(Region::Europe)
                .about(TargetApplication::Excavator)
                .within(DateWindow::years(2019, 2021)),
        ];
        for query in &queries {
            for id in 0..corpus.len() as u32 {
                assert_eq!(
                    index.matches_metadata(id, query),
                    index.matches_scene(id, query) && index.in_window(id, query.window()),
                    "post {id}, query {query:?}"
                );
            }
        }
    }

    #[test]
    fn date_column_mirrors_the_posts() {
        let corpus = sample();
        let index = corpus.build_index();
        for (id, post) in corpus.posts().iter().enumerate() {
            assert_eq!(index.date_of(id as u32), post.date());
        }
        // A missing window constraint admits every date.
        assert!(index.in_window(0, None));
    }

    #[test]
    fn agrees_with_naive_scan_on_a_generated_scene() {
        let corpus = scenario::passenger_car_europe(42);
        let index = corpus.build_index();
        for keyword in ["chiptuning", "benchflash", "dpf", "relay", "nope"] {
            let query = Query::new()
                .with_keyword(keyword)
                .with_hashtag(keyword)
                .in_region(Region::Europe)
                .about(TargetApplication::PassengerCar);
            assert_eq!(
                ids(&corpus.search(&query)),
                ids(&index.matching_posts(&corpus, &query)),
                "keyword {keyword}"
            );
        }
    }

    #[test]
    fn empty_corpus_index_is_empty() {
        let corpus = Corpus::new();
        let index = corpus.build_index();
        assert_eq!(index.post_count(), 0);
        assert_eq!(index.vocabulary_size(), 0);
        assert!(index.query(&corpus, &Query::new()).is_empty());
    }

    /// The query set used to compare an appended index against a rebuilt one.
    fn probe_queries() -> Vec<Query> {
        vec![
            Query::new(),
            Query::new().with_keyword("dpf"),
            Query::new().with_keyword("immo").with_hashtag("#immooff"),
            Query::new().in_region(Region::Europe),
            Query::new().in_region(Region::SouthAmerica),
            Query::new().about(TargetApplication::Agriculture),
            Query::new().within(DateWindow::years(2018, 2021)),
            Query::new()
                .with_keyword("delete")
                .in_region(Region::Europe)
                .within(DateWindow::years(2020, 2023)),
        ]
    }

    fn assert_answers_like_rebuild(index: &CorpusIndex, corpus: &Corpus) {
        let rebuilt = corpus.build_index();
        for query in probe_queries() {
            assert_eq!(
                index.query(corpus, &query),
                rebuilt.query(corpus, &query),
                "query {query:?}"
            );
        }
    }

    #[test]
    fn append_empty_batch_is_a_noop() {
        let corpus = sample();
        let mut index = corpus.build_index();
        index.append(&corpus, 0);
        assert_eq!(index.post_count(), 4);
        assert_eq!(
            index.vocabulary_size(),
            corpus.build_index().vocabulary_size()
        );
        assert_answers_like_rebuild(&index, &corpus);
    }

    #[test]
    fn append_extends_existing_posting_lists() {
        let mut corpus = sample();
        let mut index = corpus.build_index();
        corpus.push(post(
            5,
            "another #dpfdelete story",
            2023,
            Region::Europe,
            TargetApplication::Excavator,
        ));
        index.append(&corpus, 1);
        assert_eq!(index.post_count(), 5);
        // The existing hashtag/mention lists picked up the new id.
        assert_eq!(index.with_hashtag(&Hashtag::new("dpfdelete")), &[0, 1, 4]);
        assert_eq!(index.mentioning(&corpus, "dpf"), vec![0, 1, 4]);
        assert_answers_like_rebuild(&index, &corpus);
    }

    #[test]
    fn append_introduces_new_terms_regions_and_applications() {
        let mut corpus = sample();
        let mut index = corpus.build_index();
        // Brand-new mention term, hashtag, region and application, all in one batch.
        corpus.push(post(
            6,
            "fresh #immooff bypass",
            2023,
            Region::SouthAmerica,
            TargetApplication::Agriculture,
        ));
        corpus.push(post(
            7,
            "quarry gossip only",
            2016,
            Region::SouthAmerica,
            TargetApplication::Agriculture,
        ));
        index.append(&corpus, 2);
        assert_eq!(index.mentioning(&corpus, "immooff"), vec![4]);
        assert_eq!(index.with_hashtag(&Hashtag::new("immooff")), &[4]);
        assert_eq!(
            index.query(&corpus, &Query::new().in_region(Region::SouthAmerica)),
            vec![4, 5]
        );
        assert_eq!(
            index.query(&corpus, &Query::new().about(TargetApplication::Agriculture)),
            vec![4, 5]
        );
        assert_answers_like_rebuild(&index, &corpus);
    }

    #[test]
    fn append_handles_dates_out_of_order_across_the_boundary() {
        let mut corpus = sample();
        let mut index = corpus.build_index();
        // The appended posts pre-date the indexed ones: window filtering must
        // still answer from the per-post date array, not any assumed ordering.
        corpus.push(post(
            8,
            "ancient #dpfdelete thread",
            2016,
            Region::Europe,
            TargetApplication::Excavator,
        ));
        index.append(&corpus, 1);
        assert_eq!(
            index.query(&corpus, &Query::new().within(DateWindow::years(2015, 2017))),
            vec![4]
        );
        assert_eq!(
            index.query(&corpus, &Query::new().within(DateWindow::years(2019, 2023))),
            vec![0, 1, 2, 3]
        );
        assert_answers_like_rebuild(&index, &corpus);
    }

    #[test]
    fn repeated_small_appends_equal_one_build() {
        let full = scenario::excavator_europe(11);
        let posts: Vec<Post> = full.posts().to_vec();
        let mut corpus = Corpus::new();
        let mut index = corpus.build_index();
        for chunk in posts.chunks(7) {
            for post in chunk {
                corpus.push(post.clone());
            }
            index.append(&corpus, chunk.len());
        }
        assert_eq!(index.post_count(), full.posts().len());
        assert_answers_like_rebuild(&index, &corpus);
    }

    #[test]
    fn shard_partition_is_lossless_and_ordered() {
        let corpus = sample();
        for spec in [
            ShardSpec::yearly(),
            ShardSpec::ByTimeYears(2),
            ShardSpec::ByTimeYears(100),
            ShardSpec::ByRegion,
        ] {
            let shards = spec.partition(&corpus);
            let mut seen: Vec<u32> = shards.iter().flat_map(|(_, ids)| ids.clone()).collect();
            seen.sort_unstable();
            assert_eq!(
                seen,
                vec![0, 1, 2, 3],
                "spec {spec:?} loses or duplicates posts"
            );
            for (key, ids) in &shards {
                assert!(
                    ids.windows(2).all(|w| w[0] < w[1]),
                    "ids not ascending in {key}"
                );
                for id in ids {
                    assert_eq!(spec.key_for(&corpus.posts()[*id as usize]), *key);
                }
            }
            let keys: Vec<ShardKey> = shards.iter().map(|(k, _)| *k).collect();
            let mut sorted = keys.clone();
            sorted.sort();
            assert_eq!(keys, sorted, "spec {spec:?} keys not ascending");
        }
    }

    #[test]
    fn yearly_shards_bucket_by_calendar_year() {
        let corpus = sample();
        let shards = ShardSpec::yearly().partition(&corpus);
        // sample() years: 2019, 2021, 2020, 2022 — four single-year shards.
        assert_eq!(shards.len(), 4);
        assert_eq!(
            shards[0].0,
            ShardKey::Years {
                from: 2019,
                to: 2019
            }
        );
        assert_eq!(shards[0].1, vec![0]);
        assert_eq!(shards[2].1, vec![1]);
    }

    #[test]
    fn multi_year_buckets_are_aligned_to_year_zero() {
        let spec = ShardSpec::ByTimeYears(2);
        let p = post(1, "x", 2019, Region::Europe, TargetApplication::Excavator);
        // 2019.div_euclid(2) * 2 == 2018.
        assert_eq!(
            spec.key_for(&p),
            ShardKey::Years {
                from: 2018,
                to: 2019
            }
        );
        let p = post(2, "x", 2020, Region::Europe, TargetApplication::Excavator);
        assert_eq!(
            spec.key_for(&p),
            ShardKey::Years {
                from: 2020,
                to: 2021
            }
        );
    }

    #[test]
    fn zero_and_negative_spans_clamp_to_one_year() {
        let p = post(1, "x", 2020, Region::Europe, TargetApplication::Excavator);
        for span in [0, -3] {
            assert_eq!(
                ShardSpec::ByTimeYears(span).key_for(&p),
                ShardKey::Years {
                    from: 2020,
                    to: 2020
                }
            );
        }
    }

    #[test]
    fn region_shards_group_by_region() {
        let corpus = sample();
        let shards = ShardSpec::ByRegion.partition(&corpus);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].0, ShardKey::Region(Region::Europe));
        assert_eq!(shards[0].1, vec![0, 1, 3]);
        assert_eq!(shards[1].0, ShardKey::Region(Region::NorthAmerica));
        assert_eq!(shards[1].1, vec![2]);
    }

    #[test]
    fn time_keys_prune_on_windows_only() {
        let key = ShardKey::Years {
            from: 2018,
            to: 2019,
        };
        assert!(key.may_match(None, None));
        // Region filters never prune a time shard (mixed regions inside).
        assert!(key.may_match(Some(Region::AsiaPacific), None));
        assert!(key.may_match(None, Some(&DateWindow::years(2019, 2021))));
        // Boundary overlap: a window ending in the shard's first year matches.
        assert!(key.may_match(None, Some(&DateWindow::years(2016, 2018))));
        assert!(!key.may_match(None, Some(&DateWindow::years(2020, 2023))));
        assert!(!key.may_match(None, Some(&DateWindow::years(2015, 2017))));
    }

    #[test]
    fn region_keys_prune_on_regions_only() {
        let key = ShardKey::Region(Region::Europe);
        assert!(key.may_match(None, None));
        assert!(key.may_match(Some(Region::Europe), None));
        assert!(!key.may_match(Some(Region::AsiaPacific), None));
        // Windows never prune a region shard (mixed dates inside).
        assert!(key.may_match(None, Some(&DateWindow::years(1990, 1991))));
    }

    #[test]
    fn shard_keys_display_compactly() {
        assert_eq!(
            ShardKey::Years {
                from: 2020,
                to: 2020
            }
            .to_string(),
            "2020"
        );
        assert_eq!(
            ShardKey::Years {
                from: 2018,
                to: 2019
            }
            .to_string(),
            "2018-2019"
        );
        assert_eq!(ShardKey::Region(Region::Europe).to_string(), "Europe");
    }

    #[test]
    fn partition_of_an_empty_corpus_has_no_shards() {
        assert!(ShardSpec::yearly().partition(&Corpus::new()).is_empty());
        assert!(ShardSpec::ByRegion.partition(&Corpus::new()).is_empty());
    }

    #[test]
    #[should_panic(expected = "CorpusIndex::append")]
    fn append_panics_when_the_claimed_count_is_wrong() {
        let mut corpus = sample();
        let mut index = corpus.build_index();
        corpus.push(post(
            9,
            "one more",
            2022,
            Region::Europe,
            TargetApplication::Excavator,
        ));
        index.append(&corpus, 2); // one post was appended, not two
    }
}
