//! The seedable corpus generator.
//!
//! Turns a [`TrendModel`] into a concrete [`Corpus`]: for every topic and every
//! active year it synthesises the configured number of posts, drawing engagement
//! figures, posting dates, author properties and text from the topic's profile.
//! Everything is driven by a caller-supplied seed, so every experiment in the bench
//! harness is exactly reproducible.

use crate::corpus::Corpus;
use crate::engagement::Engagement;
use crate::hashtag::Hashtag;
use crate::post::Post;
use crate::time::SimDate;
use crate::trend::{TopicTrend, TrendModel};
use crate::user::User;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Text templates used to synthesise post bodies.  `{tag}` is replaced with the
/// topic hashtag and `{price}` with an advertised price when the topic has one.
const TEMPLATES: [&str; 8] = [
    "finally got the {tag} done, night and day difference",
    "anyone recommend a shop for {tag}? quotes welcome",
    "{tag} kit for sale, plug and play, {price} EUR shipped",
    "before/after dyno numbers with {tag}, unreal torque",
    "dealer refused warranty after they found the {tag}",
    "step by step {tag} guide in the comments",
    "is {tag} legal for off-road use only? asking for a friend",
    "my {tag} install took 40 minutes with the obd cable",
];

/// A deterministic corpus generator.
#[derive(Debug, Clone)]
pub struct CorpusGenerator {
    seed: u64,
}

impl CorpusGenerator {
    /// Creates a generator with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The seed in use.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates the corpus described by a trend model.
    #[must_use]
    pub fn generate(&self, model: &TrendModel) -> Corpus {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut corpus = Corpus::new();
        let mut next_id: u64 = 1;

        for topic in model.topics() {
            for year in topic.active_years() {
                let count = topic.posts_in(year);
                for _ in 0..count {
                    let post = self.synthesize_post(&mut rng, model, topic, year, next_id);
                    corpus.push(post);
                    next_id += 1;
                }
            }
        }
        corpus
    }

    fn synthesize_post(
        &self,
        rng: &mut StdRng,
        model: &TrendModel,
        topic: &TopicTrend,
        year: i32,
        id: u64,
    ) -> Post {
        let month = rng.gen_range(1..=12);
        let day = rng.gen_range(1..=28);
        let date = SimDate::new(year, month, day);

        let tag_text = topic
            .hashtags()
            .first()
            .cloned()
            .unwrap_or_else(|| topic.topic().to_string());
        let template = TEMPLATES[rng.gen_range(0..TEMPLATES.len())];
        let price = topic.advertised_price_eur().unwrap_or(0.0);
        // Jitter the advertised price by ±15% so the price-mining cluster has width.
        let quoted_price = if price > 0.0 {
            price * rng.gen_range(0.85..1.15)
        } else {
            0.0
        };
        let mut text = template
            .replace("{tag}", &format!("#{tag_text}"))
            .replace("{price}", &format!("{quoted_price:.0}"));
        // Attach any secondary hashtags of the topic to a fraction of the posts.
        for extra in topic.hashtags().iter().skip(1) {
            if rng.gen_bool(0.35) {
                text.push_str(&format!(" #{extra}"));
            }
        }

        let views_mean = topic.mean_views() as f64;
        let interactions_mean = topic.mean_interactions() as f64;
        let views = sample_around(rng, views_mean);
        let likes = sample_around(rng, interactions_mean * 0.6);
        let replies = sample_around(rng, interactions_mean * 0.25);
        let reposts = sample_around(rng, interactions_mean * 0.15);

        let followers = rng.gen_range(20..20_000);
        let age_months = rng.gen_range(6..120);
        let author = User::new(
            format!("user_{}", rng.gen_range(1000..999_999)),
            followers,
            age_months,
        );

        Post::new(
            id,
            author,
            text,
            vec![Hashtag::new(&tag_text)],
            date,
            model.region(),
            model.application(),
            Engagement::new(views, likes, replies, reposts),
        )
    }
}

/// Samples a non-negative integer around `mean` with roughly ±50% spread.
fn sample_around(rng: &mut StdRng, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    let factor = rng.gen_range(0.5..1.5);
    (mean * factor).round().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::post::{Region, TargetApplication};
    use crate::query::Query;

    fn small_model() -> TrendModel {
        TrendModel::new(TargetApplication::Excavator, Region::Europe)
            .topic(
                TopicTrend::new("dpf-delete")
                    .with_hashtag("dpfdelete")
                    .volume_range(2020, 2022, 30)
                    .engagement(2_000, 60)
                    .advertised_price(360.0),
            )
            .topic(
                TopicTrend::new("egr-delete")
                    .with_hashtag("egrdelete")
                    .volume_range(2020, 2021, 10)
                    .engagement(900, 25),
            )
    }

    #[test]
    fn generates_the_configured_volume() {
        let corpus = CorpusGenerator::new(7).generate(&small_model());
        assert_eq!(corpus.len(), 30 * 3 + 10 * 2);
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = CorpusGenerator::new(42).generate(&small_model());
        let b = CorpusGenerator::new(42).generate(&small_model());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = CorpusGenerator::new(1).generate(&small_model());
        let b = CorpusGenerator::new(2).generate(&small_model());
        assert_ne!(a, b);
    }

    #[test]
    fn posts_carry_topic_hashtags_and_scene_metadata() {
        let corpus = CorpusGenerator::new(3).generate(&small_model());
        let dpf_hits = corpus.search(&Query::new().with_hashtag("#dpfdelete"));
        assert_eq!(dpf_hits.len(), 90);
        for post in corpus.iter() {
            assert_eq!(post.region(), Region::Europe);
            assert_eq!(post.application(), TargetApplication::Excavator);
        }
    }

    #[test]
    fn dates_stay_within_active_years() {
        let corpus = CorpusGenerator::new(5).generate(&small_model());
        for post in corpus.iter() {
            let year = post.date().year();
            assert!((2020..=2022).contains(&year), "unexpected year {year}");
        }
    }

    #[test]
    fn priced_topics_mention_a_price() {
        let corpus = CorpusGenerator::new(11).generate(&small_model());
        let priced_posts = corpus.iter().filter(|p| p.text().contains("EUR")).count();
        assert!(
            priced_posts > 0,
            "at least the for-sale template must appear"
        );
    }

    #[test]
    fn engagement_scales_with_topic_profile() {
        let corpus = CorpusGenerator::new(13).generate(&small_model());
        let dpf = corpus.aggregate_engagement(&Query::new().with_hashtag("#dpfdelete"));
        let egr = corpus.aggregate_engagement(&Query::new().with_hashtag("#egrdelete"));
        // 90 posts at ~2000 views vs 20 posts at ~900 views.
        assert!(dpf.views > egr.views * 3);
    }

    #[test]
    fn post_ids_are_unique() {
        let corpus = CorpusGenerator::new(17).generate(&small_model());
        let mut ids: Vec<_> = corpus.iter().map(Post::id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), corpus.len());
    }
}
