//! Hashtags and their normalisation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A normalised hashtag (lowercase, no leading `#`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Hashtag(String);

impl Hashtag {
    /// Creates a hashtag from raw text: strips a leading `#`, lowercases and drops
    /// non-alphanumeric characters.
    ///
    /// # Examples
    ///
    /// ```
    /// use socialsim::Hashtag;
    /// assert_eq!(Hashtag::new("#DPFDelete").as_str(), "dpfdelete");
    /// assert_eq!(Hashtag::new("egr-removal").as_str(), "egrremoval");
    /// ```
    #[must_use]
    pub fn new(raw: &str) -> Self {
        let normalized: String = raw
            .trim()
            .trim_start_matches('#')
            .chars()
            .filter(|c| c.is_alphanumeric())
            .flat_map(char::to_lowercase)
            .collect();
        Self(normalized)
    }

    /// The normalised tag text.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Whether the tag is empty after normalisation.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Hashtag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<&str> for Hashtag {
    fn from(raw: &str) -> Self {
        Hashtag::new(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation_strips_hash_and_case() {
        assert_eq!(Hashtag::new("#ChipTuning").as_str(), "chiptuning");
        assert_eq!(Hashtag::new("  #EGRoff  ").as_str(), "egroff");
    }

    #[test]
    fn non_alphanumeric_removed() {
        assert_eq!(Hashtag::new("#dpf_delete!").as_str(), "dpfdelete");
    }

    #[test]
    fn equal_after_normalisation() {
        assert_eq!(Hashtag::new("#DPFDELETE"), Hashtag::new("dpfdelete"));
    }

    #[test]
    fn empty_input_detected() {
        assert!(Hashtag::new("#!!").is_empty());
        assert!(!Hashtag::new("#x").is_empty());
    }

    #[test]
    fn display_prepends_hash() {
        assert_eq!(Hashtag::new("dieselpower").to_string(), "#dieselpower");
    }

    #[test]
    fn from_str_conversion() {
        let h: Hashtag = "#EgrRemoval".into();
        assert_eq!(h.as_str(), "egrremoval");
    }
}
