//! Simulated social-media users.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A social-media account that authors posts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct User {
    handle: String,
    followers: u64,
    /// Account age in months at corpus-generation time.
    account_age_months: u32,
    /// Whether the account is part of an automated (bot) campaign.
    bot: bool,
}

impl User {
    /// Creates an organic user.
    #[must_use]
    pub fn new(handle: impl Into<String>, followers: u64, account_age_months: u32) -> Self {
        Self {
            handle: handle.into(),
            followers,
            account_age_months,
            bot: false,
        }
    }

    /// Creates a bot account (used by the poisoning module).
    #[must_use]
    pub fn bot(handle: impl Into<String>) -> Self {
        Self {
            handle: handle.into(),
            followers: 3,
            account_age_months: 1,
            bot: true,
        }
    }

    /// The account handle.
    #[must_use]
    pub fn handle(&self) -> &str {
        &self.handle
    }

    /// Follower count.
    #[must_use]
    pub fn followers(&self) -> u64 {
        self.followers
    }

    /// Account age in months.
    #[must_use]
    pub fn account_age_months(&self) -> u32 {
        self.account_age_months
    }

    /// Whether the account is flagged as a bot by the generator (ground truth used
    /// to evaluate the poisoning filter — the filter itself never reads this).
    #[must_use]
    pub fn is_bot(&self) -> bool {
        self.bot
    }

    /// A credibility score in `[0, 1]` combining follower count and account age.
    /// This is what the PSP poisoning filter thresholds on.
    #[must_use]
    pub fn credibility(&self) -> f64 {
        let follower_part = (self.followers as f64 + 1.0).log10() / 6.0;
        let age_part = f64::from(self.account_age_months.min(60)) / 60.0;
        (0.6 * follower_part + 0.4 * age_part).clamp(0.0, 1.0)
    }
}

impl fmt::Display for User {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn organic_user_is_not_bot() {
        let u = User::new("dieselfan", 1_200, 48);
        assert!(!u.is_bot());
        assert_eq!(u.handle(), "dieselfan");
        assert_eq!(u.followers(), 1_200);
    }

    #[test]
    fn bot_accounts_have_low_credibility() {
        let bot = User::bot("spam123");
        let organic = User::new("veteran_mechanic", 5_000, 60);
        assert!(bot.is_bot());
        assert!(bot.credibility() < 0.2);
        assert!(organic.credibility() > 0.5);
    }

    #[test]
    fn credibility_is_bounded() {
        let whale = User::new("oem_press", 10_000_000, 240);
        assert!(whale.credibility() <= 1.0);
        let newborn = User::new("x", 0, 0);
        assert!(newborn.credibility() >= 0.0);
    }

    #[test]
    fn credibility_grows_with_followers() {
        let small = User::new("a", 10, 24);
        let large = User::new("b", 100_000, 24);
        assert!(large.credibility() > small.credibility());
    }

    #[test]
    fn display_prepends_at() {
        assert_eq!(User::new("tuner", 1, 1).to_string(), "@tuner");
    }
}
