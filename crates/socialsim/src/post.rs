//! Social-media posts and the query dimensions attached to them.

use crate::engagement::Engagement;
use crate::hashtag::Hashtag;
use crate::time::SimDate;
use crate::user::User;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Geographic region of a post (the PSP query "excavator, Europe" filters on this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Region {
    /// Europe.
    Europe,
    /// North America.
    NorthAmerica,
    /// South America.
    SouthAmerica,
    /// Asia-Pacific.
    AsiaPacific,
    /// Africa and the Middle East.
    AfricaMiddleEast,
}

impl Region {
    /// All regions.
    pub const ALL: [Region; 5] = [
        Region::Europe,
        Region::NorthAmerica,
        Region::SouthAmerica,
        Region::AsiaPacific,
        Region::AfricaMiddleEast,
    ];
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The target application a post talks about (PSP input block 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TargetApplication {
    /// Passenger cars.
    PassengerCar,
    /// Light commercial trucks.
    LightTruck,
    /// Heavy trucks.
    HeavyTruck,
    /// Agricultural machines (tractors, harvesters).
    Agriculture,
    /// Construction machines (excavators, loaders).
    Excavator,
    /// Sports cars.
    SportsCar,
}

impl TargetApplication {
    /// All applications.
    pub const ALL: [TargetApplication; 6] = [
        TargetApplication::PassengerCar,
        TargetApplication::LightTruck,
        TargetApplication::HeavyTruck,
        TargetApplication::Agriculture,
        TargetApplication::Excavator,
        TargetApplication::SportsCar,
    ];
}

impl fmt::Display for TargetApplication {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A single social-media post.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Post {
    id: u64,
    author: User,
    text: String,
    hashtags: Vec<Hashtag>,
    date: SimDate,
    region: Region,
    application: TargetApplication,
    engagement: Engagement,
}

impl Post {
    /// Creates a post.  Hashtags present in `text` (tokens starting with `#`) are
    /// extracted automatically and merged with `hashtags`.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        id: u64,
        author: User,
        text: impl Into<String>,
        hashtags: Vec<Hashtag>,
        date: SimDate,
        region: Region,
        application: TargetApplication,
        engagement: Engagement,
    ) -> Self {
        let text = text.into();
        let mut all_tags = hashtags;
        for token in text.split_whitespace() {
            if let Some(stripped) = token.strip_prefix('#') {
                let tag = Hashtag::new(stripped);
                if !tag.is_empty() && !all_tags.contains(&tag) {
                    all_tags.push(tag);
                }
            }
        }
        Self {
            id,
            author,
            text,
            hashtags: all_tags,
            date,
            region,
            application,
            engagement,
        }
    }

    /// The unique post id.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The author.
    #[must_use]
    pub fn author(&self) -> &User {
        &self.author
    }

    /// The post text.
    #[must_use]
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The hashtags (explicit plus extracted from the text).
    #[must_use]
    pub fn hashtags(&self) -> &[Hashtag] {
        &self.hashtags
    }

    /// The posting date.
    #[must_use]
    pub fn date(&self) -> SimDate {
        self.date
    }

    /// The region the post is attributed to.
    #[must_use]
    pub fn region(&self) -> Region {
        self.region
    }

    /// The target application the post talks about.
    #[must_use]
    pub fn application(&self) -> TargetApplication {
        self.application
    }

    /// The engagement metrics.
    #[must_use]
    pub fn engagement(&self) -> &Engagement {
        &self.engagement
    }

    /// Whether the post carries the given (normalised) hashtag.
    #[must_use]
    pub fn has_hashtag(&self, tag: &Hashtag) -> bool {
        self.hashtags.contains(tag)
    }

    /// Whether the post text or any hashtag contains the keyword
    /// (case-insensitive).
    #[must_use]
    pub fn mentions(&self, keyword: &str) -> bool {
        let kw = keyword.to_lowercase();
        if kw.is_empty() {
            return false;
        }
        self.text.to_lowercase().contains(&kw)
            || self.hashtags.iter().any(|h| h.as_str().contains(&kw))
    }
}

impl fmt::Display for Post {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.date, self.author, self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_post() -> Post {
        Post::new(
            1,
            User::new("digger_dave", 800, 36),
            "Finally got the #DPFDelete done on my 8t excavator, no more regen stops",
            vec![Hashtag::new("#excavatorlife")],
            SimDate::new(2022, 6, 10),
            Region::Europe,
            TargetApplication::Excavator,
            Engagement::new(4_000, 120, 35, 18),
        )
    }

    #[test]
    fn hashtags_are_extracted_from_text() {
        let p = sample_post();
        assert!(p.has_hashtag(&Hashtag::new("dpfdelete")));
        assert!(p.has_hashtag(&Hashtag::new("excavatorlife")));
        assert_eq!(p.hashtags().len(), 2);
    }

    #[test]
    fn duplicate_hashtags_are_not_added_twice() {
        let p = Post::new(
            2,
            User::new("x", 1, 1),
            "#chiptuning is great #chiptuning",
            vec![Hashtag::new("chiptuning")],
            SimDate::new(2021, 1, 1),
            Region::Europe,
            TargetApplication::PassengerCar,
            Engagement::default(),
        );
        assert_eq!(p.hashtags().len(), 1);
    }

    #[test]
    fn mentions_is_case_insensitive() {
        let p = sample_post();
        assert!(p.mentions("dpf"));
        assert!(p.mentions("REGEN"));
        assert!(!p.mentions("adblue"));
        assert!(!p.mentions(""));
    }

    #[test]
    fn accessors_return_construction_values() {
        let p = sample_post();
        assert_eq!(p.id(), 1);
        assert_eq!(p.region(), Region::Europe);
        assert_eq!(p.application(), TargetApplication::Excavator);
        assert_eq!(p.date().year(), 2022);
        assert_eq!(p.engagement().views, 4_000);
    }

    #[test]
    fn display_contains_date_and_author() {
        let s = sample_post().to_string();
        assert!(s.contains("2022-06-10"));
        assert!(s.contains("@digger_dave"));
    }

    #[test]
    fn serde_round_trip() {
        let p = sample_post();
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(p, serde_json::from_str::<Post>(&json).unwrap());
    }
}
