//! Per-topic posting-intensity profiles over time.
//!
//! The corpus generator is driven by a [`TrendModel`]: for every attack topic it
//! states how many posts per year the scene produces, how that volume evolves, and
//! how engaged the audience is.  The trend inversion the paper observes for ECM
//! reprogramming — bench/physical flashing fading after 2021 while OBD-local
//! flashing keeps growing — is encoded here and recovered by the PSP time-window
//! analysis (Figure 9-B vs 9-C).

use crate::post::{Region, TargetApplication};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The yearly posting profile of one attack topic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicTrend {
    topic: String,
    hashtags: Vec<String>,
    /// Base number of posts per year, per year.
    posts_per_year: BTreeMap<i32, u32>,
    /// Mean views per post.
    mean_views: u64,
    /// Mean interactions per post.
    mean_interactions: u64,
    /// Mean price (EUR) quoted in posts advertising a device or service, if the
    /// topic has a commercial aftermarket (used by the PPIA price mining).
    advertised_price_eur: Option<f64>,
}

impl TopicTrend {
    /// Creates a topic trend.
    #[must_use]
    pub fn new(topic: impl Into<String>) -> Self {
        Self {
            topic: topic.into(),
            hashtags: Vec::new(),
            posts_per_year: BTreeMap::new(),
            mean_views: 1_000,
            mean_interactions: 30,
            advertised_price_eur: None,
        }
    }

    /// Adds a hashtag the topic's posts use.
    #[must_use]
    pub fn with_hashtag(mut self, tag: impl Into<String>) -> Self {
        self.hashtags.push(tag.into());
        self
    }

    /// Sets the post volume for one year.
    #[must_use]
    pub fn volume(mut self, year: i32, posts: u32) -> Self {
        self.posts_per_year.insert(year, posts);
        self
    }

    /// Sets a constant post volume over a year range (inclusive).
    #[must_use]
    pub fn volume_range(mut self, from_year: i32, to_year: i32, posts: u32) -> Self {
        for year in from_year..=to_year {
            self.posts_per_year.insert(year, posts);
        }
        self
    }

    /// Sets the mean engagement per post.
    #[must_use]
    pub fn engagement(mut self, mean_views: u64, mean_interactions: u64) -> Self {
        self.mean_views = mean_views;
        self.mean_interactions = mean_interactions;
        self
    }

    /// Sets the typical advertised price for the topic's aftermarket device/service.
    #[must_use]
    pub fn advertised_price(mut self, eur: f64) -> Self {
        self.advertised_price_eur = Some(eur);
        self
    }

    /// The topic name.
    #[must_use]
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// The hashtags used by the topic's posts.
    #[must_use]
    pub fn hashtags(&self) -> &[String] {
        &self.hashtags
    }

    /// The post volume for a year (0 when unset).
    #[must_use]
    pub fn posts_in(&self, year: i32) -> u32 {
        self.posts_per_year.get(&year).copied().unwrap_or(0)
    }

    /// Years with non-zero volume, sorted.
    #[must_use]
    pub fn active_years(&self) -> Vec<i32> {
        self.posts_per_year
            .iter()
            .filter(|(_, v)| **v > 0)
            .map(|(y, _)| *y)
            .collect()
    }

    /// Mean views per post.
    #[must_use]
    pub fn mean_views(&self) -> u64 {
        self.mean_views
    }

    /// Mean interactions per post.
    #[must_use]
    pub fn mean_interactions(&self) -> u64 {
        self.mean_interactions
    }

    /// Typical advertised price in EUR, if the topic has a commercial aftermarket.
    #[must_use]
    pub fn advertised_price_eur(&self) -> Option<f64> {
        self.advertised_price_eur
    }

    /// Total posts over all years.
    #[must_use]
    pub fn total_posts(&self) -> u64 {
        self.posts_per_year.values().map(|v| u64::from(*v)).sum()
    }
}

/// A full trend model: the topics of one (application, region) scene.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrendModel {
    application: TargetApplication,
    region: Region,
    topics: Vec<TopicTrend>,
}

impl TrendModel {
    /// Creates an empty trend model for the given scene.
    #[must_use]
    pub fn new(application: TargetApplication, region: Region) -> Self {
        Self {
            application,
            region,
            topics: Vec::new(),
        }
    }

    /// Adds a topic.
    #[must_use]
    pub fn topic(mut self, topic: TopicTrend) -> Self {
        self.topics.push(topic);
        self
    }

    /// The target application of the scene.
    #[must_use]
    pub fn application(&self) -> TargetApplication {
        self.application
    }

    /// The region of the scene.
    #[must_use]
    pub fn region(&self) -> Region {
        self.region
    }

    /// The topics.
    #[must_use]
    pub fn topics(&self) -> &[TopicTrend] {
        &self.topics
    }

    /// Looks up a topic by name.
    #[must_use]
    pub fn topic_named(&self, name: &str) -> Option<&TopicTrend> {
        self.topics.iter().find(|t| t.topic() == name)
    }

    /// The overall year span covered by any topic, as `(min, max)`.
    #[must_use]
    pub fn year_span(&self) -> Option<(i32, i32)> {
        let years: Vec<i32> = self.topics.iter().flat_map(|t| t.active_years()).collect();
        let min = years.iter().min()?;
        let max = years.iter().max()?;
        Some((*min, *max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dpf_trend() -> TopicTrend {
        TopicTrend::new("dpf-delete")
            .with_hashtag("dpfdelete")
            .with_hashtag("dpfoff")
            .volume_range(2018, 2023, 120)
            .engagement(3_000, 90)
            .advertised_price(360.0)
    }

    #[test]
    fn volume_range_fills_every_year() {
        let t = dpf_trend();
        for year in 2018..=2023 {
            assert_eq!(t.posts_in(year), 120);
        }
        assert_eq!(t.posts_in(2017), 0);
        assert_eq!(t.total_posts(), 6 * 120);
    }

    #[test]
    fn volume_overrides_specific_year() {
        let t = dpf_trend().volume(2020, 10);
        assert_eq!(t.posts_in(2020), 10);
        assert_eq!(t.posts_in(2021), 120);
    }

    #[test]
    fn active_years_are_sorted_and_nonzero() {
        let t = TopicTrend::new("x")
            .volume(2021, 5)
            .volume(2019, 0)
            .volume(2020, 7);
        assert_eq!(t.active_years(), vec![2020, 2021]);
    }

    #[test]
    fn price_is_optional() {
        assert_eq!(TopicTrend::new("x").advertised_price_eur(), None);
        assert_eq!(dpf_trend().advertised_price_eur(), Some(360.0));
    }

    #[test]
    fn model_lookup_and_span() {
        let model = TrendModel::new(TargetApplication::Excavator, Region::Europe)
            .topic(dpf_trend())
            .topic(TopicTrend::new("egr-delete").volume_range(2016, 2020, 40));
        assert!(model.topic_named("dpf-delete").is_some());
        assert!(model.topic_named("nope").is_none());
        assert_eq!(model.year_span(), Some((2016, 2023)));
        assert_eq!(model.application(), TargetApplication::Excavator);
        assert_eq!(model.region(), Region::Europe);
    }

    #[test]
    fn empty_model_has_no_span() {
        let model = TrendModel::new(TargetApplication::PassengerCar, Region::Europe);
        assert_eq!(model.year_span(), None);
    }
}
