//! Deterministic social-media corpus simulator — the Twitter substitute of this
//! reproduction.
//!
//! The PSP paper's proof of concept queries the Twitter API for posts matching
//! attack hashtags (#dpfdelete, #egrremoval, #chiptuning, …) and scores each threat
//! topic by views, interactions and popularity.  Live Twitter data is neither
//! available offline nor reproducible, so this crate provides a synthetic corpus
//! with the same observable surface:
//!
//! * [`post`] — posts with text, hashtags, author, timestamp, region and
//!   [`engagement`] metrics,
//! * [`user`] — authors with follower counts, credibility and bot flags,
//! * [`trend`] — per-topic intensity profiles over years (this is where the
//!   Figure 9-B/9-C trend inversion is encoded),
//! * [`generator`] — a seedable corpus generator driven by trend profiles,
//! * [`corpus`] + [`query`] — an indexed corpus with a search API shaped like a
//!   social-media search endpoint (keywords, hashtags, region, time window),
//! * [`index`] — an inverted [`CorpusIndex`] (mention vocabulary, hashtag
//!   posting lists, region/application bitsets) with a batch multi-query API
//!   that answers the same queries without rescanning the corpus,
//! * [`poisoning`] — bot-campaign injection used by the poisoning-defence
//!   experiments,
//! * [`scenario`] — ready-made corpora: the passenger-car tuning scene and the
//!   European excavator scene of the paper's worked example.
//!
//! # Example
//!
//! ```
//! use socialsim::scenario;
//! use socialsim::query::Query;
//!
//! let corpus = scenario::excavator_europe(42);
//! let hits = corpus.search(&Query::new().with_keyword("dpf"));
//! assert!(!hits.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod engagement;
pub mod generator;
pub mod hashtag;
pub mod index;
pub mod persist;
pub mod poisoning;
pub mod post;
pub mod query;
pub mod scenario;
pub mod time;
pub mod trend;
pub mod user;

pub use corpus::Corpus;
pub use engagement::Engagement;
pub use hashtag::Hashtag;
pub use index::CorpusIndex;
pub use post::{Post, Region, TargetApplication};
pub use query::Query;
pub use time::SimDate;
pub use trend::{TopicTrend, TrendModel};
pub use user::User;
