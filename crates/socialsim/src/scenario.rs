//! Ready-made scenes used throughout the workspace.
//!
//! Two scenes reproduce the paper's two worked examples:
//!
//! * [`passenger_car_europe`] — the European passenger-car tuning scene behind the
//!   ECM-reprogramming case study (Figures 8 and 9).  Its trend model encodes the
//!   inversion the paper observes: bench/physical flashing fades after 2021 while
//!   OBD-local flashing keeps growing.
//! * [`excavator_europe`] — the European excavator scene behind the financial case
//!   study (Figure 12 and Equations 6–7), where disabling the diesel particulate
//!   filter (DPF) is the dominant insider attack.
//!
//! The trend models are exposed separately (`*_trends`) so benches can regenerate
//! corpora with different seeds or windows.

use crate::corpus::Corpus;
use crate::generator::CorpusGenerator;
use crate::post::{Region, TargetApplication};
use crate::trend::{TopicTrend, TrendModel};

/// The trend model of the European passenger-car tuning / attack scene.
#[must_use]
pub fn passenger_car_europe_trends() -> TrendModel {
    TrendModel::new(TargetApplication::PassengerCar, Region::Europe)
        // Bench / boot-mode flashing: the classic *physical* reprogramming route.
        // Strong historically, fading once OBD tools caught up (paper Fig. 9-B/C).
        .topic(
            TopicTrend::new("bench-flash")
                .with_hashtag("benchflash")
                .with_hashtag("bootmode")
                .with_hashtag("ecuclone")
                .volume_range(2015, 2019, 300)
                .volume(2020, 150)
                .volume(2021, 60)
                .volume(2022, 30)
                .volume(2023, 15)
                .engagement(2_500, 70)
                .advertised_price(420.0),
        )
        // OBD flashing / chip tuning: the *local* route, growing year on year.
        .topic(
            TopicTrend::new("obd-flash")
                .with_hashtag("chiptuning")
                .with_hashtag("obdtuning")
                .with_hashtag("stage1")
                .volume_range(2015, 2019, 80)
                .volume(2020, 120)
                .volume(2021, 180)
                .volume(2022, 260)
                .volume(2023, 320)
                .engagement(3_000, 90)
                .advertised_price(350.0),
        )
        // Emission defeat on diesel passenger cars (insider, local via OBD).
        .topic(
            TopicTrend::new("dpf-egr-delete")
                .with_hashtag("dpfdelete")
                .with_hashtag("egrdelete")
                .with_hashtag("egroff")
                .with_hashtag("dieselpower")
                .volume_range(2016, 2023, 110)
                .engagement(2_200, 60)
                .advertised_price(300.0),
        )
        // Key-fob relay theft (outsider, adjacent/short-range).
        .topic(
            TopicTrend::new("keyfob-relay")
                .with_hashtag("relayattack")
                .with_hashtag("keylesstheft")
                .volume_range(2018, 2023, 70)
                .engagement(8_000, 40),
        )
        // Remote telematics exploitation chatter (outsider, network).
        .topic(
            TopicTrend::new("telematics-exploit")
                .with_hashtag("carhacking")
                .with_hashtag("telematicshack")
                .volume_range(2015, 2023, 25)
                .engagement(12_000, 55),
        )
}

/// A generated corpus for the passenger-car scene.
#[must_use]
pub fn passenger_car_europe(seed: u64) -> Corpus {
    CorpusGenerator::new(seed).generate(&passenger_car_europe_trends())
}

/// The trend model of the European excavator insider-attack scene.
#[must_use]
pub fn excavator_europe_trends() -> TrendModel {
    TrendModel::new(TargetApplication::Excavator, Region::Europe)
        .topic(
            TopicTrend::new("dpf-delete")
                .with_hashtag("dpfdelete")
                .with_hashtag("dpfoff")
                .volume_range(2018, 2023, 150)
                .engagement(3_500, 110)
                .advertised_price(360.0),
        )
        .topic(
            TopicTrend::new("egr-delete")
                .with_hashtag("egrdelete")
                .with_hashtag("egrremoval")
                .volume_range(2018, 2023, 80)
                .engagement(2_400, 70)
                .advertised_price(250.0),
        )
        .topic(
            TopicTrend::new("adblue-emulator")
                .with_hashtag("adblueemulator")
                .with_hashtag("scroff")
                .volume_range(2019, 2023, 60)
                .engagement(2_000, 55)
                .advertised_price(180.0),
        )
        .topic(
            TopicTrend::new("chip-tuning")
                .with_hashtag("chiptuning")
                .with_hashtag("powerboost")
                .volume_range(2018, 2023, 40)
                .engagement(1_800, 45)
                .advertised_price(500.0),
        )
        .topic(
            TopicTrend::new("speed-limiter-removal")
                .with_hashtag("speedlimiteroff")
                .volume_range(2019, 2023, 20)
                .engagement(1_200, 30)
                .advertised_price(150.0),
        )
        .topic(
            TopicTrend::new("hour-meter-rollback")
                .with_hashtag("hourmeterrollback")
                .volume_range(2018, 2023, 10)
                .engagement(900, 20)
                .advertised_price(120.0),
        )
}

/// A generated corpus for the excavator scene.
#[must_use]
pub fn excavator_europe(seed: u64) -> Corpus {
    CorpusGenerator::new(seed).generate(&excavator_europe_trends())
}

/// The seed hashtags the paper lists as the manual starting point of the PSP
/// keyword-attack database (Figure 7, blocks 3 and 4).
#[must_use]
pub fn seed_hashtags() -> Vec<&'static str> {
    vec![
        "dpfdelete",
        "egrremoval",
        "egrdelete",
        "egroff",
        "dieselpower",
        "chiptuning",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::time::DateWindow;

    #[test]
    fn passenger_scene_encodes_the_trend_inversion() {
        let trends = passenger_car_europe_trends();
        let bench = trends.topic_named("bench-flash").unwrap();
        let obd = trends.topic_named("obd-flash").unwrap();
        // Historically bench flashing dominates…
        assert!(bench.total_posts() > obd.total_posts());
        // …but since 2021 the OBD route dominates.
        let bench_recent: u64 = (2021..=2023).map(|y| u64::from(bench.posts_in(y))).sum();
        let obd_recent: u64 = (2021..=2023).map(|y| u64::from(obd.posts_in(y))).sum();
        assert!(obd_recent > bench_recent * 3);
    }

    #[test]
    fn excavator_scene_is_dominated_by_dpf_delete() {
        let trends = excavator_europe_trends();
        let dpf = trends.topic_named("dpf-delete").unwrap().total_posts();
        for topic in trends.topics() {
            if topic.topic() != "dpf-delete" {
                assert!(dpf > topic.total_posts(), "{} beats dpf", topic.topic());
            }
        }
    }

    #[test]
    fn generated_corpora_are_nonempty_and_deterministic() {
        let a = excavator_europe(42);
        let b = excavator_europe(42);
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn passenger_corpus_shows_inversion_through_the_query_api() {
        let corpus = passenger_car_europe(42);
        let all_time = Query::new();
        let recent = Query::new().within(DateWindow::years(2021, 2023));

        let bench_all = corpus
            .search(&all_time.clone().with_hashtag("#benchflash"))
            .len();
        let obd_all = corpus.search(&all_time.with_hashtag("#chiptuning")).len();
        let bench_recent = corpus
            .search(&recent.clone().with_hashtag("#benchflash"))
            .len();
        let obd_recent = corpus.search(&recent.with_hashtag("#chiptuning")).len();

        assert!(bench_all > obd_all, "{bench_all} vs {obd_all}");
        assert!(obd_recent > bench_recent, "{obd_recent} vs {bench_recent}");
    }

    #[test]
    fn seed_hashtags_match_the_paper() {
        let tags = seed_hashtags();
        assert_eq!(tags.len(), 6);
        assert!(tags.contains(&"dpfdelete"));
        assert!(tags.contains(&"chiptuning"));
    }

    #[test]
    fn excavator_corpus_contains_priced_dpf_posts() {
        let corpus = excavator_europe(7);
        let priced = corpus
            .iter()
            .filter(|p| p.mentions("dpf") && p.text().contains("EUR"))
            .count();
        assert!(priced > 0);
    }
}
