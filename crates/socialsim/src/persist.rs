//! Atomic file persistence: write-temp-then-rename, so a crash mid-save can
//! never clobber the previous valid file.
//!
//! Every durable artefact of the suite (corpus JSON, signal-cache exports,
//! the service daemon's checkpoints) goes through [`atomic_write`]: the
//! content is written to a deterministic sibling temp file (`<name>.tmp`),
//! fsync'd, and renamed over the target.  POSIX rename is atomic within a
//! filesystem, so at every instant the target path holds either the complete
//! old content or the complete new content — never a prefix of either.

use std::io::Write;
use std::path::Path;

/// Writes `content` to `path` atomically: parent directories are created,
/// the bytes land in a sibling `<file name>.tmp` first (fsync'd), and a
/// rename publishes them.  On any failure the previous file at `path` is
/// untouched and the temp file is cleaned up best-effort.
///
/// The temp name is deterministic, so concurrent writers of the *same* path
/// are not safe (last rename wins, which is already true of plain writes);
/// callers needing exclusion must serialize externally.
///
/// # Errors
///
/// Returns a description naming the filesystem step that failed.
pub fn atomic_write(path: &Path, content: &[u8]) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|err| format!("create {}: {err}", parent.display()))?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let write = || -> Result<(), String> {
        let mut file = std::fs::File::create(&tmp)
            .map_err(|err| format!("create {}: {err}", tmp.display()))?;
        file.write_all(content)
            .map_err(|err| format!("write {}: {err}", tmp.display()))?;
        file.sync_data()
            .map_err(|err| format!("fsync {}: {err}", tmp.display()))?;
        Ok(())
    };
    if let Err(err) = write() {
        let _ = std::fs::remove_file(&tmp);
        return Err(err);
    }
    std::fs::rename(&tmp, path).map_err(|err| {
        let _ = std::fs::remove_file(&tmp);
        format!("rename {} -> {}: {err}", tmp.display(), path.display())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("psp_persist_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_land_complete_and_replace_previous_content() {
        let path = temp_dir("basic").join("nested/dir/file.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer content").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer content");
        // No temp residue.
        assert!(!path.with_extension("json.tmp").exists());
    }

    #[test]
    fn a_failed_write_leaves_the_old_file_intact() {
        let dir = temp_dir("partial");
        let path = dir.join("file.json");
        atomic_write(&path, b"the previous valid file").unwrap();
        // Simulate a write that cannot complete: a directory squats on the
        // deterministic temp path, so creating the temp file fails before a
        // single byte of the old file could be touched.
        std::fs::create_dir(dir.join("file.json.tmp")).unwrap();
        let err = atomic_write(&path, b"half-written junk").unwrap_err();
        assert!(err.contains("file.json.tmp"));
        assert_eq!(std::fs::read(&path).unwrap(), b"the previous valid file");
        let _ = std::fs::remove_dir_all(dir.join("file.json.tmp"));
    }
}
