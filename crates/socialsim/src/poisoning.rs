//! Bot-campaign injection and the credibility-based filter.
//!
//! The paper's future-work section plans "a filtering strategy for messages to
//! ensure we process only authentic posts and prevent attackers from poisoning the
//! data".  This module provides both sides of that experiment: a way to *inject* a
//! coordinated bot campaign into a corpus, and a simple credibility filter the PSP
//! pipeline can enable, together with precision/recall accounting against the
//! generator's ground truth.

use crate::corpus::Corpus;
use crate::engagement::Engagement;
use crate::hashtag::Hashtag;
use crate::post::{Post, Region, TargetApplication};
use crate::time::SimDate;
use crate::user::User;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A coordinated campaign of low-credibility accounts pushing one hashtag.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BotCampaign {
    /// The hashtag the campaign amplifies.
    pub hashtag: String,
    /// Number of bot posts to inject.
    pub posts: u32,
    /// Year in which the campaign runs.
    pub year: i32,
    /// Views faked per post (bot farms buy impressions, not conversations).
    pub faked_views: u64,
    /// Region the campaign pretends to post from.
    pub region: Region,
    /// Application the campaign talks about.
    pub application: TargetApplication,
}

impl BotCampaign {
    /// Creates a campaign with sensible defaults (high faked views, Europe).
    #[must_use]
    pub fn new(hashtag: impl Into<String>, posts: u32, year: i32) -> Self {
        Self {
            hashtag: hashtag.into(),
            posts,
            year,
            faked_views: 50_000,
            region: Region::Europe,
            application: TargetApplication::Excavator,
        }
    }

    /// Overrides the scene metadata.
    #[must_use]
    pub fn targeting(mut self, region: Region, application: TargetApplication) -> Self {
        self.region = region;
        self.application = application;
        self
    }

    /// Injects the campaign into a corpus, returning the number of posts added.
    pub fn inject(&self, corpus: &mut Corpus, seed: u64) -> usize {
        let mut rng = StdRng::seed_from_u64(seed);
        let base_id = corpus.len() as u64 + 1_000_000;
        for i in 0..self.posts {
            let author = User::bot(format!("promo_{}_{i}", rng.gen_range(0..100_000)));
            let date = SimDate::new(self.year, rng.gen_range(1..=12), rng.gen_range(1..=28));
            let text = format!(
                "BEST PRICE #{tag} kit!!! dm now, worldwide shipping #deal #sale",
                tag = self.hashtag
            );
            let engagement = Engagement::new(self.faked_views, rng.gen_range(0..3), 0, 0);
            corpus.push(Post::new(
                base_id + u64::from(i),
                author,
                text,
                vec![Hashtag::new(&self.hashtag)],
                date,
                self.region,
                self.application,
                engagement,
            ));
        }
        self.posts as usize
    }
}

/// Outcome of applying the credibility filter to a corpus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilterOutcome {
    /// Posts kept by the filter.
    pub kept: usize,
    /// Posts removed by the filter.
    pub removed: usize,
    /// Removed posts that were actually bot posts (true positives).
    pub true_positives: usize,
    /// Removed posts that were organic (false positives).
    pub false_positives: usize,
    /// Bot posts that slipped through (false negatives).
    pub false_negatives: usize,
}

impl FilterOutcome {
    /// Precision of the bot removal (1.0 when nothing was removed).
    #[must_use]
    pub fn precision(&self) -> f64 {
        if self.removed == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.removed as f64
        }
    }

    /// Recall of the bot removal (1.0 when there were no bots).
    #[must_use]
    pub fn recall(&self) -> f64 {
        let bots = self.true_positives + self.false_negatives;
        if bots == 0 {
            1.0
        } else {
            self.true_positives as f64 / bots as f64
        }
    }
}

/// Filters a corpus by author credibility and an interaction-rate sanity check:
/// a post survives if its author's credibility is at least `min_credibility` or the
/// post shows organic engagement (interaction rate above 1%).  Returns the filtered
/// corpus and the accounting against ground truth.
#[must_use]
pub fn filter_by_credibility(corpus: &Corpus, min_credibility: f64) -> (Corpus, FilterOutcome) {
    let mut kept = Corpus::new();
    let mut outcome = FilterOutcome {
        kept: 0,
        removed: 0,
        true_positives: 0,
        false_positives: 0,
        false_negatives: 0,
    };
    for post in corpus.iter() {
        let credible = post.author().credibility() >= min_credibility;
        let organic_engagement = post.engagement().interaction_rate() > 0.01;
        let keep = credible || organic_engagement;
        if keep {
            if post.author().is_bot() {
                outcome.false_negatives += 1;
            }
            outcome.kept += 1;
            kept.push(post.clone());
        } else {
            outcome.removed += 1;
            if post.author().is_bot() {
                outcome.true_positives += 1;
            } else {
                outcome.false_positives += 1;
            }
        }
    }
    (kept, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CorpusGenerator;
    use crate::query::Query;
    use crate::trend::{TopicTrend, TrendModel};

    fn organic_corpus() -> Corpus {
        let model = TrendModel::new(TargetApplication::Excavator, Region::Europe).topic(
            TopicTrend::new("dpf-delete")
                .with_hashtag("dpfdelete")
                .volume_range(2020, 2022, 40)
                .engagement(2_000, 80),
        );
        CorpusGenerator::new(99).generate(&model)
    }

    #[test]
    fn injection_adds_the_requested_posts() {
        let mut corpus = organic_corpus();
        let before = corpus.len();
        let added = BotCampaign::new("egrdelete", 25, 2022).inject(&mut corpus, 1);
        assert_eq!(added, 25);
        assert_eq!(corpus.len(), before + 25);
        assert_eq!(
            corpus
                .search(&Query::new().with_hashtag("#egrdelete"))
                .len(),
            25
        );
    }

    #[test]
    fn campaign_posts_have_bot_authors_and_inflated_views() {
        let mut corpus = Corpus::new();
        BotCampaign::new("dpfdelete", 5, 2023).inject(&mut corpus, 2);
        for post in corpus.iter() {
            assert!(post.author().is_bot());
            assert!(post.engagement().views >= 50_000);
            assert!(post.engagement().interaction_rate() < 0.01);
        }
    }

    #[test]
    fn filter_removes_most_bots_and_keeps_most_organics() {
        let mut corpus = organic_corpus();
        let organic = corpus.len();
        BotCampaign::new("dpfdelete", 60, 2022).inject(&mut corpus, 3);
        let (filtered, outcome) = filter_by_credibility(&corpus, 0.25);
        assert!(outcome.recall() > 0.9, "recall {}", outcome.recall());
        assert!(
            outcome.precision() > 0.7,
            "precision {}",
            outcome.precision()
        );
        assert!(filtered.len() >= organic / 2);
    }

    #[test]
    fn filter_on_clean_corpus_has_perfect_recall() {
        let corpus = organic_corpus();
        let (_, outcome) = filter_by_credibility(&corpus, 0.25);
        assert_eq!(outcome.recall(), 1.0);
        assert_eq!(outcome.true_positives, 0);
    }

    #[test]
    fn zero_threshold_keeps_everything() {
        let mut corpus = organic_corpus();
        BotCampaign::new("dpfdelete", 10, 2022).inject(&mut corpus, 4);
        let (filtered, outcome) = filter_by_credibility(&corpus, 0.0);
        assert_eq!(filtered.len(), corpus.len());
        assert_eq!(outcome.removed, 0);
        assert_eq!(outcome.precision(), 1.0);
    }

    #[test]
    fn targeting_overrides_scene() {
        let campaign = BotCampaign::new("x", 1, 2022)
            .targeting(Region::NorthAmerica, TargetApplication::PassengerCar);
        let mut corpus = Corpus::new();
        campaign.inject(&mut corpus, 5);
        let post = &corpus.posts()[0];
        assert_eq!(post.region(), Region::NorthAmerica);
        assert_eq!(post.application(), TargetApplication::PassengerCar);
    }
}
