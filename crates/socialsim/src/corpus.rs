//! The indexed post corpus and its search API.

use crate::engagement::Engagement;
use crate::hashtag::Hashtag;
use crate::post::Post;
use crate::query::Query;
use crate::time::SimDate;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// An indexed collection of posts with a search API shaped like a social-media
/// search endpoint.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    posts: Vec<Post>,
    #[serde(skip)]
    by_hashtag: HashMap<Hashtag, Vec<usize>>,
}

impl Corpus {
    /// Creates an empty corpus.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a corpus from an iterator of posts.
    #[must_use]
    pub fn from_posts(posts: impl IntoIterator<Item = Post>) -> Self {
        let mut corpus = Self::new();
        for post in posts {
            corpus.push(post);
        }
        corpus
    }

    /// Adds a post (the hashtag index is updated incrementally).
    pub fn push(&mut self, post: Post) {
        let idx = self.posts.len();
        for tag in post.hashtags() {
            self.by_hashtag.entry(tag.clone()).or_default().push(idx);
        }
        self.posts.push(post);
    }

    /// Merges another corpus into this one.
    pub fn merge(&mut self, other: Corpus) {
        for post in other.posts {
            self.push(post);
        }
    }

    /// Number of posts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.posts.len()
    }

    /// Whether the corpus is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.posts.is_empty()
    }

    /// All posts in insertion order.
    #[must_use]
    pub fn posts(&self) -> &[Post] {
        &self.posts
    }

    /// Consumes the corpus, returning the posts in insertion order — the
    /// no-clone path for repartitioning posts into shard corpora.
    #[must_use]
    pub fn into_posts(self) -> Vec<Post> {
        self.posts
    }

    /// Iterates over the posts.
    pub fn iter(&self) -> impl Iterator<Item = &Post> {
        self.posts.iter()
    }

    /// Posts matching a query, in insertion order.
    #[must_use]
    pub fn search(&self, query: &Query) -> Vec<&Post> {
        self.posts.iter().filter(|p| query.matches(p)).collect()
    }

    /// Posts carrying the given hashtag (uses the index).
    #[must_use]
    pub fn with_hashtag(&self, tag: &Hashtag) -> Vec<&Post> {
        self.by_hashtag
            .get(tag)
            .map(|indices| indices.iter().map(|i| &self.posts[*i]).collect())
            .unwrap_or_default()
    }

    /// The distinct hashtags present, sorted by descending post count.
    #[must_use]
    pub fn hashtag_frequencies(&self) -> Vec<(Hashtag, usize)> {
        let mut counts: BTreeMap<Hashtag, usize> = BTreeMap::new();
        for post in &self.posts {
            for tag in post.hashtags() {
                *counts.entry(tag.clone()).or_insert(0) += 1;
            }
        }
        let mut out: Vec<_> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Aggregated engagement of the posts matching a query.
    #[must_use]
    pub fn aggregate_engagement(&self, query: &Query) -> Engagement {
        self.search(query)
            .iter()
            .fold(Engagement::default(), |acc, p| acc.combined(p.engagement()))
    }

    /// The date range covered by the corpus, as `(earliest, latest)`.
    #[must_use]
    pub fn date_range(&self) -> Option<(SimDate, SimDate)> {
        let min = self.posts.iter().map(Post::date).min()?;
        let max = self.posts.iter().map(Post::date).max()?;
        Some((min, max))
    }

    /// Post counts per year, sorted by year — the raw series behind trend plots.
    #[must_use]
    pub fn posts_per_year(&self, query: &Query) -> Vec<(i32, usize)> {
        let mut counts: BTreeMap<i32, usize> = BTreeMap::new();
        for post in self.search(query) {
            *counts.entry(post.date().year()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Rebuilds the hashtag index (needed after deserialisation, since the index is
    /// not serialised).
    pub fn rebuild_index(&mut self) {
        self.by_hashtag.clear();
        for (idx, post) in self.posts.iter().enumerate() {
            for tag in post.hashtags() {
                self.by_hashtag.entry(tag.clone()).or_default().push(idx);
            }
        }
    }

    /// Serialises the corpus (posts only — derived indexes are rebuilt on
    /// load) as JSON to `path`, creating parent directories as needed.  The
    /// persistence hook for cold-restart workflows: save the corpus next to
    /// the engine's exported signal cache and reload both to resume scoring
    /// without re-running text mining.
    ///
    /// The write is atomic ([`crate::persist::atomic_write`]): a crash
    /// mid-save leaves the previous file at `path` intact.
    ///
    /// # Errors
    ///
    /// Returns a description when serialisation or any filesystem step fails.
    pub fn save_json(&self, path: &std::path::Path) -> Result<(), String> {
        let json =
            serde_json::to_string(self).map_err(|err| format!("serialise corpus: {err:?}"))?;
        crate::persist::atomic_write(path, json.as_bytes())
    }

    /// Loads a corpus serialised by [`save_json`](Self::save_json) and
    /// rebuilds the hashtag index.
    ///
    /// # Errors
    ///
    /// Returns a description when the file is unreadable or malformed.
    pub fn load_json(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|err| format!("read {}: {err}", path.display()))?;
        let mut corpus: Self = serde_json::from_str(&text)
            .map_err(|err| format!("parse {}: {err:?}", path.display()))?;
        corpus.rebuild_index();
        Ok(corpus)
    }
}

impl Extend<Post> for Corpus {
    fn extend<T: IntoIterator<Item = Post>>(&mut self, iter: T) {
        for post in iter {
            self.push(post);
        }
    }
}

impl FromIterator<Post> for Corpus {
    fn from_iter<T: IntoIterator<Item = Post>>(iter: T) -> Self {
        Self::from_posts(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::post::{Region, TargetApplication};
    use crate::user::User;

    fn make_post(id: u64, text: &str, year: i32, views: u64) -> Post {
        Post::new(
            id,
            User::new("u", 100, 24),
            text,
            vec![],
            SimDate::new(year, 3, 5),
            Region::Europe,
            TargetApplication::Excavator,
            Engagement::new(views, views / 20, 0, 0),
        )
    }

    fn sample_corpus() -> Corpus {
        Corpus::from_posts(vec![
            make_post(1, "got my #dpfdelete done", 2019, 1_000),
            make_post(2, "#dpfdelete kit for sale 360 EUR", 2021, 5_000),
            make_post(3, "#egrdelete how-to", 2020, 800),
            make_post(4, "stock machine is fine", 2022, 50),
        ])
    }

    #[test]
    fn len_and_iteration() {
        let c = sample_corpus();
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert_eq!(c.iter().count(), 4);
    }

    #[test]
    fn hashtag_index_finds_posts() {
        let c = sample_corpus();
        assert_eq!(c.with_hashtag(&Hashtag::new("dpfdelete")).len(), 2);
        assert_eq!(c.with_hashtag(&Hashtag::new("egrdelete")).len(), 1);
        assert!(c.with_hashtag(&Hashtag::new("unknown")).is_empty());
    }

    #[test]
    fn search_by_keyword() {
        let c = sample_corpus();
        assert_eq!(c.search(&Query::new().with_keyword("dpf")).len(), 2);
        assert_eq!(c.search(&Query::new()).len(), 4);
    }

    #[test]
    fn hashtag_frequencies_sorted_desc() {
        let c = sample_corpus();
        let freqs = c.hashtag_frequencies();
        assert_eq!(freqs[0].0, Hashtag::new("dpfdelete"));
        assert_eq!(freqs[0].1, 2);
    }

    #[test]
    fn aggregate_engagement_sums_matching_posts() {
        let c = sample_corpus();
        let agg = c.aggregate_engagement(&Query::new().with_keyword("dpf"));
        assert_eq!(agg.views, 6_000);
    }

    #[test]
    fn date_range_and_yearly_counts() {
        let c = sample_corpus();
        let (min, max) = c.date_range().unwrap();
        assert_eq!(min.year(), 2019);
        assert_eq!(max.year(), 2022);
        let per_year = c.posts_per_year(&Query::new());
        assert_eq!(per_year.len(), 4);
        assert!(per_year.iter().all(|(_, n)| *n == 1));
    }

    #[test]
    fn merge_combines_corpora() {
        let mut a = sample_corpus();
        let b = Corpus::from_posts(vec![make_post(5, "#dpfdelete in the alps", 2023, 10)]);
        a.merge(b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.with_hashtag(&Hashtag::new("dpfdelete")).len(), 3);
    }

    #[test]
    fn rebuild_index_after_serde() {
        let c = sample_corpus();
        let json = serde_json::to_string(&c).unwrap();
        let mut back: Corpus = serde_json::from_str(&json).unwrap();
        assert!(back.with_hashtag(&Hashtag::new("dpfdelete")).is_empty());
        back.rebuild_index();
        assert_eq!(back.with_hashtag(&Hashtag::new("dpfdelete")).len(), 2);
    }

    #[test]
    fn empty_corpus_has_no_date_range() {
        assert_eq!(Corpus::new().date_range(), None);
    }

    #[test]
    fn save_and_load_json_round_trip() {
        let c = sample_corpus();
        let path = std::env::temp_dir().join("psp_corpus_round_trip_test.json");
        c.save_json(&path).unwrap();
        let back = Corpus::load_json(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, c);
        // The hashtag index is rebuilt, not just deserialised empty.
        assert_eq!(back.with_hashtag(&Hashtag::new("dpfdelete")).len(), 2);
    }

    #[test]
    fn interrupted_save_leaves_the_previous_corpus_file_intact() {
        let dir =
            std::env::temp_dir().join(format!("psp_corpus_atomic_save_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.json");
        let old = sample_corpus();
        old.save_json(&path).unwrap();
        // Block the deterministic temp path so the next save fails before
        // touching the published file — the partial-write simulation.
        std::fs::create_dir(dir.join("corpus.json.tmp")).unwrap();
        let bigger = {
            let mut c = old.clone();
            c.push(make_post(99, "#dpfdelete new", 2023, 77));
            c
        };
        assert!(bigger.save_json(&path).is_err());
        assert_eq!(Corpus::load_json(&path).unwrap(), old);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_json_reports_missing_and_malformed_files() {
        let missing = std::env::temp_dir().join("psp_corpus_does_not_exist.json");
        assert!(Corpus::load_json(&missing).is_err());
        let bad = std::env::temp_dir().join("psp_corpus_malformed_test.json");
        std::fs::write(&bad, "not json").unwrap();
        let result = Corpus::load_json(&bad);
        std::fs::remove_file(&bad).ok();
        assert!(result.is_err());
    }

    #[test]
    fn extend_and_collect() {
        let mut c = Corpus::new();
        c.extend(vec![make_post(9, "x", 2020, 1)]);
        assert_eq!(c.len(), 1);
        let collected: Corpus = vec![make_post(1, "a", 2020, 1)].into_iter().collect();
        assert_eq!(collected.len(), 1);
    }
}
