//! A minimal simulated calendar date.
//!
//! The PSP time-window analysis (paper Figure 9-B vs 9-C) only needs dates with
//! day precision and total ordering, so a small purpose-built type avoids pulling a
//! full date-time dependency into the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A calendar date with day precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SimDate {
    year: i32,
    month: u8,
    day: u8,
}

impl SimDate {
    /// Creates a date, clamping month into `1..=12` and day into `1..=28`
    /// (the simulator never needs month-end precision, and clamping to 28 keeps
    /// every (year, month, day) combination valid without a calendar table).
    #[must_use]
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        Self {
            year,
            month: month.clamp(1, 12),
            day: day.clamp(1, 28),
        }
    }

    /// The first day of a year.
    #[must_use]
    pub fn start_of_year(year: i32) -> Self {
        Self::new(year, 1, 1)
    }

    /// The year component.
    #[must_use]
    pub fn year(&self) -> i32 {
        self.year
    }

    /// The month component (1–12).
    #[must_use]
    pub fn month(&self) -> u8 {
        self.month
    }

    /// The day component (1–28).
    #[must_use]
    pub fn day(&self) -> u8 {
        self.day
    }

    /// A monotone ordinal useful for recency weighting: months since year 0.
    #[must_use]
    pub fn month_ordinal(&self) -> i64 {
        i64::from(self.year) * 12 + i64::from(self.month) - 1
    }

    /// Whether the date falls within `[from, to]` (inclusive).
    #[must_use]
    pub fn within(&self, from: SimDate, to: SimDate) -> bool {
        *self >= from && *self <= to
    }
}

impl fmt::Display for SimDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// An inclusive date window used by queries ("only posts since 2021").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DateWindow {
    /// Inclusive lower bound.
    pub from: SimDate,
    /// Inclusive upper bound.
    pub to: SimDate,
}

impl DateWindow {
    /// Creates a window; swaps the bounds if given in the wrong order.
    #[must_use]
    pub fn new(from: SimDate, to: SimDate) -> Self {
        if from <= to {
            Self { from, to }
        } else {
            Self { from: to, to: from }
        }
    }

    /// A window spanning the given years (inclusive).
    #[must_use]
    pub fn years(from_year: i32, to_year: i32) -> Self {
        Self::new(
            SimDate::start_of_year(from_year),
            SimDate::new(to_year, 12, 28),
        )
    }

    /// Whether the window contains the date.
    #[must_use]
    pub fn contains(&self, date: SimDate) -> bool {
        date.within(self.from, self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_chronological() {
        assert!(SimDate::new(2020, 5, 10) < SimDate::new(2021, 1, 1));
        assert!(SimDate::new(2021, 1, 1) < SimDate::new(2021, 2, 1));
        assert!(SimDate::new(2021, 2, 1) < SimDate::new(2021, 2, 15));
    }

    #[test]
    fn clamping_keeps_dates_valid() {
        let d = SimDate::new(2022, 0, 0);
        assert_eq!(d.month(), 1);
        assert_eq!(d.day(), 1);
        let d = SimDate::new(2022, 13, 31);
        assert_eq!(d.month(), 12);
        assert_eq!(d.day(), 28);
    }

    #[test]
    fn month_ordinal_is_monotone() {
        let a = SimDate::new(2020, 12, 1);
        let b = SimDate::new(2021, 1, 1);
        assert_eq!(b.month_ordinal() - a.month_ordinal(), 1);
    }

    #[test]
    fn window_contains_bounds() {
        let w = DateWindow::years(2019, 2021);
        assert!(w.contains(SimDate::new(2019, 1, 1)));
        assert!(w.contains(SimDate::new(2021, 12, 28)));
        assert!(!w.contains(SimDate::new(2022, 1, 1)));
        assert!(!w.contains(SimDate::new(2018, 12, 28)));
    }

    #[test]
    fn window_swaps_inverted_bounds() {
        let w = DateWindow::new(SimDate::new(2022, 1, 1), SimDate::new(2020, 1, 1));
        assert!(w.from < w.to);
    }

    #[test]
    fn display_is_iso_like() {
        assert_eq!(SimDate::new(2021, 3, 7).to_string(), "2021-03-07");
    }
}
