//! One-dimensional k-means clustering.
//!
//! Used to group the prices mined from adversary listings: the dominant cluster's
//! centre is the purchase price per insider attack (PPIA), while a clearly separated
//! lower cluster usually corresponds to the bare component cost (VCU).

use serde::{Deserialize, Serialize};

/// A cluster of one-dimensional observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// The cluster centre.
    pub center: f64,
    /// The member observations.
    pub members: Vec<f64>,
}

impl Cluster {
    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Runs k-means on one-dimensional data.  Returns clusters sorted by centre
/// (ascending).  `k` is clamped to the number of distinct values; an empty input
/// yields an empty result.  The initialisation is deterministic (evenly spaced
/// quantiles), so results are reproducible without a random seed.
#[must_use]
pub fn kmeans_1d(values: &[f64], k: usize, max_iterations: usize) -> Vec<Cluster> {
    let mut data: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if data.is_empty() || k == 0 {
        return Vec::new();
    }
    data.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let distinct = {
        let mut d = data.clone();
        d.dedup_by(|a, b| (*a - *b).abs() < f64::EPSILON);
        d.len()
    };
    let k = k.min(distinct).max(1);

    // Initialise centres at evenly spaced quantiles of the sorted data.
    let mut centers: Vec<f64> = (0..k)
        .map(|i| {
            let idx = (i * (data.len() - 1)) / k.max(1);
            data[idx.min(data.len() - 1)]
        })
        .collect();
    centers.dedup_by(|a, b| (*a - *b).abs() < f64::EPSILON);
    while centers.len() < k {
        let last = *centers.last().expect("at least one centre");
        centers.push(last + 1.0);
    }

    let mut assignments = vec![0usize; data.len()];
    for _ in 0..max_iterations.max(1) {
        let mut changed = false;
        for (i, value) in data.iter().enumerate() {
            let nearest = centers
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    (*value - **a)
                        .abs()
                        .partial_cmp(&(*value - **b).abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(idx, _)| idx)
                .unwrap_or(0);
            if assignments[i] != nearest {
                assignments[i] = nearest;
                changed = true;
            }
        }
        for (ci, center) in centers.iter_mut().enumerate() {
            let members: Vec<f64> = data
                .iter()
                .zip(&assignments)
                .filter(|(_, a)| **a == ci)
                .map(|(v, _)| *v)
                .collect();
            if !members.is_empty() {
                *center = members.iter().sum::<f64>() / members.len() as f64;
            }
        }
        if !changed {
            break;
        }
    }

    let mut clusters: Vec<Cluster> = centers
        .iter()
        .enumerate()
        .map(|(ci, center)| Cluster {
            center: *center,
            members: data
                .iter()
                .zip(&assignments)
                .filter(|(_, a)| **a == ci)
                .map(|(v, _)| *v)
                .collect(),
        })
        .filter(|c| !c.is_empty())
        .collect();
    clusters.sort_by(|a, b| {
        a.center
            .partial_cmp(&b.center)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    clusters
}

/// The largest cluster (by member count) of a clustering, breaking ties toward the
/// higher centre — the "dominant price point" of a listing scene.
#[must_use]
pub fn dominant_cluster(clusters: &[Cluster]) -> Option<&Cluster> {
    clusters.iter().max_by(|a, b| {
        a.len().cmp(&b.len()).then(
            a.center
                .partial_cmp(&b.center)
                .unwrap_or(std::cmp::Ordering::Equal),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_obvious_groups() {
        let values = [50.0, 55.0, 60.0, 350.0, 360.0, 365.0, 370.0];
        let clusters = kmeans_1d(&values, 2, 50);
        assert_eq!(clusters.len(), 2);
        assert!(clusters[0].center < 100.0);
        assert!(clusters[1].center > 300.0);
        assert_eq!(clusters[0].len(), 3);
        assert_eq!(clusters[1].len(), 4);
    }

    #[test]
    fn dominant_cluster_is_the_biggest() {
        let values = [50.0, 55.0, 350.0, 360.0, 365.0];
        let clusters = kmeans_1d(&values, 2, 50);
        let dom = dominant_cluster(&clusters).unwrap();
        assert!(dom.center > 300.0);
    }

    #[test]
    fn k_larger_than_distinct_values_is_clamped() {
        let values = [10.0, 10.0, 10.0];
        let clusters = kmeans_1d(&values, 5, 10);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 3);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(kmeans_1d(&[], 3, 10).is_empty());
        assert!(dominant_cluster(&[]).is_none());
    }

    #[test]
    fn k_zero_gives_empty_output() {
        assert!(kmeans_1d(&[1.0, 2.0], 0, 10).is_empty());
    }

    #[test]
    fn nan_values_are_ignored() {
        let values = [f64::NAN, 100.0, 110.0];
        let clusters = kmeans_1d(&values, 1, 10);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 2);
    }

    #[test]
    fn all_members_are_preserved() {
        let values = [1.0, 2.0, 3.0, 100.0, 101.0, 200.0];
        let clusters = kmeans_1d(&values, 3, 100);
        let total: usize = clusters.iter().map(Cluster::len).sum();
        assert_eq!(total, values.len());
    }

    #[test]
    fn clusters_sorted_by_center() {
        let values = [300.0, 10.0, 150.0, 12.0, 310.0, 145.0];
        let clusters = kmeans_1d(&values, 3, 100);
        for pair in clusters.windows(2) {
            assert!(pair[0].center <= pair[1].center);
        }
    }
}
