//! Tokenisation.

use crate::normalize::normalize;

/// Splits text into normalised tokens (lowercase words, hashtags with a leading
/// `#`, mentions with a leading `@`, and numbers).
///
/// # Examples
///
/// ```
/// use textmine::tokenize;
/// let tokens = tokenize("Got the #DPFDelete done for 360 EUR!");
/// assert_eq!(tokens, vec!["got", "the", "#dpfdelete", "done", "for", "360", "eur"]);
/// ```
#[must_use]
pub fn tokenize(text: &str) -> Vec<String> {
    normalize(text)
        .split_whitespace()
        .map(|t| t.trim_matches(|c| c == '.' || c == ',').to_string())
        .filter(|t| !t.is_empty() && *t != "#" && *t != "@")
        .collect()
}

/// Extracts only the hashtag tokens (without the leading `#`).
#[must_use]
pub fn hashtags(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter_map(|t| t.strip_prefix('#').map(str::to_string))
        .filter(|t| !t.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_whitespace_and_punctuation() {
        assert_eq!(
            tokenize("quick, easy install!"),
            vec!["quick", "easy", "install"]
        );
    }

    #[test]
    fn keeps_numbers() {
        assert_eq!(
            tokenize("stage 1 adds 40 hp"),
            vec!["stage", "1", "adds", "40", "hp"]
        );
    }

    #[test]
    fn extracts_hashtags() {
        assert_eq!(
            hashtags("my #DPFdelete and #EGRoff story"),
            vec!["dpfdelete", "egroff"]
        );
    }

    #[test]
    fn bare_hash_is_dropped() {
        assert!(tokenize("# lonely hash").iter().all(|t| t != "#"));
    }

    #[test]
    fn empty_input_gives_no_tokens() {
        assert!(tokenize("").is_empty());
        assert!(hashtags("no tags here").is_empty());
    }

    #[test]
    fn trailing_decimal_commas_are_trimmed() {
        let tokens = tokenize("only 360, what a deal");
        assert!(tokens.contains(&"360".to_string()));
    }
}
