//! The retained multi-pass reference implementation of the document analyzer.
//!
//! This module is a **frozen, self-contained copy** of the pre-optimisation
//! text pipeline: four independent passes (tokens, hashtags, prices, intent),
//! each re-normalising and re-tokenising the text, with linear scans over the
//! unsorted lexicon and stop-word arrays.  It exists for exactly two jobs:
//!
//! * **oracle** — the `psp-suite` property tests pin the single-pass analyzer
//!   ([`crate::pipeline::TextPipeline::analyze`]) bit-identical to
//!   [`analyze`] on arbitrary unicode/punctuation/hashtag-heavy inputs;
//! * **baseline** — the `text_pipeline` bench measures the single-pass
//!   speedup against this implementation (what the seed shipped).
//!
//! Do not "fix" or optimise anything here; behavioural changes belong in the
//! live modules, with this copy updated only when the *intended* semantics
//! change.

use crate::pipeline::DocumentAnalysis;
use crate::sentiment::{IntentLexicon, IntentScore};

/// The frozen engagement lexicon, in its original (unsorted) order.
const ENGAGEMENT_WORDS: [&str; 22] = [
    "delete",
    "deleted",
    "removal",
    "removed",
    "off",
    "disable",
    "disabled",
    "bypass",
    "install",
    "installed",
    "kit",
    "sale",
    "shipped",
    "dm",
    "guide",
    "howto",
    "done",
    "tune",
    "tuned",
    "remap",
    "emulator",
    "unlock",
];

/// The frozen deterrent lexicon, in its original (unsorted) order.
const DETERRENT_WORDS: [&str; 12] = [
    "illegal",
    "fine",
    "fined",
    "ban",
    "banned",
    "warranty",
    "refused",
    "recall",
    "warning",
    "enforcement",
    "prosecuted",
    "inspection",
];

/// The frozen commerce lexicon, in its original (unsorted) order.
const COMMERCE_WORDS: [&str; 10] = [
    "eur", "euro", "price", "sale", "shipped", "offer", "deal", "buy", "order", "invoice",
];

/// The frozen stop-word list, in its original order.
const STOPWORDS: [&str; 64] = [
    "a", "an", "the", "and", "or", "but", "if", "then", "else", "for", "of", "on", "in", "at",
    "to", "from", "by", "with", "without", "about", "as", "is", "are", "was", "were", "be", "been",
    "being", "am", "do", "does", "did", "have", "has", "had", "will", "would", "can", "could",
    "should", "shall", "may", "might", "must", "this", "that", "these", "those", "it", "its", "my",
    "your", "his", "her", "our", "their", "me", "you", "he", "she", "we", "they", "just", "now",
];

/// The multi-pass reference analysis: four independent passes over the text,
/// exactly as the seed pipeline ran them.
#[must_use]
pub fn analyze(lexicon: &IntentLexicon, text: &str) -> DocumentAnalysis {
    DocumentAnalysis {
        tokens: remove_stopwords(&tokenize(text)),
        hashtags: hashtags(text),
        prices: extract_prices(text),
        intent: score(lexicon, text),
    }
}

/// The frozen allocating normalisation pass.
#[must_use]
pub fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_was_space = true;
    for c in text.chars() {
        if c.is_alphanumeric() || c == '#' || c == '@' {
            for lc in c.to_lowercase() {
                out.push(lc);
            }
            last_was_space = false;
        } else if c == '.' || c == ',' {
            // Keep decimal separators that sit between digits (prices like 1.299,00).
            let prev_digit = out.chars().last().is_some_and(|p| p.is_ascii_digit());
            if prev_digit {
                out.push(c);
                last_was_space = false;
                continue;
            }
            if !last_was_space {
                out.push(' ');
                last_was_space = true;
            }
        } else if !last_was_space {
            out.push(' ');
            last_was_space = true;
        }
    }
    out.trim().to_string()
}

/// The frozen tokenizer: normalise, split, trim, filter — one owned `String`
/// per token.
#[must_use]
pub fn tokenize(text: &str) -> Vec<String> {
    normalize(text)
        .split_whitespace()
        .map(|t| t.trim_matches(|c| c == '.' || c == ',').to_string())
        .filter(|t| !t.is_empty() && *t != "#" && *t != "@")
        .collect()
}

/// The frozen hashtag pass (a full re-tokenisation).
#[must_use]
pub fn hashtags(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter_map(|t| t.strip_prefix('#').map(str::to_string))
        .filter(|t| !t.is_empty())
        .collect()
}

/// The frozen stop-word filter: a linear scan per token.
#[must_use]
pub fn remove_stopwords(tokens: &[String]) -> Vec<String> {
    tokens
        .iter()
        .filter(|t| !STOPWORDS.contains(&t.as_str()))
        .cloned()
        .collect()
}

/// The frozen intent scorer: yet another tokenisation, then linear lexicon
/// scans and a `contains` loop per token for the embedded-substring rule.
#[must_use]
pub fn score(lexicon: &IntentLexicon, text: &str) -> IntentScore {
    let tokens = remove_stopwords(&tokenize(text));
    let mut out = IntentScore::default();
    for token in &tokens {
        let bare = token.trim_start_matches(['#', '@']);
        if ENGAGEMENT_WORDS.contains(&bare) {
            out.engagement_hits += 1;
        }
        if DETERRENT_WORDS.contains(&bare) {
            out.deterrent_hits += 1;
        }
        if COMMERCE_WORDS.contains(&bare) {
            out.commerce_hits += 1;
        }
        // Hashtags embedding an engagement word ("#dpfdelete") count as well.
        if bare.len() > 3
            && ENGAGEMENT_WORDS
                .iter()
                .any(|w| w.len() >= 3 && bare.contains(w) && &bare != w)
        {
            out.engagement_hits += 1;
        }
    }
    let raw = lexicon.engagement_weight * out.engagement_hits as f64
        + lexicon.commerce_weight * out.commerce_hits as f64
        - lexicon.deterrent_weight * out.deterrent_hits as f64;
    out.score = raw.max(0.0);
    out
}

/// The frozen price pass: pad currency symbols into a fresh `String`, split,
/// trim each token into another `String`, then the adjacency scan.
#[must_use]
pub fn extract_prices(text: &str) -> Vec<f64> {
    let cleaned: String = text
        .chars()
        .map(|c| {
            if c == '€' || c == '$' || c == '£' {
                // Pad currency symbols so "€420" splits into two tokens.
                format!(" {c} ")
            } else {
                c.to_string()
            }
        })
        .collect();
    let tokens: Vec<String> = cleaned
        .split_whitespace()
        .map(|t| {
            t.trim_matches(|c: char| c == ',' || c == '.' || c == '!' || c == '?' || c == ':')
                .to_string()
        })
        .filter(|t| !t.is_empty())
        .collect();

    let mut out = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        let Some(value) = parse_number(token) else {
            continue;
        };
        let prev_is_currency = i > 0 && is_currency(&tokens[i - 1]);
        let next_is_currency = i + 1 < tokens.len() && is_currency(&tokens[i + 1]);
        if prev_is_currency || next_is_currency {
            out.push(value);
        }
    }
    out
}

fn is_currency(token: &str) -> bool {
    matches!(
        token.to_lowercase().as_str(),
        "eur" | "euro" | "euros" | "€" | "$" | "usd" | "£" | "gbp"
    )
}

fn parse_number(token: &str) -> Option<f64> {
    let normalized = token.replace(',', ".");
    // Reject tokens with letters ("40hp").
    if normalized.chars().any(|c| c.is_alphabetic()) {
        return None;
    }
    // Collapse thousands separators like "1.299.00" -> treat the last dot as decimal.
    let parts: Vec<&str> = normalized.split('.').collect();
    let candidate = if parts.len() > 2 {
        format!(
            "{}.{}",
            parts[..parts.len() - 1].concat(),
            parts[parts.len() - 1]
        )
    } else {
        normalized
    };
    candidate
        .parse::<f64>()
        .ok()
        .filter(|v| *v > 0.0 && *v < 1_000_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_the_historic_behaviour() {
        let a = analyze(
            &IntentLexicon::default(),
            "#DPFDelete kit for sale, 360 EUR shipped, install guide included",
        );
        assert!(a.hashtags.contains(&"dpfdelete".to_string()));
        assert_eq!(a.prices, vec![360.0]);
        assert!(a.intent.score > 0.0);
        assert!(a.is_commercial());
    }

    #[test]
    fn frozen_tables_keep_their_original_sizes() {
        assert_eq!(ENGAGEMENT_WORDS.len(), 22);
        assert_eq!(DETERRENT_WORDS.len(), 12);
        assert_eq!(COMMERCE_WORDS.len(), 10);
        assert_eq!(STOPWORDS.len(), 64);
    }

    #[test]
    fn reference_passes_agree_with_the_live_utility_functions() {
        // The utility entry points (`crate::tokenize`, `crate::normalize`,
        // `crate::price::extract_prices`) changed implementation, not
        // behaviour — spot-check them against the frozen copies.
        for text in [
            "Got the #DPFDelete done for 360 EUR!",
            "price: 1.299,50 EUR",
            "ÖLWECHSEL wegen Ölverlust",
            "",
        ] {
            assert_eq!(
                crate::normalize::normalize(text),
                normalize(text),
                "{text:?}"
            );
            assert_eq!(crate::token::tokenize(text), tokenize(text), "{text:?}");
            assert_eq!(
                crate::price::extract_prices(text),
                extract_prices(text),
                "{text:?}"
            );
        }
    }
}
