//! Offline NLP / text-mining substrate for the PSP framework.
//!
//! The paper uses NLP for three concrete jobs, and this crate implements exactly
//! those from scratch, without external model downloads:
//!
//! 1. **Scoring posts** — tokenisation ([`token`], [`normalize`], [`stopwords`]) and
//!    lexicon-based intent/sentiment scoring ([`sentiment`]) to decide how strongly a
//!    post signals a real tampering intent rather than news reporting.
//! 2. **Learning new attack keywords** — TF-IDF ([`tfidf`]), keyword extraction
//!    ([`keywords`]) and hashtag co-occurrence mining ([`cooccurrence`]) so the
//!    keyword-attack database grows between runs (paper Figure 7, block 5).
//! 3. **Price mining** — extracting advertised prices from post text ([`price`]) and
//!    clustering them ([`cluster`]) to estimate the purchase price per insider
//!    attack (PPIA) used by the financial model (paper Figure 10, block 2).
//!
//! [`pipeline`] wires the pieces into a single document-processing call.
//!
//! # Example
//!
//! ```
//! use textmine::price::extract_prices;
//! let prices = extract_prices("DPF delete kit 360 EUR shipped, was €420 last month");
//! assert_eq!(prices, vec![360.0, 420.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod cooccurrence;
pub mod keywords;
pub mod normalize;
pub mod pipeline;
pub mod price;
pub mod reference;
pub mod sentiment;
pub mod stopwords;
pub mod tfidf;
pub mod token;

pub use cluster::{kmeans_1d, Cluster};
pub use cooccurrence::CooccurrenceMatrix;
pub use keywords::extract_keywords;
pub use pipeline::{DocumentAnalysis, TextPipeline, TextSignals};
pub use sentiment::{IntentLexicon, IntentScore};
pub use tfidf::TfIdf;
pub use token::tokenize;
