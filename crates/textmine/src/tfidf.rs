//! Term frequency / inverse document frequency over a document collection.

use crate::stopwords::remove_stopwords;
use crate::token::tokenize;
use std::collections::{BTreeMap, HashMap};

/// A TF-IDF index over a set of documents.
#[derive(Debug, Clone, Default)]
pub struct TfIdf {
    /// Per-document term counts.
    docs: Vec<HashMap<String, usize>>,
    /// Document frequency per term.
    df: HashMap<String, usize>,
}

impl TfIdf {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an index from an iterator of raw documents.
    #[must_use]
    pub fn from_documents<'a>(documents: impl IntoIterator<Item = &'a str>) -> Self {
        let mut index = Self::new();
        for doc in documents {
            index.add_document(doc);
        }
        index
    }

    /// Adds one document.
    pub fn add_document(&mut self, text: &str) {
        let tokens = remove_stopwords(&tokenize(text));
        let mut counts: HashMap<String, usize> = HashMap::new();
        for token in tokens {
            *counts.entry(token).or_insert(0) += 1;
        }
        for term in counts.keys() {
            *self.df.entry(term.clone()).or_insert(0) += 1;
        }
        self.docs.push(counts);
    }

    /// Number of documents indexed.
    #[must_use]
    pub fn document_count(&self) -> usize {
        self.docs.len()
    }

    /// The document frequency of a term.
    #[must_use]
    pub fn document_frequency(&self, term: &str) -> usize {
        self.df.get(term).copied().unwrap_or(0)
    }

    /// The inverse document frequency of a term (smoothed).
    #[must_use]
    pub fn idf(&self, term: &str) -> f64 {
        let n = self.docs.len() as f64;
        let df = self.document_frequency(term) as f64;
        ((n + 1.0) / (df + 1.0)).ln() + 1.0
    }

    /// The TF-IDF weight of a term in document `doc_index` (0 if out of range).
    #[must_use]
    pub fn tfidf(&self, doc_index: usize, term: &str) -> f64 {
        let Some(doc) = self.docs.get(doc_index) else {
            return 0.0;
        };
        let tf = doc.get(term).copied().unwrap_or(0) as f64;
        if tf == 0.0 {
            return 0.0;
        }
        let total: usize = doc.values().sum();
        (tf / total as f64) * self.idf(term)
    }

    /// The `top_n` highest-TF-IDF terms of a document.
    #[must_use]
    pub fn top_terms(&self, doc_index: usize, top_n: usize) -> Vec<(String, f64)> {
        let Some(doc) = self.docs.get(doc_index) else {
            return Vec::new();
        };
        let mut scored: Vec<(String, f64)> = doc
            .keys()
            .map(|t| (t.clone(), self.tfidf(doc_index, t)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(top_n);
        scored
    }

    /// Corpus-wide distinctive terms: terms ranked by their best TF-IDF score in
    /// any document, useful for suggesting new attack keywords.
    #[must_use]
    pub fn distinctive_terms(&self, top_n: usize) -> Vec<(String, f64)> {
        let mut best: BTreeMap<String, f64> = BTreeMap::new();
        for i in 0..self.docs.len() {
            for term in self.docs[i].keys() {
                let score = self.tfidf(i, term);
                let entry = best.entry(term.clone()).or_insert(0.0);
                if score > *entry {
                    *entry = score;
                }
            }
        }
        let mut out: Vec<_> = best.into_iter().collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out.truncate(top_n);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> TfIdf {
        TfIdf::from_documents([
            "dpf delete kit for excavator",
            "dpf regeneration problems on excavator",
            "chip tuning stage one remap for tractor",
            "excavator hydraulic filter change",
        ])
    }

    #[test]
    fn document_count_and_frequency() {
        let idx = sample_index();
        assert_eq!(idx.document_count(), 4);
        assert_eq!(idx.document_frequency("excavator"), 3);
        assert_eq!(idx.document_frequency("dpf"), 2);
        assert_eq!(idx.document_frequency("unknown"), 0);
    }

    #[test]
    fn rare_terms_have_higher_idf() {
        let idx = sample_index();
        assert!(idx.idf("remap") > idx.idf("excavator"));
    }

    #[test]
    fn tfidf_zero_for_absent_term() {
        let idx = sample_index();
        assert_eq!(idx.tfidf(0, "tractor"), 0.0);
        assert_eq!(idx.tfidf(99, "dpf"), 0.0);
    }

    #[test]
    fn top_terms_prefer_distinctive_words() {
        let idx = sample_index();
        let top = idx.top_terms(2, 3);
        assert!(!top.is_empty());
        let words: Vec<_> = top.iter().map(|(w, _)| w.as_str()).collect();
        assert!(words.contains(&"remap") || words.contains(&"tuning") || words.contains(&"chip"));
    }

    #[test]
    fn distinctive_terms_cover_corpus() {
        let idx = sample_index();
        let top = idx.distinctive_terms(5);
        assert_eq!(top.len(), 5);
        // Scores must be sorted non-increasing.
        for pair in top.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn stopwords_are_not_indexed() {
        let idx = sample_index();
        assert_eq!(idx.document_frequency("for"), 0);
    }

    #[test]
    fn empty_index_is_harmless() {
        let idx = TfIdf::new();
        assert_eq!(idx.document_count(), 0);
        assert!(idx.top_terms(0, 3).is_empty());
        assert!(idx.distinctive_terms(3).is_empty());
    }
}
