//! Keyword extraction from a document collection.

use crate::stopwords::remove_stopwords;
use crate::tfidf::TfIdf;
use crate::token::tokenize;
use std::collections::BTreeMap;

/// Extracts the `top_n` candidate keywords of a document collection, combining raw
/// frequency with TF-IDF distinctiveness.  Hashtag tokens keep their `#` stripped so
/// the result can seed the PSP keyword-attack database directly.
#[must_use]
pub fn extract_keywords<'a>(
    documents: impl IntoIterator<Item = &'a str> + Clone,
    top_n: usize,
) -> Vec<(String, f64)> {
    let index = TfIdf::from_documents(documents.clone());
    let mut frequency: BTreeMap<String, usize> = BTreeMap::new();
    for doc in documents {
        for token in remove_stopwords(&tokenize(doc)) {
            let bare = token.trim_start_matches(['#', '@']).to_string();
            if bare.len() < 3 || bare.chars().all(|c| c.is_ascii_digit()) {
                continue;
            }
            *frequency.entry(bare).or_insert(0) += 1;
        }
    }
    let max_freq = frequency.values().copied().max().unwrap_or(1) as f64;
    let mut scored: Vec<(String, f64)> = frequency
        .into_iter()
        .map(|(term, freq)| {
            let idf = index.idf(&term);
            let score = (freq as f64 / max_freq) * idf;
            (term, score)
        })
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    scored.truncate(top_n);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_recurring_domain_terms() {
        let docs = [
            "dpf delete kit for excavator 360 EUR",
            "finished the dpf delete today",
            "dpf delete is the best mod",
            "hydraulic oil change interval question",
        ];
        let keywords = extract_keywords(docs, 5);
        let terms: Vec<_> = keywords.iter().map(|(t, _)| t.as_str()).collect();
        assert!(terms.contains(&"dpf"));
        assert!(terms.contains(&"delete"));
    }

    #[test]
    fn numbers_and_short_tokens_excluded() {
        let docs = ["360 eur kit ok", "40 hp up"];
        let keywords = extract_keywords(docs, 10);
        assert!(keywords
            .iter()
            .all(|(t, _)| t != "360" && t != "40" && t != "ok" && t != "up"));
    }

    #[test]
    fn hashtags_are_stripped() {
        let docs = ["my #dpfdelete story", "#dpfdelete finished"];
        let keywords = extract_keywords(docs, 3);
        assert!(keywords.iter().any(|(t, _)| t == "dpfdelete"));
        assert!(keywords.iter().all(|(t, _)| !t.starts_with('#')));
    }

    #[test]
    fn top_n_limits_output() {
        let docs = ["alpha beta gamma delta epsilon zeta"];
        assert_eq!(extract_keywords(docs, 3).len(), 3);
    }

    #[test]
    fn empty_input_is_empty_output() {
        let docs: [&str; 0] = [];
        assert!(extract_keywords(docs, 5).is_empty());
    }

    #[test]
    fn scores_are_sorted_descending() {
        let docs = [
            "dpf dpf dpf delete",
            "dpf delete kit",
            "unrelated post about weather",
        ];
        let keywords = extract_keywords(docs, 10);
        for pair in keywords.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }
}
