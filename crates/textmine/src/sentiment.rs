//! Lexicon-based intent / sentiment scoring.
//!
//! The PSP pipeline needs to distinguish posts that signal a genuine tampering
//! intent or a commercial offer ("kit for sale, plug and play") from neutral news or
//! warnings ("manufacturer warns against defeat devices").  A small domain lexicon
//! is enough for the synthetic corpus and keeps the scoring auditable.

use crate::stopwords::remove_stopwords;
use crate::token::tokenize;
use serde::{Deserialize, Serialize};

/// Words signalling that the author performed, wants or sells the attack.
const ENGAGEMENT_WORDS: [&str; 22] = [
    "delete",
    "deleted",
    "removal",
    "removed",
    "off",
    "disable",
    "disabled",
    "bypass",
    "install",
    "installed",
    "kit",
    "sale",
    "shipped",
    "dm",
    "guide",
    "howto",
    "done",
    "tune",
    "tuned",
    "remap",
    "emulator",
    "unlock",
];

/// Words signalling deterrence, warnings or enforcement (reduce the intent score).
const DETERRENT_WORDS: [&str; 12] = [
    "illegal",
    "fine",
    "fined",
    "ban",
    "banned",
    "warranty",
    "refused",
    "recall",
    "warning",
    "enforcement",
    "prosecuted",
    "inspection",
];

/// Words signalling a commercial offer (price talk boosts market relevance).
const COMMERCE_WORDS: [&str; 10] = [
    "eur", "euro", "price", "sale", "shipped", "offer", "deal", "buy", "order", "invoice",
];

/// The intent lexicon with adjustable weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntentLexicon {
    /// Weight of each engagement word hit.
    pub engagement_weight: f64,
    /// Weight (negative contribution) of each deterrent word hit.
    pub deterrent_weight: f64,
    /// Weight of each commerce word hit.
    pub commerce_weight: f64,
}

impl Default for IntentLexicon {
    fn default() -> Self {
        Self {
            engagement_weight: 1.0,
            deterrent_weight: 0.8,
            commerce_weight: 0.5,
        }
    }
}

/// The scored breakdown of one text.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IntentScore {
    /// Number of engagement-word hits.
    pub engagement_hits: usize,
    /// Number of deterrent-word hits.
    pub deterrent_hits: usize,
    /// Number of commerce-word hits.
    pub commerce_hits: usize,
    /// The combined score (≥ 0, higher = stronger tampering/commercial intent).
    pub score: f64,
}

impl IntentLexicon {
    /// Creates the default lexicon.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Scores a text.
    #[must_use]
    pub fn score(&self, text: &str) -> IntentScore {
        let tokens = remove_stopwords(&tokenize(text));
        let mut out = IntentScore::default();
        for token in &tokens {
            let bare = token.trim_start_matches(['#', '@']);
            if ENGAGEMENT_WORDS.contains(&bare) {
                out.engagement_hits += 1;
            }
            if DETERRENT_WORDS.contains(&bare) {
                out.deterrent_hits += 1;
            }
            if COMMERCE_WORDS.contains(&bare) {
                out.commerce_hits += 1;
            }
            // Hashtags embedding an engagement word ("#dpfdelete") count as well.
            if bare.len() > 3
                && ENGAGEMENT_WORDS
                    .iter()
                    .any(|w| w.len() >= 3 && bare.contains(w) && &bare != w)
            {
                out.engagement_hits += 1;
            }
        }
        let raw = self.engagement_weight * out.engagement_hits as f64
            + self.commerce_weight * out.commerce_hits as f64
            - self.deterrent_weight * out.deterrent_hits as f64;
        out.score = raw.max(0.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sale_post_scores_higher_than_news_post() {
        let lex = IntentLexicon::new();
        let sale = lex.score("DPF delete kit for sale, 360 EUR shipped, install guide included");
        let news =
            lex.score("Authorities warn that defeat devices are illegal and owners get fined");
        assert!(sale.score > news.score);
        assert!(sale.engagement_hits >= 2);
        assert!(news.deterrent_hits >= 2);
    }

    #[test]
    fn hashtag_with_embedded_intent_counts() {
        let lex = IntentLexicon::new();
        let s = lex.score("finally #dpfdelete on the excavator");
        assert!(s.engagement_hits >= 1);
        assert!(s.score > 0.0);
    }

    #[test]
    fn score_never_goes_negative() {
        let lex = IntentLexicon::new();
        let s = lex.score("illegal banned fined recall warning");
        assert_eq!(s.score, 0.0);
    }

    #[test]
    fn empty_text_scores_zero() {
        let s = IntentLexicon::new().score("");
        assert_eq!(s.score, 0.0);
        assert_eq!(s.engagement_hits, 0);
    }

    #[test]
    fn custom_weights_change_the_balance() {
        let strict = IntentLexicon {
            deterrent_weight: 10.0,
            ..IntentLexicon::default()
        };
        let text = "delete kit for sale but it is illegal";
        assert!(strict.score(text).score < IntentLexicon::new().score(text).score);
    }

    #[test]
    fn commerce_words_contribute() {
        let s = IntentLexicon::new().score("best price, buy now, 200 eur offer");
        assert!(s.commerce_hits >= 3);
        assert!(s.score > 0.0);
    }
}
