//! Lexicon-based intent / sentiment scoring.
//!
//! The PSP pipeline needs to distinguish posts that signal a genuine tampering
//! intent or a commercial offer ("kit for sale, plug and play") from neutral news or
//! warnings ("manufacturer warns against defeat devices").  A small domain lexicon
//! is enough for the synthetic corpus and keeps the scoring auditable.
//!
//! Membership tests run against static **sorted** tables (binary search) and
//! the "hashtag embeds an engagement word" rule against a small multi-pattern
//! substring matcher — the per-token costs on the analyzer hot path.  The
//! original linear-scan implementation survives verbatim in
//! [`crate::reference`] as the behavioural oracle; `lexicon_tables_are_sorted`
//! and the `psp-suite` property tests pin the two together.

use crate::stopwords::remove_stopwords;
use crate::token::tokenize;
use serde::{Deserialize, Serialize};

/// Words signalling that the author performed, wants or sells the attack
/// (ascending, for binary search).
const ENGAGEMENT_WORDS: [&str; 22] = [
    "bypass",
    "delete",
    "deleted",
    "disable",
    "disabled",
    "dm",
    "done",
    "emulator",
    "guide",
    "howto",
    "install",
    "installed",
    "kit",
    "off",
    "remap",
    "removal",
    "removed",
    "sale",
    "shipped",
    "tune",
    "tuned",
    "unlock",
];

/// Words signalling deterrence, warnings or enforcement (reduce the intent
/// score; ascending, for binary search).
const DETERRENT_WORDS: [&str; 12] = [
    "ban",
    "banned",
    "enforcement",
    "fine",
    "fined",
    "illegal",
    "inspection",
    "prosecuted",
    "recall",
    "refused",
    "warning",
    "warranty",
];

/// Words signalling a commercial offer (price talk boosts market relevance;
/// ascending, for binary search).
const COMMERCE_WORDS: [&str; 10] = [
    "buy", "deal", "eur", "euro", "invoice", "offer", "order", "price", "sale", "shipped",
];

/// The engagement words eligible for the embedded-substring rule (length >= 3),
/// grouped by first byte: `EMBED_BY_FIRST[b - b'a']` lists the patterns
/// starting with lowercase letter `b`.  [`embeds_engagement_word`] scans a
/// token once and only probes the patterns whose first byte matches — a
/// poor-man's Aho–Corasick sized for a 21-pattern lexicon.
const EMBED_BY_FIRST: [&[&str]; 26] = [
    &[],                                                   // a
    &["bypass"],                                           // b
    &[],                                                   // c
    &["delete", "deleted", "disable", "disabled", "done"], // d
    &["emulator"],                                         // e
    &[],                                                   // f
    &["guide"],                                            // g
    &["howto"],                                            // h
    &["install", "installed"],                             // i
    &[],                                                   // j
    &["kit"],                                              // k
    &[],                                                   // l
    &[],                                                   // m
    &[],                                                   // n
    &["off"],                                              // o
    &[],                                                   // p
    &[],                                                   // q
    &["remap", "removal", "removed"],                      // r
    &["sale", "shipped"],                                  // s
    &["tune", "tuned"],                                    // t
    &["unlock"],                                           // u
    &[],                                                   // v
    &[],                                                   // w
    &[],                                                   // x
    &[],                                                   // y
    &[],                                                   // z
];

/// Whether the (sigil-stripped) token is an engagement word — the per-table
/// oracle the merged-table test checks [`token_flags`] against.
#[cfg(test)]
fn is_engagement_word(bare: &str) -> bool {
    ENGAGEMENT_WORDS.binary_search(&bare).is_ok()
}

/// Whether the (sigil-stripped) token is a deterrent word.
#[cfg(test)]
fn is_deterrent_word(bare: &str) -> bool {
    DETERRENT_WORDS.binary_search(&bare).is_ok()
}

/// Whether the (sigil-stripped) token is a commerce word.
#[cfg(test)]
fn is_commerce_word(bare: &str) -> bool {
    COMMERCE_WORDS.binary_search(&bare).is_ok()
}

/// [`token_flags`] bit: the token is a stop word.
pub(crate) const TOKEN_STOP: u8 = 1;
/// [`token_flags`] bit: the token is an engagement word.
pub(crate) const TOKEN_ENGAGEMENT: u8 = 2;
/// [`token_flags`] bit: the token is a deterrent word.
pub(crate) const TOKEN_DETERRENT: u8 = 4;
/// [`token_flags`] bit: the token is a commerce word.
pub(crate) const TOKEN_COMMERCE: u8 = 8;

/// The merged word table: stop words and all three lexica in one sorted
/// array, so the analyzer hot path answers "stop word? engagement? deterrent?
/// commerce?" with a **single** binary search per token.  Built once from the
/// canonical tables (which stay the source of truth).
fn merged_word_table() -> &'static [(&'static str, u8)] {
    static TABLE: std::sync::OnceLock<Vec<(&'static str, u8)>> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table: Vec<(&'static str, u8)> = Vec::with_capacity(
            crate::stopwords::STOPWORDS.len()
                + ENGAGEMENT_WORDS.len()
                + DETERRENT_WORDS.len()
                + COMMERCE_WORDS.len(),
        );
        let mut add =
            |word: &'static str, flag: u8| match table.iter_mut().find(|(w, _)| *w == word) {
                Some((_, flags)) => *flags |= flag,
                None => table.push((word, flag)),
            };
        for w in crate::stopwords::STOPWORDS {
            add(w, TOKEN_STOP);
        }
        for w in ENGAGEMENT_WORDS {
            add(w, TOKEN_ENGAGEMENT);
        }
        for w in DETERRENT_WORDS {
            add(w, TOKEN_DETERRENT);
        }
        for w in COMMERCE_WORDS {
            add(w, TOKEN_COMMERCE);
        }
        table.sort_unstable_by_key(|(w, _)| *w);
        table
    })
}

/// The classification bits of one word — 0 when it is neither a stop word nor
/// in any lexicon.
#[must_use]
pub(crate) fn token_flags(word: &str) -> u8 {
    let table = merged_word_table();
    match table.binary_search_by(|(w, _)| (*w).cmp(word)) {
        Ok(i) => table[i].1,
        Err(_) => 0,
    }
}

/// Bit mask over `1 << (letter - b'a')` of the first letters of the embed
/// patterns — a one-AND prefilter before touching [`EMBED_BY_FIRST`].
const EMBED_FIRST_LETTERS: u32 = {
    let mut mask = 0_u32;
    let mut i = 0;
    while i < EMBED_BY_FIRST.len() {
        if !EMBED_BY_FIRST[i].is_empty() {
            mask |= 1 << i;
        }
        i += 1;
    }
    mask
};

/// Whether the token *strictly* embeds an engagement word of length >= 3 —
/// the "#dpfdelete embeds delete" rule.  A match covering the whole token is
/// excluded (that is plain membership, counted separately).  Byte-level
/// matching is exact for these ASCII patterns: in UTF-8 an ASCII byte never
/// occurs inside a multi-byte sequence, so byte containment equals substring
/// containment.
#[must_use]
pub(crate) fn embeds_engagement_word(bare: &str) -> bool {
    let bytes = bare.as_bytes();
    for start in 0..bytes.len() {
        let b = bytes[start];
        if !b.is_ascii_lowercase() || EMBED_FIRST_LETTERS & (1 << (b - b'a')) == 0 {
            continue;
        }
        for pattern in EMBED_BY_FIRST[(b - b'a') as usize] {
            let p = pattern.as_bytes();
            if bytes.len() - start >= p.len()
                && &bytes[start..start + p.len()] == p
                && !(start == 0 && p.len() == bytes.len())
            {
                return true;
            }
        }
    }
    false
}

/// The intent lexicon with adjustable weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntentLexicon {
    /// Weight of each engagement word hit.
    pub engagement_weight: f64,
    /// Weight (negative contribution) of each deterrent word hit.
    pub deterrent_weight: f64,
    /// Weight of each commerce word hit.
    pub commerce_weight: f64,
}

impl Default for IntentLexicon {
    fn default() -> Self {
        Self {
            engagement_weight: 1.0,
            deterrent_weight: 0.8,
            commerce_weight: 0.5,
        }
    }
}

/// The scored breakdown of one text.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IntentScore {
    /// Number of engagement-word hits.
    pub engagement_hits: usize,
    /// Number of deterrent-word hits.
    pub deterrent_hits: usize,
    /// Number of commerce-word hits.
    pub commerce_hits: usize,
    /// The combined score (≥ 0, higher = stronger tampering/commercial intent).
    pub score: f64,
}

impl IntentLexicon {
    /// Creates the default lexicon.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one (stop-word-filtered, sigil-stripped) token into the hit
    /// counters — the shared per-token step of [`score`](Self::score) and the
    /// single-pass analyzer.
    pub(crate) fn count_token(bare: &str, out: &mut IntentScore) {
        Self::count_flags(token_flags(bare), bare, out);
    }

    /// [`count_token`](Self::count_token) with the merged-table flags already
    /// looked up (the analyzer resolves them while deciding stop-word
    /// filtering, so membership is paid exactly once per token).
    pub(crate) fn count_flags(flags: u8, bare: &str, out: &mut IntentScore) {
        if flags & TOKEN_ENGAGEMENT != 0 {
            out.engagement_hits += 1;
        }
        if flags & TOKEN_DETERRENT != 0 {
            out.deterrent_hits += 1;
        }
        if flags & TOKEN_COMMERCE != 0 {
            out.commerce_hits += 1;
        }
        // Hashtags embedding an engagement word ("#dpfdelete") count as well.
        if bare.len() > 3 && embeds_engagement_word(bare) {
            out.engagement_hits += 1;
        }
    }

    /// Combines the accumulated hit counters into the final weighted score.
    pub(crate) fn finish(&self, out: &mut IntentScore) {
        let raw = self.engagement_weight * out.engagement_hits as f64
            + self.commerce_weight * out.commerce_hits as f64
            - self.deterrent_weight * out.deterrent_hits as f64;
        out.score = raw.max(0.0);
    }

    /// Scores a text.
    #[must_use]
    pub fn score(&self, text: &str) -> IntentScore {
        let tokens = remove_stopwords(&tokenize(text));
        let mut out = IntentScore::default();
        for token in &tokens {
            let bare = token.trim_start_matches(['#', '@']);
            Self::count_token(bare, &mut out);
        }
        self.finish(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sale_post_scores_higher_than_news_post() {
        let lex = IntentLexicon::new();
        let sale = lex.score("DPF delete kit for sale, 360 EUR shipped, install guide included");
        let news =
            lex.score("Authorities warn that defeat devices are illegal and owners get fined");
        assert!(sale.score > news.score);
        assert!(sale.engagement_hits >= 2);
        assert!(news.deterrent_hits >= 2);
    }

    #[test]
    fn hashtag_with_embedded_intent_counts() {
        let lex = IntentLexicon::new();
        let s = lex.score("finally #dpfdelete on the excavator");
        assert!(s.engagement_hits >= 1);
        assert!(s.score > 0.0);
    }

    #[test]
    fn score_never_goes_negative() {
        let lex = IntentLexicon::new();
        let s = lex.score("illegal banned fined recall warning");
        assert_eq!(s.score, 0.0);
    }

    #[test]
    fn empty_text_scores_zero() {
        let s = IntentLexicon::new().score("");
        assert_eq!(s.score, 0.0);
        assert_eq!(s.engagement_hits, 0);
    }

    #[test]
    fn custom_weights_change_the_balance() {
        let strict = IntentLexicon {
            deterrent_weight: 10.0,
            ..IntentLexicon::default()
        };
        let text = "delete kit for sale but it is illegal";
        assert!(strict.score(text).score < IntentLexicon::new().score(text).score);
    }

    #[test]
    fn commerce_words_contribute() {
        let s = IntentLexicon::new().score("best price, buy now, 200 eur offer");
        assert!(s.commerce_hits >= 3);
        assert!(s.score > 0.0);
    }

    #[test]
    fn lexicon_tables_are_sorted() {
        // Strictly ascending — the precondition binary search relies on.
        for table in [
            &ENGAGEMENT_WORDS[..],
            &DETERRENT_WORDS[..],
            &COMMERCE_WORDS[..],
        ] {
            assert!(
                table.windows(2).all(|w| w[0] < w[1]),
                "lexicon table not strictly ascending: {table:?}"
            );
        }
    }

    #[test]
    fn embed_groups_cover_exactly_the_long_engagement_words() {
        // Every engagement word of length >= 3 appears in its first-letter
        // group, nothing else does, and each group is correctly bucketed.
        let mut grouped: Vec<&str> = Vec::new();
        for (i, group) in EMBED_BY_FIRST.iter().enumerate() {
            for pattern in *group {
                assert_eq!(pattern.as_bytes()[0], b'a' + i as u8, "{pattern}");
                grouped.push(pattern);
            }
        }
        grouped.sort_unstable();
        let mut expected: Vec<&str> = ENGAGEMENT_WORDS
            .iter()
            .copied()
            .filter(|w| w.len() >= 3)
            .collect();
        expected.sort_unstable();
        assert_eq!(grouped, expected);
    }

    #[test]
    fn merged_table_agrees_with_the_source_tables() {
        let table = merged_word_table();
        assert!(
            table.windows(2).all(|w| w[0].0 < w[1].0),
            "merged table must be strictly ascending"
        );
        let all: Vec<&str> = crate::stopwords::STOPWORDS
            .iter()
            .chain(&ENGAGEMENT_WORDS)
            .chain(&DETERRENT_WORDS)
            .chain(&COMMERCE_WORDS)
            .copied()
            .chain(["dpf", "#dpfdelete", "", "zzz"])
            .collect();
        for word in all {
            let flags = token_flags(word);
            assert_eq!(
                flags & TOKEN_STOP != 0,
                crate::stopwords::is_stopword(word),
                "{word}"
            );
            assert_eq!(
                flags & TOKEN_ENGAGEMENT != 0,
                is_engagement_word(word),
                "{word}"
            );
            assert_eq!(
                flags & TOKEN_DETERRENT != 0,
                is_deterrent_word(word),
                "{word}"
            );
            assert_eq!(
                flags & TOKEN_COMMERCE != 0,
                is_commerce_word(word),
                "{word}"
            );
        }
    }

    #[test]
    fn embed_matcher_agrees_with_the_naive_contains_rule() {
        for bare in [
            "dpfdelete",
            "egroff",
            "delete",
            "deleted",
            "offoff",
            "xxkitxx",
            "quarry",
            "installations",
            "ban",
            "ölwechsel",
            "dm",
            "dmdm",
            "#notbare",
            "tunedin",
        ] {
            let naive = ENGAGEMENT_WORDS
                .iter()
                .any(|w| w.len() >= 3 && bare.contains(w) && bare != *w);
            assert_eq!(embeds_engagement_word(bare), naive, "{bare}");
        }
    }
}
