//! Price extraction from free text.
//!
//! The PPIA estimation of the financial model (paper Figure 10, block 2) clusters
//! "adversary devices or services found online based on their prices".  This module
//! pulls candidate prices out of post text without a regex dependency: it scans for
//! numeric tokens adjacent to a currency marker (`EUR`, `euro`, `€`, `$`, `USD`).
//!
//! The scan is allocation-lean: tokens are byte spans borrowed from the raw
//! text (no padded copy, no per-token `String`), currency markers match via
//! [`str::eq_ignore_ascii_case`] against a static list, and plain numeric
//! tokens parse without the comma-normalising copy.  The original implementation
//! survives verbatim in [`crate::reference`] as the behavioural oracle.

/// A byte range into a source string (start, end).
pub(crate) type Span = (u32, u32);

/// Extracts prices (in the order they appear) from a text.  A number counts as a
/// price when a currency marker directly precedes or follows it.
///
/// # Examples
///
/// ```
/// use textmine::price::extract_prices;
/// assert_eq!(extract_prices("kit 360 EUR shipped"), vec![360.0]);
/// assert_eq!(extract_prices("was €420, now $399"), vec![420.0, 399.0]);
/// assert!(extract_prices("adds 40 hp").is_empty());
/// ```
#[must_use]
pub fn extract_prices(text: &str) -> Vec<f64> {
    prices_from_spans(text, &price_token_spans(text))
}

/// Splits raw text into price-token spans: whitespace-separated runs with the
/// currency symbols `€`/`$`/`£` split out as their own tokens, trimmed of
/// `,.!?:` at both ends, empties dropped.  This mirrors (span-for-span) what
/// padding the symbols with spaces and `split_whitespace` would produce.
pub(crate) fn price_token_spans(text: &str) -> Vec<Span> {
    let mut tokenizer = PriceTokenizer::new();
    let mut spans = Vec::new();
    for (i, c) in text.char_indices() {
        tokenizer.feed(text, i, c, &mut spans);
    }
    tokenizer.finish(text, &mut spans);
    spans
}

/// The price-token splitting state machine, one character at a time — shared
/// between [`price_token_spans`] and the analyzer's fused scan so the
/// splitting rules can never drift apart between the two.
#[derive(Debug, Default)]
pub(crate) struct PriceTokenizer {
    /// Byte offset where the current (non-currency) token run began.
    start: Option<usize>,
}

impl PriceTokenizer {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Consumes the character at byte offset `i`, closing and recording spans
    /// as token boundaries appear.
    pub(crate) fn feed(&mut self, text: &str, i: usize, c: char, spans: &mut Vec<Span>) {
        if c.is_whitespace() {
            if let Some(s) = self.start.take() {
                push_price_span(text.as_bytes(), s, i, spans);
            }
        } else if matches!(c, '€' | '$' | '£') {
            if let Some(s) = self.start.take() {
                push_price_span(text.as_bytes(), s, i, spans);
            }
            spans.push((i as u32, (i + c.len_utf8()) as u32));
        } else if self.start.is_none() {
            self.start = Some(i);
        }
    }

    /// Flushes the trailing token run, if any.
    pub(crate) fn finish(&mut self, text: &str, spans: &mut Vec<Span>) {
        if let Some(s) = self.start.take() {
            push_price_span(text.as_bytes(), s, text.len(), spans);
        }
    }
}

/// Trims `,.!?:` bytes from both ends of `bytes[start..end]` and records the
/// span when anything is left.  The trimmed bytes are ASCII, so byte-level
/// trimming cannot split a multi-byte character.
fn push_price_span(bytes: &[u8], start: usize, end: usize, spans: &mut Vec<Span>) {
    let (mut s, mut e) = (start, end);
    while s < e && matches!(bytes[s], b',' | b'.' | b'!' | b'?' | b':') {
        s += 1;
    }
    while e > s && matches!(bytes[e - 1], b',' | b'.' | b'!' | b'?' | b':') {
        e -= 1;
    }
    if s < e {
        spans.push((s as u32, e as u32));
    }
}

/// The currency-adjacency pass over pre-split price tokens: a numeric token
/// whose direct neighbour is a currency marker is a price.
pub(crate) fn prices_from_spans(text: &str, spans: &[Span]) -> Vec<f64> {
    let token = |span: Span| &text[span.0 as usize..span.1 as usize];
    let mut out = Vec::new();
    for (i, span) in spans.iter().enumerate() {
        let Some(value) = parse_number(token(*span)) else {
            continue;
        };
        let prev_is_currency = i > 0 && is_currency(token(spans[i - 1]));
        let next_is_currency = i + 1 < spans.len() && is_currency(token(spans[i + 1]));
        if prev_is_currency || next_is_currency {
            out.push(value);
        }
    }
    out
}

/// The representative price of a list of observations: the median, which is robust
/// against the occasional troll listing ("1 EUR") and scam listing ("9999 EUR").
#[must_use]
pub fn representative_price(prices: &[f64]) -> Option<f64> {
    if prices.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = prices.iter().copied().filter(|p| p.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        Some(sorted[mid])
    } else {
        Some((sorted[mid - 1] + sorted[mid]) / 2.0)
    }
}

/// Whether a token is a currency marker.  Word markers compare with
/// `eq_ignore_ascii_case` instead of allocating a lowercased copy — exact for
/// this list, because no non-ASCII character Unicode-lowercases into the ASCII
/// letters these markers use (the only such mappings are `K`→`k` and `Å`→`å`).
fn is_currency(token: &str) -> bool {
    matches!(token, "€" | "$" | "£")
        || ["eur", "euro", "euros", "usd", "gbp"]
            .iter()
            .any(|w| token.eq_ignore_ascii_case(w))
}

fn parse_number(token: &str) -> Option<f64> {
    // Reject tokens with letters ("40hp").
    if token.chars().any(char::is_alphabetic) {
        return None;
    }
    let commas = token.bytes().filter(|b| *b == b',').count();
    let dots = token.bytes().filter(|b| *b == b'.').count();
    let candidate: std::borrow::Cow<'_, str> = if commas + dots <= 1 {
        if commas == 1 {
            // One decimal comma ("359,99") — normalise to a dot.
            std::borrow::Cow::Owned(token.replace(',', "."))
        } else {
            // The common case: plain digits or one dot — parse in place.
            std::borrow::Cow::Borrowed(token)
        }
    } else {
        // Collapse thousands separators like "1.299.00" -> treat the last dot
        // (after comma normalisation) as the decimal separator.
        let normalized = token.replace(',', ".");
        let parts: Vec<&str> = normalized.split('.').collect();
        std::borrow::Cow::Owned(format!(
            "{}.{}",
            parts[..parts.len() - 1].concat(),
            parts[parts.len() - 1]
        ))
    };
    candidate
        .parse::<f64>()
        .ok()
        .filter(|v| *v > 0.0 && *v < 1_000_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn currency_after_number() {
        assert_eq!(extract_prices("dpf delete 360 EUR shipped"), vec![360.0]);
    }

    #[test]
    fn currency_symbol_before_number() {
        assert_eq!(extract_prices("special offer €299 this week"), vec![299.0]);
    }

    #[test]
    fn multiple_prices_in_order() {
        assert_eq!(
            extract_prices("was €420, now 360 EUR or $399"),
            vec![420.0, 360.0, 399.0]
        );
    }

    #[test]
    fn plain_numbers_are_not_prices() {
        assert!(extract_prices("stage 1 adds 40 hp at 3500 rpm").is_empty());
    }

    #[test]
    fn decimal_prices_parse() {
        assert_eq!(extract_prices("only 359,99 EUR"), vec![359.99]);
        assert_eq!(extract_prices("only 359.99 EUR"), vec![359.99]);
    }

    #[test]
    fn absurd_values_are_rejected() {
        assert!(extract_prices("9999999999 EUR").is_empty());
        assert!(extract_prices("0 EUR").is_empty());
    }

    #[test]
    fn median_is_robust() {
        assert_eq!(
            representative_price(&[360.0, 380.0, 1.0, 9999.0, 350.0]),
            Some(360.0)
        );
        assert_eq!(representative_price(&[100.0, 200.0]), Some(150.0));
        assert_eq!(representative_price(&[]), None);
    }

    #[test]
    fn euro_word_forms() {
        assert_eq!(extract_prices("price 250 euro obo"), vec![250.0]);
        assert_eq!(extract_prices("price 250 euros obo"), vec![250.0]);
    }

    #[test]
    fn currency_matching_is_case_insensitive_without_allocating() {
        for t in ["EUR", "eur", "EuRo", "USD", "gbp", "€", "$", "£"] {
            assert!(is_currency(t), "{t}");
        }
        for t in ["EU", "eurx", "", "e", "₿"] {
            assert!(!is_currency(t), "{t}");
        }
    }

    #[test]
    fn token_spans_match_the_padded_split() {
        // Span-based tokenisation must agree with the original pad-then-split.
        for text in [
            "was €420, now 360 EUR or $399",
            "kit,360 EUR",
            "!!£50!! ... : only",
            "a€b",
            "",
            "   ",
            "€€",
        ] {
            let via_spans: Vec<&str> = price_token_spans(text)
                .iter()
                .map(|s| &text[s.0 as usize..s.1 as usize])
                .collect();
            let padded: String = text
                .chars()
                .map(|c| {
                    if c == '€' || c == '$' || c == '£' {
                        format!(" {c} ")
                    } else {
                        c.to_string()
                    }
                })
                .collect();
            let via_padding: Vec<String> = padded
                .split_whitespace()
                .map(|t| {
                    t.trim_matches(|c: char| {
                        c == ',' || c == '.' || c == '!' || c == '?' || c == ':'
                    })
                    .to_string()
                })
                .filter(|t| !t.is_empty())
                .collect();
            assert_eq!(via_spans, via_padding, "{text:?}");
        }
    }

    #[test]
    fn mixed_separator_numbers_still_parse() {
        assert_eq!(extract_prices("1.299,00 EUR firm"), vec![1299.0]);
        assert_eq!(extract_prices("1.299.00 EUR firm"), vec![1299.0]);
    }
}
