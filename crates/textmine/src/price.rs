//! Price extraction from free text.
//!
//! The PPIA estimation of the financial model (paper Figure 10, block 2) clusters
//! "adversary devices or services found online based on their prices".  This module
//! pulls candidate prices out of post text without a regex dependency: it scans for
//! numeric tokens adjacent to a currency marker (`EUR`, `euro`, `€`, `$`, `USD`).

/// Extracts prices (in the order they appear) from a text.  A number counts as a
/// price when a currency marker directly precedes or follows it.
///
/// # Examples
///
/// ```
/// use textmine::price::extract_prices;
/// assert_eq!(extract_prices("kit 360 EUR shipped"), vec![360.0]);
/// assert_eq!(extract_prices("was €420, now $399"), vec![420.0, 399.0]);
/// assert!(extract_prices("adds 40 hp").is_empty());
/// ```
#[must_use]
pub fn extract_prices(text: &str) -> Vec<f64> {
    let cleaned: String = text
        .chars()
        .map(|c| {
            if c == '€' || c == '$' || c == '£' {
                // Pad currency symbols so "€420" splits into two tokens.
                format!(" {c} ")
            } else {
                c.to_string()
            }
        })
        .collect();
    let tokens: Vec<String> = cleaned
        .split_whitespace()
        .map(|t| {
            t.trim_matches(|c: char| c == ',' || c == '.' || c == '!' || c == '?' || c == ':')
                .to_string()
        })
        .filter(|t| !t.is_empty())
        .collect();

    let mut out = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        let Some(value) = parse_number(token) else {
            continue;
        };
        let prev_is_currency = i > 0 && is_currency(&tokens[i - 1]);
        let next_is_currency = i + 1 < tokens.len() && is_currency(&tokens[i + 1]);
        if prev_is_currency || next_is_currency {
            out.push(value);
        }
    }
    out
}

/// The representative price of a list of observations: the median, which is robust
/// against the occasional troll listing ("1 EUR") and scam listing ("9999 EUR").
#[must_use]
pub fn representative_price(prices: &[f64]) -> Option<f64> {
    if prices.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = prices.iter().copied().filter(|p| p.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        Some(sorted[mid])
    } else {
        Some((sorted[mid - 1] + sorted[mid]) / 2.0)
    }
}

fn is_currency(token: &str) -> bool {
    matches!(
        token.to_lowercase().as_str(),
        "eur" | "euro" | "euros" | "€" | "$" | "usd" | "£" | "gbp"
    )
}

fn parse_number(token: &str) -> Option<f64> {
    let normalized = token.replace(',', ".");
    // Reject tokens with letters ("40hp").
    if normalized.chars().any(|c| c.is_alphabetic()) {
        return None;
    }
    // Collapse thousands separators like "1.299.00" -> treat the last dot as decimal.
    let parts: Vec<&str> = normalized.split('.').collect();
    let candidate = if parts.len() > 2 {
        format!(
            "{}.{}",
            parts[..parts.len() - 1].concat(),
            parts[parts.len() - 1]
        )
    } else {
        normalized
    };
    candidate
        .parse::<f64>()
        .ok()
        .filter(|v| *v > 0.0 && *v < 1_000_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn currency_after_number() {
        assert_eq!(extract_prices("dpf delete 360 EUR shipped"), vec![360.0]);
    }

    #[test]
    fn currency_symbol_before_number() {
        assert_eq!(extract_prices("special offer €299 this week"), vec![299.0]);
    }

    #[test]
    fn multiple_prices_in_order() {
        assert_eq!(
            extract_prices("was €420, now 360 EUR or $399"),
            vec![420.0, 360.0, 399.0]
        );
    }

    #[test]
    fn plain_numbers_are_not_prices() {
        assert!(extract_prices("stage 1 adds 40 hp at 3500 rpm").is_empty());
    }

    #[test]
    fn decimal_prices_parse() {
        assert_eq!(extract_prices("only 359,99 EUR"), vec![359.99]);
        assert_eq!(extract_prices("only 359.99 EUR"), vec![359.99]);
    }

    #[test]
    fn absurd_values_are_rejected() {
        assert!(extract_prices("9999999999 EUR").is_empty());
        assert!(extract_prices("0 EUR").is_empty());
    }

    #[test]
    fn median_is_robust() {
        assert_eq!(
            representative_price(&[360.0, 380.0, 1.0, 9999.0, 350.0]),
            Some(360.0)
        );
        assert_eq!(representative_price(&[100.0, 200.0]), Some(150.0));
        assert_eq!(representative_price(&[]), None);
    }

    #[test]
    fn euro_word_forms() {
        assert_eq!(extract_prices("price 250 euro obo"), vec![250.0]);
        assert_eq!(extract_prices("price 250 euros obo"), vec![250.0]);
    }
}
