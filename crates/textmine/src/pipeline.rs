//! The combined document-analysis pipeline.
//!
//! One call per post: tokenise, strip stop words, score intent, extract hashtags and
//! prices.  The PSP SAI computation consumes [`DocumentAnalysis`] records instead of
//! re-running the individual steps.

use crate::price::extract_prices;
use crate::sentiment::{IntentLexicon, IntentScore};
use crate::stopwords::remove_stopwords;
use crate::token::{hashtags, tokenize};
use serde::{Deserialize, Serialize};

/// The result of analysing one document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DocumentAnalysis {
    /// Content tokens after stop-word removal.
    pub tokens: Vec<String>,
    /// Hashtags (without `#`).
    pub hashtags: Vec<String>,
    /// Prices found in the text.
    pub prices: Vec<f64>,
    /// The intent score.
    pub intent: IntentScore,
}

impl DocumentAnalysis {
    /// Whether the document advertises something for money.
    #[must_use]
    pub fn is_commercial(&self) -> bool {
        !self.prices.is_empty() || self.intent.commerce_hits > 0
    }
}

/// The reusable pipeline (owns the lexicon configuration).
#[derive(Debug, Clone, Default)]
pub struct TextPipeline {
    lexicon: IntentLexicon,
}

impl TextPipeline {
    /// Creates a pipeline with the default lexicon.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a pipeline with a custom lexicon.
    #[must_use]
    pub fn with_lexicon(lexicon: IntentLexicon) -> Self {
        Self { lexicon }
    }

    /// Analyses one document.
    #[must_use]
    pub fn analyze(&self, text: &str) -> DocumentAnalysis {
        DocumentAnalysis {
            tokens: remove_stopwords(&tokenize(text)),
            hashtags: hashtags(text),
            prices: extract_prices(text),
            intent: self.lexicon.score(text),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_analysis_of_a_sale_post() {
        let pipeline = TextPipeline::new();
        let a =
            pipeline.analyze("#DPFDelete kit for sale, 360 EUR shipped, install guide included");
        assert!(a.hashtags.contains(&"dpfdelete".to_string()));
        assert_eq!(a.prices, vec![360.0]);
        assert!(a.intent.score > 0.0);
        assert!(a.is_commercial());
    }

    #[test]
    fn neutral_post_is_not_commercial() {
        let a = TextPipeline::new().analyze("Nice weather at the quarry today");
        assert!(a.prices.is_empty());
        assert!(!a.is_commercial());
        assert!(a.hashtags.is_empty());
    }

    #[test]
    fn stopwords_removed_from_tokens() {
        let a = TextPipeline::new().analyze("the delete is done");
        assert!(!a.tokens.contains(&"the".to_string()));
        assert!(a.tokens.contains(&"delete".to_string()));
    }

    #[test]
    fn custom_lexicon_is_honoured() {
        let harsh = IntentLexicon {
            engagement_weight: 0.0,
            commerce_weight: 0.0,
            deterrent_weight: 1.0,
        };
        let a = TextPipeline::with_lexicon(harsh).analyze("delete kit for sale");
        assert_eq!(a.intent.score, 0.0);
    }

    #[test]
    fn empty_document() {
        let a = TextPipeline::new().analyze("");
        assert!(a.tokens.is_empty());
        assert!(a.hashtags.is_empty());
        assert!(a.prices.is_empty());
        assert_eq!(a.intent.score, 0.0);
    }
}
