//! The combined document-analysis pipeline.
//!
//! One call per post: tokenise, strip stop words, score intent, extract hashtags and
//! prices.  The PSP SAI computation consumes [`DocumentAnalysis`] records instead of
//! re-running the individual steps.
//!
//! # Single-pass analysis
//!
//! The seed implementation ran **four** independent passes per document —
//! tokens, hashtags, prices, intent — each re-normalising the text into a
//! fresh lowercased `String`, materialising a `Vec<String>` of tokens, and
//! scanning the lexicon arrays linearly per token.  [`TextPipeline::analyze`]
//! now makes **one** fused pass over the raw characters that simultaneously
//!
//! * builds the normalised text as a [`Cow`] (staying **borrowed** while the
//!   input is already in normal form — see
//!   [`crate::normalize::normalize_cow`]),
//! * records the trimmed, filtered token boundaries as byte spans into the
//!   normalised text (no per-token `String`), and
//! * records the raw-text price-token spans (whitespace splits with `€`/`$`/`£`
//!   as standalone tokens) for the currency-adjacency scan.
//!
//! Stop-word filtering, intent scoring (sorted tables + the embedded-substring
//! matcher, [`crate::sentiment`]) and hashtag extraction then consume the
//! borrowed spans in one walk; price parsing folds the raw spans without
//! re-tokenising.  [`TextPipeline::signals`] is the engine-facing entry point
//! that skips materialising token/hashtag strings entirely.
//!
//! The original multi-pass implementation is frozen in [`crate::reference`];
//! the `psp-suite` property tests pin the two **bit-identical** on arbitrary
//! inputs, and [`TextPipeline::reference`] builds a pipeline that dispatches
//! to it (the oracle/baseline mode used by tests and the `text_pipeline`
//! bench).

use crate::price;
use crate::sentiment;
use crate::sentiment::{IntentLexicon, IntentScore};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// The result of analysing one document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DocumentAnalysis {
    /// Content tokens after stop-word removal.
    pub tokens: Vec<String>,
    /// Hashtags (without `#`).
    pub hashtags: Vec<String>,
    /// Prices found in the text.
    pub prices: Vec<f64>,
    /// The intent score.
    pub intent: IntentScore,
}

impl DocumentAnalysis {
    /// Whether the document advertises something for money.
    #[must_use]
    pub fn is_commercial(&self) -> bool {
        !self.prices.is_empty() || self.intent.commerce_hits > 0
    }
}

/// The lean per-document output the scoring engines consume: intent and mined
/// prices only — no token or hashtag strings are materialised on this path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TextSignals {
    /// The intent score.
    pub intent: IntentScore,
    /// Prices found in the text, in extraction order.
    pub prices: Vec<f64>,
}

/// The reusable pipeline (owns the lexicon configuration).
#[derive(Debug, Clone, Default)]
pub struct TextPipeline {
    lexicon: IntentLexicon,
    /// Dispatch to the frozen multi-pass implementation in
    /// [`crate::reference`] instead of the single-pass scan.
    reference: bool,
}

impl TextPipeline {
    /// Creates a pipeline with the default lexicon.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a pipeline with a custom lexicon.
    #[must_use]
    pub fn with_lexicon(lexicon: IntentLexicon) -> Self {
        Self {
            lexicon,
            reference: false,
        }
    }

    /// Creates a pipeline (default lexicon) that runs the frozen **multi-pass
    /// reference implementation** ([`crate::reference`]) instead of the
    /// single-pass scan.  Property tests pin both modes bit-identical; the
    /// `text_pipeline` bench uses this mode as its seed baseline.
    #[must_use]
    pub fn reference() -> Self {
        Self {
            lexicon: IntentLexicon::default(),
            reference: true,
        }
    }

    /// The lexicon this pipeline scores with.
    #[must_use]
    pub fn lexicon(&self) -> &IntentLexicon {
        &self.lexicon
    }

    /// Whether this pipeline dispatches to the reference implementation.
    #[must_use]
    pub fn is_reference(&self) -> bool {
        self.reference
    }

    /// Analyses one document.
    #[must_use]
    pub fn analyze(&self, text: &str) -> DocumentAnalysis {
        if self.reference {
            return crate::reference::analyze(&self.lexicon, text);
        }
        let mut intent = IntentScore::default();
        let mut tokens = Vec::new();
        let mut hashtags = Vec::new();
        let scan = scan(text, |token| {
            if fold_token(token, &mut intent) {
                tokens.push(token.to_string());
                if let Some(tag) = token.strip_prefix('#') {
                    if !tag.is_empty() {
                        hashtags.push(tag.to_string());
                    }
                }
            }
        });
        self.lexicon.finish(&mut intent);
        DocumentAnalysis {
            tokens,
            hashtags,
            prices: price::prices_from_spans(text, &scan.price_tokens),
            intent,
        }
    }

    /// Analyses one document for the scoring hot path: same single pass as
    /// [`analyze`](Self::analyze), but token and hashtag strings are never
    /// materialised — only the intent score and the mined prices come back.
    #[must_use]
    pub fn signals(&self, text: &str) -> TextSignals {
        if self.reference {
            let analysis = crate::reference::analyze(&self.lexicon, text);
            return TextSignals {
                intent: analysis.intent,
                prices: analysis.prices,
            };
        }
        let mut intent = IntentScore::default();
        let scan = scan(text, |token| {
            fold_token(token, &mut intent);
        });
        self.lexicon.finish(&mut intent);
        TextSignals {
            intent,
            prices: price::prices_from_spans(text, &scan.price_tokens),
        }
    }
}

/// One token's share of the analysis: a single merged-table probe answers
/// stop-word filtering and lexicon membership together, then the embed rule
/// runs on the sigil-stripped form.  Returns whether the token survives
/// stop-word removal.
fn fold_token(token: &str, intent: &mut IntentScore) -> bool {
    if token.starts_with(['#', '@']) {
        // Sigil tokens are never stop words (stop words carry no sigil), and
        // the lexicon sees them without their leading sigils.
        let bare = token.trim_start_matches(['#', '@']);
        IntentLexicon::count_flags(sentiment::token_flags(bare), bare, intent);
        true
    } else {
        let flags = sentiment::token_flags(token);
        if flags & sentiment::TOKEN_STOP != 0 {
            return false;
        }
        IntentLexicon::count_flags(flags, token, intent);
        true
    }
}

/// The borrowed result of the fused scan: the normalised text and the
/// raw-text price-token spans.  The normalised tokens themselves are streamed
/// to the scan's callback as they close — no span list is materialised.
struct DocScan<'t> {
    /// Consumed only by the equivalence tests
    /// (`scan_normalisation_matches_normalize`); production callers take the
    /// streamed tokens and the price spans.
    #[cfg_attr(not(test), allow(dead_code))]
    normalized: Cow<'t, str>,
    /// Byte ranges into the **raw** text (see
    /// [`price::price_token_spans`] for the splitting rules).
    price_tokens: Vec<price::Span>,
}

/// Copy-on-divergence: returns the owned output buffer, materialising it from
/// the (still identical) input prefix on first use.
fn materialize<'a>(owned: &'a mut Option<String>, text: &str, out_len: usize) -> &'a mut String {
    owned.get_or_insert_with(|| {
        let mut buf = String::with_capacity(text.len());
        buf.push_str(&text[..out_len]);
        buf
    })
}

/// Trims `.`/`,` from both ends of the closing token and hands it to the
/// callback unless nothing (or only a bare `#`/`@` sigil) is left — the
/// streaming equivalent of `trim_matches` + the tokenizer's filter.
fn emit_token(output: &str, start: usize, end: usize, on_token: &mut impl FnMut(&str)) {
    let bytes = output.as_bytes();
    let (mut s, mut e) = (start, end);
    while s < e && matches!(bytes[s], b'.' | b',') {
        s += 1;
    }
    while e > s && matches!(bytes[e - 1], b'.' | b',') {
        e -= 1;
    }
    if s == e || (e - s == 1 && matches!(bytes[s], b'#' | b'@')) {
        return;
    }
    on_token(&output[s..e]);
}

/// The fused single pass over the raw characters: normalisation (with the
/// borrowed fast path), the normalised token stream and the raw price-token
/// spans all come out of one traversal.  Mirrors
/// [`crate::normalize::normalize`] and [`price::price_token_spans`] exactly —
/// the `psp-suite` property tests hold the three together.
fn scan(text: &str, mut on_token: impl FnMut(&str)) -> DocScan<'_> {
    // Normalisation state.
    let mut owned: Option<String> = None; // `Some` once the output diverges from the input
    let mut out_len = 0_usize; // output bytes so far (== input offset while borrowed)
    let mut last_was_space = true;
    let mut prev_is_digit = false;
    // Normalised-token state.
    let mut tok_start: Option<usize> = None;
    // Raw price-token state.
    let mut price_tokens: Vec<price::Span> = Vec::new();
    let mut price_tokenizer = price::PriceTokenizer::new();

    for (i, c) in text.char_indices() {
        // --- price tokenisation over the raw text -------------------------
        price_tokenizer.feed(text, i, c, &mut price_tokens);

        // --- normalisation + token spans ----------------------------------
        let is_word = if c.is_ascii() {
            c.is_ascii_alphanumeric() || c == '#' || c == '@'
        } else {
            c.is_alphanumeric()
        };
        if is_word {
            if tok_start.is_none() {
                tok_start = Some(out_len);
            }
            if c.is_ascii() {
                // ASCII fast path: lowercasing is a single-byte map, no
                // Unicode table walk, no `ToLowercase` iterator.
                let lower = c.to_ascii_lowercase();
                if owned.is_none() && lower == c {
                    out_len += 1;
                } else {
                    let buf = materialize(&mut owned, text, out_len);
                    buf.push(lower);
                    out_len = buf.len();
                }
                prev_is_digit = c.is_ascii_digit();
            } else {
                // The output stays byte-identical to the input only while
                // lowercasing maps each character to itself.
                let identity = {
                    let mut lower = c.to_lowercase();
                    lower.next() == Some(c) && lower.next().is_none()
                };
                if owned.is_none() && identity {
                    out_len += c.len_utf8();
                } else {
                    let buf = materialize(&mut owned, text, out_len);
                    for lc in c.to_lowercase() {
                        buf.push(lc);
                    }
                    out_len = buf.len();
                }
                // No non-ASCII character lowercases into an ASCII digit.
                prev_is_digit = false;
            }
            last_was_space = false;
        } else if c == '.' || c == ',' {
            if prev_is_digit {
                // Kept as a decimal separator — token content.
                match &mut owned {
                    None => out_len += 1,
                    Some(buf) => {
                        buf.push(c);
                        out_len = buf.len();
                    }
                }
                prev_is_digit = false;
                last_was_space = false;
            } else if !last_was_space {
                // Collapses into a separator space (diverges from the input).
                if let Some(s) = tok_start.take() {
                    emit_token(owned.as_deref().unwrap_or(text), s, out_len, &mut on_token);
                }
                let buf = materialize(&mut owned, text, out_len);
                buf.push(' ');
                out_len = buf.len();
                prev_is_digit = false;
                last_was_space = true;
            } else {
                // Dropped outright (diverges from the input).
                materialize(&mut owned, text, out_len);
            }
        } else if !last_was_space {
            // First separator after a token: emit one space.
            if let Some(s) = tok_start.take() {
                emit_token(owned.as_deref().unwrap_or(text), s, out_len, &mut on_token);
            }
            if owned.is_none() && c == ' ' {
                out_len += 1;
            } else {
                let buf = materialize(&mut owned, text, out_len);
                buf.push(' ');
                out_len = buf.len();
            }
            prev_is_digit = false;
            last_was_space = true;
        } else if owned.is_none() {
            // A dropped separator (leading or repeated) diverges from the input.
            materialize(&mut owned, text, out_len);
        }
    }

    price_tokenizer.finish(text, &mut price_tokens);
    if let Some(s) = tok_start.take() {
        emit_token(owned.as_deref().unwrap_or(text), s, out_len, &mut on_token);
    }
    let normalized = match owned {
        Some(mut buf) => {
            // At most one trailing space can survive (separators collapse).
            if buf.ends_with(' ') {
                buf.pop();
            }
            Cow::Owned(buf)
        }
        None => {
            let end = if last_was_space && out_len > 0 {
                out_len - 1
            } else {
                out_len
            };
            Cow::Borrowed(&text[..end])
        }
    };
    DocScan {
        normalized,
        price_tokens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use crate::reference;

    #[test]
    fn full_analysis_of_a_sale_post() {
        let pipeline = TextPipeline::new();
        let a =
            pipeline.analyze("#DPFDelete kit for sale, 360 EUR shipped, install guide included");
        assert!(a.hashtags.contains(&"dpfdelete".to_string()));
        assert_eq!(a.prices, vec![360.0]);
        assert!(a.intent.score > 0.0);
        assert!(a.is_commercial());
    }

    #[test]
    fn neutral_post_is_not_commercial() {
        let a = TextPipeline::new().analyze("Nice weather at the quarry today");
        assert!(a.prices.is_empty());
        assert!(!a.is_commercial());
        assert!(a.hashtags.is_empty());
    }

    #[test]
    fn stopwords_removed_from_tokens() {
        let a = TextPipeline::new().analyze("the delete is done");
        assert!(!a.tokens.contains(&"the".to_string()));
        assert!(a.tokens.contains(&"delete".to_string()));
    }

    #[test]
    fn custom_lexicon_is_honoured() {
        let harsh = IntentLexicon {
            engagement_weight: 0.0,
            commerce_weight: 0.0,
            deterrent_weight: 1.0,
        };
        let a = TextPipeline::with_lexicon(harsh).analyze("delete kit for sale");
        assert_eq!(a.intent.score, 0.0);
    }

    #[test]
    fn empty_document() {
        let a = TextPipeline::new().analyze("");
        assert!(a.tokens.is_empty());
        assert!(a.hashtags.is_empty());
        assert!(a.prices.is_empty());
        assert_eq!(a.intent.score, 0.0);
    }

    #[test]
    fn scan_normalisation_matches_normalize() {
        for text in [
            "",
            "   \t ",
            "#DPFDelete kit for sale, 360 EUR shipped!",
            "price: 1.299,50 EUR",
            "ÖLWECHSEL wegen Ölverlust!!!",
            "a  b   c ",
            " leading and trailing ",
            "#  @ ## .. ,,",
            "1 .5 and 1.5 and 360,",
            "e\u{301}gr combining",
        ] {
            assert_eq!(
                scan(text, |_| {}).normalized.as_ref(),
                normalize(text),
                "{text:?}"
            );
        }
    }

    #[test]
    fn scan_borrows_for_already_normal_input() {
        let mut tokens = Vec::new();
        let scan = scan("#dpfdelete kit 360 eur shipped", |t| {
            tokens.push(t.to_string())
        });
        assert!(matches!(scan.normalized, Cow::Borrowed(_)));
        assert_eq!(tokens, vec!["#dpfdelete", "kit", "360", "eur", "shipped"]);
    }

    #[test]
    fn single_pass_matches_reference_on_tricky_inputs() {
        let pipeline = TextPipeline::new();
        for text in [
            "#DPFDelete kit for sale, 360 EUR shipped, install guide included",
            "was €420, now $399 or 1.299,00 EUR!!",
            "# lonely hash and @ lonely at and ##double",
            "the delete is done, just now",
            "ÖLWECHSEL statt #EGRoff — 250 euros",
            "stage 1 adds 40 hp at 3500 rpm",
            "#@ weird \u{1F600} emoji 5€",
            "360, what a deal ,360, really",
        ] {
            assert_eq!(
                pipeline.analyze(text),
                reference::analyze(pipeline.lexicon(), text),
                "{text:?}"
            );
        }
    }

    #[test]
    fn signals_agree_with_analyze() {
        let pipeline = TextPipeline::new();
        for text in [
            "#DPFDelete kit for sale, 360 EUR shipped",
            "Nice weather at the quarry today",
            "",
        ] {
            let full = pipeline.analyze(text);
            let lean = pipeline.signals(text);
            assert_eq!(lean.intent, full.intent, "{text:?}");
            assert_eq!(lean.prices, full.prices, "{text:?}");
        }
    }

    #[test]
    fn reference_mode_dispatches_to_the_frozen_implementation() {
        let fast = TextPipeline::new();
        let slow = TextPipeline::reference();
        assert!(slow.is_reference());
        assert!(!fast.is_reference());
        let text = "#DPFDelete kit for sale, 360 EUR shipped";
        assert_eq!(fast.analyze(text), slow.analyze(text));
        assert_eq!(fast.signals(text), slow.signals(text));
    }
}
