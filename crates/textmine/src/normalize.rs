//! Text normalisation.

use std::borrow::Cow;

/// Lowercases the text and collapses every non-alphanumeric run into a single
/// space.  `#` and `@` prefixes survive as part of the following token so that
/// hashtags and mentions remain recognisable to the tokenizer.
#[must_use]
pub fn normalize(text: &str) -> String {
    normalize_cow(text).into_owned()
}

/// [`normalize`] without the copy when none is needed: returns
/// [`Cow::Borrowed`] when the input is already in normal form — lowercase
/// ASCII alphanumerics (plus `#`/`@` sigils and digit-adjacent `.`/`,`)
/// separated by single spaces, with no combining marks or other non-ASCII
/// bytes — and falls back to the allocating pass otherwise.
///
/// The borrowed branch is what makes batch analysis over pre-cleaned corpora
/// allocation-free on the normalisation step.
#[must_use]
pub fn normalize_cow(text: &str) -> Cow<'_, str> {
    if is_normalized(text) {
        Cow::Borrowed(text)
    } else {
        Cow::Owned(normalize_owned(text))
    }
}

/// Whether `text` is already its own normal form, i.e. `normalize(text) ==
/// text`.  Decided on raw bytes — any non-ASCII byte (including combining
/// marks) disqualifies, as does anything the normalisation pass would
/// lowercase, drop or collapse.
#[must_use]
pub fn is_normalized(text: &str) -> bool {
    let bytes = text.as_bytes();
    let mut prev: Option<u8> = None;
    for &b in bytes {
        let ok = match b {
            b'a'..=b'z' | b'0'..=b'9' | b'#' | b'@' => true,
            // Kept only as a decimal separator directly after a digit.
            b'.' | b',' => prev.is_some_and(|p| p.is_ascii_digit()),
            // A single space between tokens; leading spaces are trimmed.
            b' ' => prev.is_some_and(|p| p != b' '),
            _ => false,
        };
        if !ok {
            return false;
        }
        prev = Some(b);
    }
    // A trailing space would be trimmed by the normalisation pass.
    prev != Some(b' ')
}

/// The allocating normalisation pass (the slow branch of [`normalize_cow`]).
fn normalize_owned(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_was_space = true;
    for c in text.chars() {
        if c.is_alphanumeric() || c == '#' || c == '@' {
            for lc in c.to_lowercase() {
                out.push(lc);
            }
            last_was_space = false;
        } else if c == '.' || c == ',' {
            // Keep decimal separators that sit between digits (prices like 1.299,00).
            let prev_digit = out.chars().last().is_some_and(|p| p.is_ascii_digit());
            if prev_digit {
                out.push(c);
                last_was_space = false;
                continue;
            }
            if !last_was_space {
                out.push(' ');
                last_was_space = true;
            }
        } else if !last_was_space {
            out.push(' ');
            last_was_space = true;
        }
    }
    out.trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_collapses_punctuation() {
        assert_eq!(normalize("DPF Delete!!!   Done."), "dpf delete done");
    }

    #[test]
    fn keeps_hashtags_and_mentions() {
        assert_eq!(
            normalize("#DPFDelete by @TunerShop"),
            "#dpfdelete by @tunershop"
        );
    }

    #[test]
    fn keeps_decimal_separators_between_digits() {
        assert_eq!(normalize("price: 1.299,50 EUR"), "price 1.299,50 eur");
    }

    #[test]
    fn trailing_commas_do_not_linger() {
        assert_eq!(normalize("done, finally"), "done finally");
    }

    #[test]
    fn empty_and_whitespace_input() {
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("   \t\n "), "");
    }

    #[test]
    fn unicode_is_lowercased() {
        assert_eq!(normalize("ÖLWECHSEL"), "ölwechsel");
    }

    #[test]
    fn clean_ascii_input_is_borrowed() {
        for text in [
            "",
            "dpf delete done",
            "#dpfdelete kit 360 eur",
            "price 1.299,50 eur",
            "@tuner #egroff 2021",
        ] {
            match normalize_cow(text) {
                Cow::Borrowed(s) => assert_eq!(s, text),
                Cow::Owned(s) => panic!("expected borrow for {text:?}, got owned {s:?}"),
            }
        }
    }

    #[test]
    fn dirty_input_takes_the_owned_branch() {
        for (text, expected) in [
            ("DPF delete", "dpf delete"),  // uppercase
            ("dpf  delete", "dpf delete"), // double space
            ("dpf delete ", "dpf delete"), // trailing space
            (" dpf", "dpf"),               // leading space
            ("dpf.delete", "dpf delete"),  // dot after non-digit
            ("ölwechsel", "ölwechsel"),    // non-ASCII byte
            ("e\u{301}gr", "e gr"),        // combining acute accent is a separator
            ("dpf\tdelete", "dpf delete"), // tab separator
            ("360,. eur", "360, eur"),     // separator run after digit
        ] {
            match normalize_cow(text) {
                Cow::Owned(s) => assert_eq!(s, expected, "input {text:?}"),
                Cow::Borrowed(s) => panic!("expected owned for {text:?}, got borrow {s:?}"),
            }
        }
    }

    #[test]
    fn borrowed_and_owned_branches_agree_with_the_full_pass() {
        for text in [
            "dpf delete done",
            "DPF Delete!!!   Done.",
            "#dpfdelete kit 360 eur",
            "price: 1.299,50 EUR",
            "ÖLWECHSEL wegen Ölverlust",
            "",
            "   ",
            "1. 2",
        ] {
            assert_eq!(
                normalize_cow(text).as_ref(),
                normalize_owned(text),
                "{text:?}"
            );
        }
    }
}
