//! Text normalisation.

/// Lowercases the text and collapses every non-alphanumeric run into a single
/// space.  `#` and `@` prefixes survive as part of the following token so that
/// hashtags and mentions remain recognisable to the tokenizer.
#[must_use]
pub fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_was_space = true;
    for c in text.chars() {
        if c.is_alphanumeric() || c == '#' || c == '@' {
            for lc in c.to_lowercase() {
                out.push(lc);
            }
            last_was_space = false;
        } else if c == '.' || c == ',' {
            // Keep decimal separators that sit between digits (prices like 1.299,00).
            let prev_digit = out.chars().last().is_some_and(|p| p.is_ascii_digit());
            if prev_digit {
                out.push(c);
                last_was_space = false;
                continue;
            }
            if !last_was_space {
                out.push(' ');
                last_was_space = true;
            }
        } else if !last_was_space {
            out.push(' ');
            last_was_space = true;
        }
    }
    out.trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_collapses_punctuation() {
        assert_eq!(normalize("DPF Delete!!!   Done."), "dpf delete done");
    }

    #[test]
    fn keeps_hashtags_and_mentions() {
        assert_eq!(
            normalize("#DPFDelete by @TunerShop"),
            "#dpfdelete by @tunershop"
        );
    }

    #[test]
    fn keeps_decimal_separators_between_digits() {
        assert_eq!(normalize("price: 1.299,50 EUR"), "price 1.299,50 eur");
    }

    #[test]
    fn trailing_commas_do_not_linger() {
        assert_eq!(normalize("done, finally"), "done finally");
    }

    #[test]
    fn empty_and_whitespace_input() {
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("   \t\n "), "");
    }

    #[test]
    fn unicode_is_lowercased() {
        assert_eq!(normalize("ÖLWECHSEL"), "ölwechsel");
    }
}
