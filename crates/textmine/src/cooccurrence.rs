//! Hashtag / keyword co-occurrence mining.
//!
//! The PSP auto-learning step (paper Figure 7, block 5) grows the keyword-attack
//! database: hashtags that repeatedly co-occur with already known attack hashtags
//! are promoted to new keywords for the next run.  This module provides the
//! co-occurrence statistics that drive that promotion.

use std::collections::{BTreeMap, BTreeSet};

/// A symmetric co-occurrence matrix over terms observed per document.
#[derive(Debug, Clone, Default)]
pub struct CooccurrenceMatrix {
    counts: BTreeMap<(String, String), usize>,
    term_documents: BTreeMap<String, usize>,
    documents: usize,
}

impl CooccurrenceMatrix {
    /// Creates an empty matrix.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one document given the distinct terms it contains.
    pub fn add_document<I, S>(&mut self, terms: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let set: BTreeSet<String> = terms.into_iter().map(Into::into).collect();
        for term in &set {
            *self.term_documents.entry(term.clone()).or_insert(0) += 1;
        }
        let list: Vec<&String> = set.iter().collect();
        for i in 0..list.len() {
            for j in (i + 1)..list.len() {
                let key = ordered_pair(list[i], list[j]);
                *self.counts.entry(key).or_insert(0) += 1;
            }
        }
        self.documents += 1;
    }

    /// Number of documents recorded.
    #[must_use]
    pub fn document_count(&self) -> usize {
        self.documents
    }

    /// Number of documents a term appeared in.
    #[must_use]
    pub fn term_count(&self, term: &str) -> usize {
        self.term_documents.get(term).copied().unwrap_or(0)
    }

    /// Number of documents in which both terms appeared.
    #[must_use]
    pub fn cooccurrences(&self, a: &str, b: &str) -> usize {
        if a == b {
            return self.term_count(a);
        }
        self.counts.get(&ordered_pair(a, b)).copied().unwrap_or(0)
    }

    /// The Jaccard similarity between the document sets of two terms.
    #[must_use]
    pub fn jaccard(&self, a: &str, b: &str) -> f64 {
        let both = self.cooccurrences(a, b) as f64;
        let union = (self.term_count(a) + self.term_count(b)) as f64 - both;
        if union <= 0.0 {
            0.0
        } else {
            both / union
        }
    }

    /// Terms that co-occur with any of the `seeds` in at least `min_support`
    /// documents, excluding the seeds themselves, sorted by descending support.
    /// This is the PSP keyword-learning primitive.
    #[must_use]
    pub fn related_terms(&self, seeds: &[String], min_support: usize) -> Vec<(String, usize)> {
        let seed_set: BTreeSet<&String> = seeds.iter().collect();
        let mut support: BTreeMap<String, usize> = BTreeMap::new();
        for ((a, b), count) in &self.counts {
            let (seed_hit, other) = if seed_set.contains(a) && !seed_set.contains(b) {
                (true, b)
            } else if seed_set.contains(b) && !seed_set.contains(a) {
                (true, a)
            } else {
                (false, a)
            };
            if seed_hit {
                *support.entry(other.clone()).or_insert(0) += count;
            }
        }
        let mut out: Vec<(String, usize)> = support
            .into_iter()
            .filter(|(_, count)| *count >= min_support)
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

fn ordered_pair(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> CooccurrenceMatrix {
        let mut m = CooccurrenceMatrix::new();
        m.add_document(["dpfdelete", "egrdelete", "excavator"]);
        m.add_document(["dpfdelete", "dpfoff", "excavator"]);
        m.add_document(["dpfdelete", "dpfoff"]);
        m.add_document(["chiptuning", "stage1"]);
        m
    }

    #[test]
    fn counts_documents_and_terms() {
        let m = sample_matrix();
        assert_eq!(m.document_count(), 4);
        assert_eq!(m.term_count("dpfdelete"), 3);
        assert_eq!(m.term_count("dpfoff"), 2);
        assert_eq!(m.term_count("unknown"), 0);
    }

    #[test]
    fn cooccurrence_is_symmetric() {
        let m = sample_matrix();
        assert_eq!(m.cooccurrences("dpfdelete", "dpfoff"), 2);
        assert_eq!(m.cooccurrences("dpfoff", "dpfdelete"), 2);
        assert_eq!(m.cooccurrences("dpfdelete", "chiptuning"), 0);
    }

    #[test]
    fn self_cooccurrence_is_term_count() {
        let m = sample_matrix();
        assert_eq!(m.cooccurrences("dpfdelete", "dpfdelete"), 3);
    }

    #[test]
    fn jaccard_similarity() {
        let m = sample_matrix();
        // dpfdelete appears in 3 docs, dpfoff in 2, together in 2 -> 2 / 3.
        assert!((m.jaccard("dpfdelete", "dpfoff") - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.jaccard("dpfdelete", "chiptuning"), 0.0);
        assert_eq!(m.jaccard("ghost", "phantom"), 0.0);
    }

    #[test]
    fn related_terms_learns_new_hashtags_from_seeds() {
        let m = sample_matrix();
        let seeds = vec!["dpfdelete".to_string()];
        let related = m.related_terms(&seeds, 2);
        let names: Vec<_> = related.iter().map(|(t, _)| t.as_str()).collect();
        assert!(names.contains(&"dpfoff"), "dpfoff co-occurs twice");
        assert!(names.contains(&"excavator"));
        assert!(!names.contains(&"dpfdelete"), "seeds are excluded");
        assert!(!names.contains(&"chiptuning"), "unrelated tags stay out");
    }

    #[test]
    fn min_support_filters_weak_links() {
        let m = sample_matrix();
        let seeds = vec!["dpfdelete".to_string()];
        let strict = m.related_terms(&seeds, 3);
        assert!(strict.is_empty());
    }

    #[test]
    fn duplicate_terms_in_one_document_count_once() {
        let mut m = CooccurrenceMatrix::new();
        m.add_document(["a", "a", "b"]);
        assert_eq!(m.term_count("a"), 1);
        assert_eq!(m.cooccurrences("a", "b"), 1);
    }
}
