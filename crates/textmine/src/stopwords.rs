//! A small English stop-word list tuned for social-media text.

/// Common English stop words plus social-media filler.
pub const STOPWORDS: [&str; 64] = [
    "a", "an", "the", "and", "or", "but", "if", "then", "else", "for", "of", "on", "in", "at",
    "to", "from", "by", "with", "without", "about", "as", "is", "are", "was", "were", "be", "been",
    "being", "am", "do", "does", "did", "have", "has", "had", "will", "would", "can", "could",
    "should", "shall", "may", "might", "must", "this", "that", "these", "those", "it", "its", "my",
    "your", "his", "her", "our", "their", "me", "you", "he", "she", "we", "they", "just", "now",
];

/// Whether a token is a stop word.
#[must_use]
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.contains(&token)
}

/// Removes stop words from a token stream.
#[must_use]
pub fn remove_stopwords(tokens: &[String]) -> Vec<String> {
    tokens
        .iter()
        .filter(|t| !is_stopword(t.as_str()))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_words_are_stopwords() {
        for w in ["the", "and", "is", "with"] {
            assert!(is_stopword(w), "{w}");
        }
    }

    #[test]
    fn domain_words_are_not_stopwords() {
        for w in ["dpf", "delete", "tuning", "obd"] {
            assert!(!is_stopword(w), "{w}");
        }
    }

    #[test]
    fn removal_preserves_order() {
        let tokens: Vec<String> = ["the", "dpf", "is", "gone"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(remove_stopwords(&tokens), vec!["dpf", "gone"]);
    }

    #[test]
    fn stopword_list_has_no_duplicates() {
        let set: std::collections::HashSet<_> = STOPWORDS.iter().collect();
        assert_eq!(set.len(), STOPWORDS.len());
    }
}
