//! A small English stop-word list tuned for social-media text.

/// Common English stop words plus social-media filler.
pub const STOPWORDS: [&str; 64] = [
    "a", "an", "the", "and", "or", "but", "if", "then", "else", "for", "of", "on", "in", "at",
    "to", "from", "by", "with", "without", "about", "as", "is", "are", "was", "were", "be", "been",
    "being", "am", "do", "does", "did", "have", "has", "had", "will", "would", "can", "could",
    "should", "shall", "may", "might", "must", "this", "that", "these", "those", "it", "its", "my",
    "your", "his", "her", "our", "their", "me", "you", "he", "she", "we", "they", "just", "now",
];

/// [`STOPWORDS`] in ascending order, for binary-search membership tests.  The
/// hot path probes this table once per token instead of scanning the list —
/// `stopword_table_is_sorted_and_complete` guards the ordering.
const STOPWORDS_SORTED: [&str; 64] = [
    "a", "about", "am", "an", "and", "are", "as", "at", "be", "been", "being", "but", "by", "can",
    "could", "did", "do", "does", "else", "for", "from", "had", "has", "have", "he", "her", "his",
    "if", "in", "is", "it", "its", "just", "may", "me", "might", "must", "my", "now", "of", "on",
    "or", "our", "shall", "she", "should", "that", "the", "their", "then", "these", "they", "this",
    "those", "to", "was", "we", "were", "will", "with", "without", "would", "you", "your",
];

/// Whether a token is a stop word (binary search over the sorted table).
#[must_use]
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS_SORTED.binary_search(&token).is_ok()
}

/// Removes stop words from a token stream.
#[must_use]
pub fn remove_stopwords(tokens: &[String]) -> Vec<String> {
    tokens
        .iter()
        .filter(|t| !is_stopword(t.as_str()))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_words_are_stopwords() {
        for w in ["the", "and", "is", "with"] {
            assert!(is_stopword(w), "{w}");
        }
    }

    #[test]
    fn domain_words_are_not_stopwords() {
        for w in ["dpf", "delete", "tuning", "obd"] {
            assert!(!is_stopword(w), "{w}");
        }
    }

    #[test]
    fn removal_preserves_order() {
        let tokens: Vec<String> = ["the", "dpf", "is", "gone"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(remove_stopwords(&tokens), vec!["dpf", "gone"]);
    }

    #[test]
    fn stopword_list_has_no_duplicates() {
        let set: std::collections::HashSet<_> = STOPWORDS.iter().collect();
        assert_eq!(set.len(), STOPWORDS.len());
    }

    #[test]
    fn stopword_table_is_sorted_and_complete() {
        // Strictly ascending — the precondition binary search relies on.
        assert!(
            STOPWORDS_SORTED.windows(2).all(|w| w[0] < w[1]),
            "STOPWORDS_SORTED must be strictly ascending"
        );
        // Same membership as the public list, so the two can never drift.
        let mut expected = STOPWORDS;
        expected.sort_unstable();
        assert_eq!(expected, STOPWORDS_SORTED);
    }

    #[test]
    fn binary_search_agrees_with_linear_scan() {
        for w in STOPWORDS {
            assert!(is_stopword(w), "{w}");
        }
        for w in ["", "#the", "thee", "z", "0", "@me"] {
            assert_eq!(is_stopword(w), STOPWORDS.contains(&w), "{w}");
        }
    }
}
