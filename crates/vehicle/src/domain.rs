//! Functional domains of a road vehicle E/E architecture.
//!
//! The paper (Figure 4) partitions the vehicle into functional domains —
//! powertrain, chassis, body, infotainment, communication, diagnostics — and argues
//! that attack feasibility must be judged per domain: the powertrain sub-network is
//! dominated by physical and local (OBD) attacks, while the communication domain is
//! the natural entry point for long-range attacks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A functional domain of the vehicle E/E architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FunctionalDomain {
    /// Engine, transmission and emission control: hard real-time, safety critical.
    Powertrain,
    /// Braking, steering, suspension: hard real-time, safety critical.
    Chassis,
    /// Doors, lights, seats, climate: soft real-time.
    Body,
    /// Head unit, media, navigation, companion-app connectivity.
    Infotainment,
    /// Telematics, V2X, gateways: the externally connected domain.
    Communication,
    /// Advanced driver-assistance sensors and fusion.
    Adas,
    /// Diagnostic access (OBD port, workshop testers).
    Diagnostics,
}

impl FunctionalDomain {
    /// All domains, in a stable order.
    pub const ALL: [FunctionalDomain; 7] = [
        FunctionalDomain::Powertrain,
        FunctionalDomain::Chassis,
        FunctionalDomain::Body,
        FunctionalDomain::Infotainment,
        FunctionalDomain::Communication,
        FunctionalDomain::Adas,
        FunctionalDomain::Diagnostics,
    ];

    /// Whether functions in this domain have hard real-time deadlines.
    ///
    /// The paper stresses that the powertrain domain "oversees real-time functions
    /// that carry critical safety implications"; the same holds for chassis and ADAS.
    #[must_use]
    pub fn is_hard_real_time(self) -> bool {
        matches!(
            self,
            FunctionalDomain::Powertrain | FunctionalDomain::Chassis | FunctionalDomain::Adas
        )
    }

    /// Whether a successful attack on this domain has direct safety impact.
    #[must_use]
    pub fn is_safety_critical(self) -> bool {
        matches!(
            self,
            FunctionalDomain::Powertrain | FunctionalDomain::Chassis | FunctionalDomain::Adas
        )
    }

    /// Whether the domain is, by design, exposed to off-board communication.
    #[must_use]
    pub fn is_externally_connected(self) -> bool {
        matches!(
            self,
            FunctionalDomain::Communication
                | FunctionalDomain::Infotainment
                | FunctionalDomain::Diagnostics
        )
    }

    /// A short, human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FunctionalDomain::Powertrain => "PowerTrain",
            FunctionalDomain::Chassis => "Chassis",
            FunctionalDomain::Body => "Body",
            FunctionalDomain::Infotainment => "Infotainment",
            FunctionalDomain::Communication => "Communication",
            FunctionalDomain::Adas => "ADAS",
            FunctionalDomain::Diagnostics => "On Board Diagnostic",
        }
    }
}

impl fmt::Display for FunctionalDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_domains_are_distinct() {
        let set: HashSet<_> = FunctionalDomain::ALL.iter().collect();
        assert_eq!(set.len(), FunctionalDomain::ALL.len());
    }

    #[test]
    fn powertrain_is_hard_real_time_and_safety_critical() {
        assert!(FunctionalDomain::Powertrain.is_hard_real_time());
        assert!(FunctionalDomain::Powertrain.is_safety_critical());
        assert!(!FunctionalDomain::Powertrain.is_externally_connected());
    }

    #[test]
    fn infotainment_is_connected_but_not_safety_critical() {
        assert!(FunctionalDomain::Infotainment.is_externally_connected());
        assert!(!FunctionalDomain::Infotainment.is_safety_critical());
    }

    #[test]
    fn body_is_neither_real_time_nor_connected() {
        assert!(!FunctionalDomain::Body.is_hard_real_time());
        assert!(!FunctionalDomain::Body.is_externally_connected());
    }

    #[test]
    fn labels_match_paper_figure_4() {
        assert_eq!(FunctionalDomain::Powertrain.to_string(), "PowerTrain");
        assert_eq!(
            FunctionalDomain::Diagnostics.to_string(),
            "On Board Diagnostic"
        );
        assert_eq!(FunctionalDomain::Communication.to_string(), "Communication");
    }

    #[test]
    fn serde_round_trip() {
        for domain in FunctionalDomain::ALL {
            let json = serde_json::to_string(&domain).unwrap();
            let back: FunctionalDomain = serde_json::from_str(&json).unwrap();
            assert_eq!(domain, back);
        }
    }

    #[test]
    fn ordering_is_stable() {
        let mut sorted = FunctionalDomain::ALL;
        sorted.sort();
        assert_eq!(sorted[0], FunctionalDomain::Powertrain);
    }
}
