//! Vehicle network topology graph.
//!
//! The topology is an undirected graph whose nodes are ECUs, bus segments and
//! external interfaces, and whose edges are physical attachments:
//! `interface — ECU`, `ECU — bus`.  Gateways are ECUs attached to more than one
//! bus; they are the only way traffic crosses between segments, which is exactly
//! the structural property the reachability analysis of paper Figure 4 exploits.

use crate::attack_surface::ExternalInterface;
use crate::bus::Bus;
use crate::ecu::Ecu;
use crate::error::VehicleError;
use petgraph::graph::{NodeIndex, UnGraph};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The kind of node stored in the topology graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// An electronic control unit.
    Ecu(Ecu),
    /// A bus segment.
    Bus(Bus),
    /// An external interface (attached to exactly one ECU).
    Interface(ExternalInterface),
}

impl NodeKind {
    /// The unique name of this node within the topology.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            NodeKind::Ecu(e) => e.name().to_string(),
            NodeKind::Bus(b) => b.name().to_string(),
            NodeKind::Interface(i) => format!("IF:{}", i.label()),
        }
    }
}

/// A complete vehicle E/E topology.
#[derive(Debug, Clone)]
pub struct VehicleTopology {
    name: String,
    graph: UnGraph<NodeKind, ()>,
    by_name: HashMap<String, NodeIndex>,
}

impl VehicleTopology {
    /// Starts building a topology with the given name.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> VehicleTopologyBuilder {
        VehicleTopologyBuilder::new(name)
    }

    /// The architecture name (e.g. `"passenger-car"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying undirected graph.
    #[must_use]
    pub fn graph(&self) -> &UnGraph<NodeKind, ()> {
        &self.graph
    }

    /// Number of ECUs in the topology.
    #[must_use]
    pub fn ecu_count(&self) -> usize {
        self.ecus().count()
    }

    /// Iterates over all ECUs.
    pub fn ecus(&self) -> impl Iterator<Item = &Ecu> {
        self.graph.node_weights().filter_map(|n| match n {
            NodeKind::Ecu(e) => Some(e),
            _ => None,
        })
    }

    /// Iterates over all bus segments.
    pub fn buses(&self) -> impl Iterator<Item = &Bus> {
        self.graph.node_weights().filter_map(|n| match n {
            NodeKind::Bus(b) => Some(b),
            _ => None,
        })
    }

    /// Iterates over all external interface nodes together with the ECU that
    /// terminates them.
    pub fn interfaces(&self) -> impl Iterator<Item = (ExternalInterface, &Ecu)> + '_ {
        self.graph.node_indices().filter_map(move |idx| {
            if let NodeKind::Interface(iface) = &self.graph[idx] {
                let ecu = self
                    .graph
                    .neighbors(idx)
                    .find_map(|n| match &self.graph[n] {
                        NodeKind::Ecu(e) => Some(e),
                        _ => None,
                    })?;
                Some((*iface, ecu))
            } else {
                None
            }
        })
    }

    /// Looks up an ECU by name.
    #[must_use]
    pub fn ecu(&self, name: &str) -> Option<&Ecu> {
        self.by_name
            .get(name)
            .and_then(|idx| match &self.graph[*idx] {
                NodeKind::Ecu(e) => Some(e),
                _ => None,
            })
    }

    /// Looks up a bus by name.
    #[must_use]
    pub fn bus(&self, name: &str) -> Option<&Bus> {
        self.by_name
            .get(name)
            .and_then(|idx| match &self.graph[*idx] {
                NodeKind::Bus(b) => Some(b),
                _ => None,
            })
    }

    /// Returns the node index of a named node, if present.
    #[must_use]
    pub fn node_index(&self, name: &str) -> Option<NodeIndex> {
        self.by_name.get(name).copied()
    }

    /// The ECUs attached to the named bus.
    #[must_use]
    pub fn ecus_on_bus(&self, bus_name: &str) -> Vec<&Ecu> {
        let Some(idx) = self.by_name.get(bus_name) else {
            return Vec::new();
        };
        self.graph
            .neighbors(*idx)
            .filter_map(|n| match &self.graph[n] {
                NodeKind::Ecu(e) => Some(e),
                _ => None,
            })
            .collect()
    }

    /// Gateways: ECUs attached to two or more bus segments.
    #[must_use]
    pub fn gateways(&self) -> Vec<&Ecu> {
        self.ecus()
            .filter(|e| e.is_gateway() || e.buses().len() >= 2)
            .collect()
    }
}

/// Builder for [`VehicleTopology`].
#[derive(Debug, Clone)]
pub struct VehicleTopologyBuilder {
    name: String,
    buses: Vec<Bus>,
    ecus: Vec<Ecu>,
}

impl VehicleTopologyBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            buses: Vec::new(),
            ecus: Vec::new(),
        }
    }

    /// Adds a bus segment.
    #[must_use]
    pub fn bus(mut self, bus: Bus) -> Self {
        self.buses.push(bus);
        self
    }

    /// Adds an ECU (its `on_bus` attachments must reference buses added to this
    /// builder before [`build`](Self::build) is called).
    #[must_use]
    pub fn ecu(mut self, ecu: Ecu) -> Self {
        self.ecus.push(ecu);
        self
    }

    /// Builds the topology.
    ///
    /// # Errors
    ///
    /// Returns [`VehicleError::DuplicateNode`] if two buses or ECUs share a name,
    /// [`VehicleError::UnknownNode`] if an ECU references an undeclared bus and
    /// [`VehicleError::EmptyTopology`] if no ECU was added.
    pub fn build(self) -> Result<VehicleTopology, VehicleError> {
        if self.ecus.is_empty() {
            return Err(VehicleError::EmptyTopology);
        }
        let mut graph = UnGraph::new_undirected();
        let mut by_name: HashMap<String, NodeIndex> = HashMap::new();

        for bus in &self.buses {
            if by_name.contains_key(bus.name()) {
                return Err(VehicleError::DuplicateNode {
                    name: bus.name().to_string(),
                });
            }
            let idx = graph.add_node(NodeKind::Bus(bus.clone()));
            by_name.insert(bus.name().to_string(), idx);
        }

        for ecu in &self.ecus {
            if by_name.contains_key(ecu.name()) {
                return Err(VehicleError::DuplicateNode {
                    name: ecu.name().to_string(),
                });
            }
            let idx = graph.add_node(NodeKind::Ecu(ecu.clone()));
            by_name.insert(ecu.name().to_string(), idx);
        }

        // Attach ECUs to buses and interfaces to ECUs.
        for ecu in &self.ecus {
            let ecu_idx = by_name[ecu.name()];
            for bus_name in ecu.buses() {
                let bus_idx =
                    by_name
                        .get(bus_name)
                        .copied()
                        .ok_or_else(|| VehicleError::UnknownNode {
                            name: bus_name.clone(),
                        })?;
                graph.add_edge(ecu_idx, bus_idx, ());
            }
            for iface in ecu.interfaces() {
                let iface_idx = graph.add_node(NodeKind::Interface(*iface));
                graph.add_edge(iface_idx, ecu_idx, ());
            }
        }

        Ok(VehicleTopology {
            name: self.name,
            graph,
            by_name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::BusKind;
    use crate::domain::FunctionalDomain;

    fn tiny_topology() -> VehicleTopology {
        VehicleTopology::builder("tiny")
            .bus(Bus::new(
                "PT-CAN",
                BusKind::CanHighSpeed,
                FunctionalDomain::Powertrain,
            ))
            .bus(Bus::new(
                "BACKBONE",
                BusKind::Ethernet,
                FunctionalDomain::Communication,
            ))
            .ecu(
                Ecu::builder("ECM")
                    .domain(FunctionalDomain::Powertrain)
                    .on_bus("PT-CAN")
                    .build(),
            )
            .ecu(
                Ecu::builder("GW")
                    .domain(FunctionalDomain::Communication)
                    .on_bus("PT-CAN")
                    .on_bus("BACKBONE")
                    .gateway(true)
                    .build(),
            )
            .ecu(
                Ecu::builder("TCU")
                    .domain(FunctionalDomain::Communication)
                    .on_bus("BACKBONE")
                    .interface(ExternalInterface::Cellular)
                    .fota(true)
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_counts_nodes() {
        let topo = tiny_topology();
        assert_eq!(topo.ecu_count(), 3);
        assert_eq!(topo.buses().count(), 2);
        assert_eq!(topo.interfaces().count(), 1);
    }

    #[test]
    fn ecus_on_bus_finds_attachments() {
        let topo = tiny_topology();
        let names: Vec<_> = topo
            .ecus_on_bus("PT-CAN")
            .iter()
            .map(|e| e.name().to_string())
            .collect();
        assert!(names.contains(&"ECM".to_string()));
        assert!(names.contains(&"GW".to_string()));
        assert!(!names.contains(&"TCU".to_string()));
    }

    #[test]
    fn gateways_detected() {
        let topo = tiny_topology();
        let gws: Vec<_> = topo
            .gateways()
            .iter()
            .map(|e| e.name().to_string())
            .collect();
        assert_eq!(gws, vec!["GW".to_string()]);
    }

    #[test]
    fn interface_is_linked_to_its_ecu() {
        let topo = tiny_topology();
        let (iface, ecu) = topo.interfaces().next().unwrap();
        assert_eq!(iface, ExternalInterface::Cellular);
        assert_eq!(ecu.name(), "TCU");
    }

    #[test]
    fn lookup_by_name() {
        let topo = tiny_topology();
        assert!(topo.ecu("ECM").is_some());
        assert!(topo.ecu("NOPE").is_none());
        assert!(topo.bus("PT-CAN").is_some());
        assert!(topo.bus("ECM").is_none(), "an ECU name is not a bus");
    }

    #[test]
    fn duplicate_ecu_rejected() {
        let err = VehicleTopology::builder("dup")
            .ecu(Ecu::builder("ECM").build())
            .ecu(Ecu::builder("ECM").build())
            .build()
            .unwrap_err();
        assert_eq!(err, VehicleError::DuplicateNode { name: "ECM".into() });
    }

    #[test]
    fn unknown_bus_rejected() {
        let err = VehicleTopology::builder("bad")
            .ecu(Ecu::builder("ECM").on_bus("MISSING").build())
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            VehicleError::UnknownNode {
                name: "MISSING".into()
            }
        );
    }

    #[test]
    fn empty_topology_rejected() {
        let err = VehicleTopology::builder("empty").build().unwrap_err();
        assert_eq!(err, VehicleError::EmptyTopology);
    }
}
