//! The standards-contribution graph of paper Figure 1.
//!
//! Figure 1 of the paper lists the standards that contributed to ISO/SAE-21434 and
//! classifies each relationship as *strong* or *medium*.  The graph is useful for
//! gap analyses ("which upstream standard drives this clause?") and is reproduced by
//! the `fig1` experiment of the bench harness.

use petgraph::graph::{DiGraph, NodeIndex};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Strength of a contribution relationship between two standards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RelationshipStrength {
    /// A medium relationship (dashed edge in the paper's figure).
    Medium,
    /// A strong relationship (solid edge in the paper's figure).
    Strong,
}

impl fmt::Display for RelationshipStrength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationshipStrength::Medium => f.write_str("Medium"),
            RelationshipStrength::Strong => f.write_str("Strong"),
        }
    }
}

/// A standard referenced by the graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Standard {
    /// The designation, e.g. `"ISO 26262:2018"`.
    pub designation: String,
    /// Whether the standard is automotive-specific (the paper notes that many
    /// contributors are generic IT-security standards, which is the root of the
    /// static-weight problem it criticises).
    pub automotive_specific: bool,
}

impl Standard {
    /// Creates a new standard descriptor.
    #[must_use]
    pub fn new(designation: impl Into<String>, automotive_specific: bool) -> Self {
        Self {
            designation: designation.into(),
            automotive_specific,
        }
    }
}

/// The standards-contribution graph: edges point from a contributing standard to
/// ISO/SAE-21434 (or to another intermediate standard).
#[derive(Debug, Clone)]
pub struct StandardsGraph {
    graph: DiGraph<Standard, RelationshipStrength>,
    by_name: HashMap<String, NodeIndex>,
    target: NodeIndex,
}

impl StandardsGraph {
    /// Builds the graph exactly as drawn in paper Figure 1.
    #[must_use]
    pub fn paper_figure_1() -> Self {
        let mut builder = Self::builder("ISO/SAE 21434:2021");
        // Strong relationships.
        for name in [
            "SAE J3061",
            "ISO 26262:2018",
            "ISO/IEC 18045",
            "ISO/IEC 27000:2018",
            "ISO 9001",
            "IATF 16949",
            "ISO/IEC/IEEE 15288",
            "ISO/IEC 33001",
            "IEC 62443",
        ] {
            builder = builder.contributor(name, is_automotive(name), RelationshipStrength::Strong);
        }
        // Medium relationships.
        for name in [
            "ISO 10007",
            "MISRA C 2012",
            "ISO/IEC 27001",
            "ASPICE",
            "SEI CERT C",
            "ISO 9000:2015",
            "ISO/TR 4804",
            "ISO/IEC/IEEE 12207",
            "ISO 29147",
            "ISO/IEC/IEEE 26511",
            "IEC 31010",
            "IEC 61508-7",
        ] {
            builder = builder.contributor(name, is_automotive(name), RelationshipStrength::Medium);
        }
        builder.build()
    }

    /// Starts building a custom graph whose target standard has the given name.
    #[must_use]
    pub fn builder(target: impl Into<String>) -> StandardsGraphBuilder {
        StandardsGraphBuilder {
            target: Standard::new(target, true),
            contributors: Vec::new(),
        }
    }

    /// The underlying directed graph.
    #[must_use]
    pub fn graph(&self) -> &DiGraph<Standard, RelationshipStrength> {
        &self.graph
    }

    /// The target standard (ISO/SAE-21434 in the paper).
    #[must_use]
    pub fn target(&self) -> &Standard {
        &self.graph[self.target]
    }

    /// Number of contributing standards.
    #[must_use]
    pub fn contributor_count(&self) -> usize {
        self.graph.node_count() - 1
    }

    /// Contributors with the given relationship strength, sorted by designation.
    #[must_use]
    pub fn contributors_with(&self, strength: RelationshipStrength) -> Vec<&Standard> {
        let mut out: Vec<&Standard> = self
            .graph
            .edge_indices()
            .filter(|e| self.graph[*e] == strength)
            .filter_map(|e| self.graph.edge_endpoints(e))
            .map(|(src, _)| &self.graph[src])
            .collect();
        out.sort_by(|a, b| a.designation.cmp(&b.designation));
        out
    }

    /// The relationship strength of a named contributor, if present.
    #[must_use]
    pub fn strength_of(&self, designation: &str) -> Option<RelationshipStrength> {
        let idx = self.by_name.get(designation)?;
        self.graph.edges(*idx).next().map(|e| *e.weight())
    }

    /// Fraction of contributors that are *not* automotive-specific — the paper's
    /// quantitative point that ISO/SAE-21434 inherits an enterprise-IT bias.
    #[must_use]
    pub fn non_automotive_fraction(&self) -> f64 {
        let contributors: Vec<_> = self
            .graph
            .node_indices()
            .filter(|i| *i != self.target)
            .collect();
        if contributors.is_empty() {
            return 0.0;
        }
        let non_auto = contributors
            .iter()
            .filter(|i| !self.graph[**i].automotive_specific)
            .count();
        non_auto as f64 / contributors.len() as f64
    }
}

fn is_automotive(name: &str) -> bool {
    matches!(
        name,
        "SAE J3061" | "ISO 26262:2018" | "IATF 16949" | "ASPICE" | "MISRA C 2012" | "ISO/TR 4804"
    )
}

/// Builder for [`StandardsGraph`].
#[derive(Debug, Clone)]
pub struct StandardsGraphBuilder {
    target: Standard,
    contributors: Vec<(Standard, RelationshipStrength)>,
}

impl StandardsGraphBuilder {
    /// Adds a contributing standard.
    #[must_use]
    pub fn contributor(
        mut self,
        designation: impl Into<String>,
        automotive_specific: bool,
        strength: RelationshipStrength,
    ) -> Self {
        self.contributors
            .push((Standard::new(designation, automotive_specific), strength));
        self
    }

    /// Builds the graph.
    #[must_use]
    pub fn build(self) -> StandardsGraph {
        let mut graph = DiGraph::new();
        let mut by_name = HashMap::new();
        let target = graph.add_node(self.target.clone());
        by_name.insert(self.target.designation.clone(), target);
        for (std, strength) in self.contributors {
            let idx = graph.add_node(std.clone());
            by_name.insert(std.designation.clone(), idx);
            graph.add_edge(idx, target, strength);
        }
        StandardsGraph {
            graph,
            by_name,
            target,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure_has_21_contributors() {
        let g = StandardsGraph::paper_figure_1();
        assert_eq!(g.contributor_count(), 21);
        assert_eq!(g.target().designation, "ISO/SAE 21434:2021");
    }

    #[test]
    fn strong_and_medium_partition_the_contributors() {
        let g = StandardsGraph::paper_figure_1();
        let strong = g.contributors_with(RelationshipStrength::Strong).len();
        let medium = g.contributors_with(RelationshipStrength::Medium).len();
        assert_eq!(strong + medium, g.contributor_count());
        assert_eq!(strong, 9);
        assert_eq!(medium, 12);
    }

    #[test]
    fn iso26262_is_a_strong_contributor() {
        let g = StandardsGraph::paper_figure_1();
        assert_eq!(
            g.strength_of("ISO 26262:2018"),
            Some(RelationshipStrength::Strong)
        );
    }

    #[test]
    fn misra_is_a_medium_contributor() {
        let g = StandardsGraph::paper_figure_1();
        assert_eq!(
            g.strength_of("MISRA C 2012"),
            Some(RelationshipStrength::Medium)
        );
    }

    #[test]
    fn unknown_standard_has_no_strength() {
        let g = StandardsGraph::paper_figure_1();
        assert_eq!(g.strength_of("ISO 99999"), None);
    }

    #[test]
    fn most_contributors_are_not_automotive_specific() {
        let g = StandardsGraph::paper_figure_1();
        let frac = g.non_automotive_fraction();
        assert!(frac > 0.5, "paper's claim: IT-security bias, got {frac}");
        assert!(frac < 1.0);
    }

    #[test]
    fn custom_builder_works() {
        let g = StandardsGraph::builder("MY-STD")
            .contributor("OTHER", false, RelationshipStrength::Strong)
            .build();
        assert_eq!(g.contributor_count(), 1);
        assert_eq!(g.strength_of("OTHER"), Some(RelationshipStrength::Strong));
    }

    #[test]
    fn empty_graph_fraction_is_zero() {
        let g = StandardsGraph::builder("LONELY").build();
        assert_eq!(g.non_automotive_fraction(), 0.0);
    }
}
