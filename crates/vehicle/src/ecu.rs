//! Electronic Control Units (ECUs).
//!
//! The ECU is the item under analysis in an ISO/SAE-21434 TARA.  The model keeps
//! the properties that drive the risk analysis: functional domain, bus attachments,
//! external interfaces, whether the unit accepts firmware-over-the-air updates,
//! whether it is a gateway, and its safety integrity level.

use crate::attack_surface::ExternalInterface;
use crate::domain::FunctionalDomain;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Automotive Safety Integrity Level (ISO 26262), kept here because the paper maps
/// CAL levels onto ASIL levels when discussing powertrain DoS attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AsilLevel {
    /// Quality-managed, no safety requirement.
    Qm,
    /// ASIL A (lowest safety integrity requirement).
    A,
    /// ASIL B.
    B,
    /// ASIL C.
    C,
    /// ASIL D (highest safety integrity requirement).
    D,
}

impl AsilLevel {
    /// All levels from lowest to highest.
    pub const ALL: [AsilLevel; 5] = [
        AsilLevel::Qm,
        AsilLevel::A,
        AsilLevel::B,
        AsilLevel::C,
        AsilLevel::D,
    ];

    /// A numeric rank (0 = QM … 4 = ASIL D).
    #[must_use]
    pub fn rank(self) -> u8 {
        match self {
            AsilLevel::Qm => 0,
            AsilLevel::A => 1,
            AsilLevel::B => 2,
            AsilLevel::C => 3,
            AsilLevel::D => 4,
        }
    }
}

impl fmt::Display for AsilLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsilLevel::Qm => f.write_str("QM"),
            AsilLevel::A => f.write_str("ASIL A"),
            AsilLevel::B => f.write_str("ASIL B"),
            AsilLevel::C => f.write_str("ASIL C"),
            AsilLevel::D => f.write_str("ASIL D"),
        }
    }
}

/// An electronic control unit in the vehicle architecture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ecu {
    name: String,
    full_name: String,
    domain: FunctionalDomain,
    buses: Vec<String>,
    interfaces: Vec<ExternalInterface>,
    gateway: bool,
    fota_capable: bool,
    asil: AsilLevel,
}

impl Ecu {
    /// Starts building an ECU with the given short name (e.g. `"ECM"`).
    #[must_use]
    pub fn builder(name: impl Into<String>) -> EcuBuilder {
        EcuBuilder::new(name)
    }

    /// The short name (acronym) of the ECU, unique within a topology.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The descriptive name of the ECU.
    #[must_use]
    pub fn full_name(&self) -> &str {
        &self.full_name
    }

    /// The functional domain the ECU belongs to.
    #[must_use]
    pub fn domain(&self) -> FunctionalDomain {
        self.domain
    }

    /// Names of the bus segments the ECU is attached to.
    #[must_use]
    pub fn buses(&self) -> &[String] {
        &self.buses
    }

    /// External interfaces terminated directly on this ECU.
    #[must_use]
    pub fn interfaces(&self) -> &[ExternalInterface] {
        &self.interfaces
    }

    /// Whether this ECU routes traffic between bus segments.
    #[must_use]
    pub fn is_gateway(&self) -> bool {
        self.gateway
    }

    /// Whether the ECU accepts firmware updates over the air.
    ///
    /// The paper notes that "implementing a remote attack against the ECU without
    /// FOTA support is uncommon and challenging" — this flag is what the
    /// reachability analysis uses to decide whether a long-range path can end in a
    /// reprogramming attack.
    #[must_use]
    pub fn is_fota_capable(&self) -> bool {
        self.fota_capable
    }

    /// The ASIL level of the most critical function hosted by the ECU.
    #[must_use]
    pub fn asil(&self) -> AsilLevel {
        self.asil
    }

    /// Whether the ECU has at least one directly terminated external interface.
    #[must_use]
    pub fn is_externally_exposed(&self) -> bool {
        !self.interfaces.is_empty()
    }
}

impl fmt::Display for Ecu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.full_name)
    }
}

/// Builder for [`Ecu`].
///
/// # Examples
///
/// ```
/// use vehicle::{Ecu, FunctionalDomain, AsilLevel};
/// use vehicle::attack_surface::ExternalInterface;
///
/// let ecm = Ecu::builder("ECM")
///     .full_name("Engine Control Module")
///     .domain(FunctionalDomain::Powertrain)
///     .on_bus("PT-CAN")
///     .asil(AsilLevel::D)
///     .build();
/// assert!(ecm.buses().contains(&"PT-CAN".to_string()));
/// assert!(!ecm.is_fota_capable());
/// ```
#[derive(Debug, Clone)]
pub struct EcuBuilder {
    name: String,
    full_name: Option<String>,
    domain: FunctionalDomain,
    buses: Vec<String>,
    interfaces: Vec<ExternalInterface>,
    gateway: bool,
    fota_capable: bool,
    asil: AsilLevel,
}

impl EcuBuilder {
    /// Creates a builder with defaults: body domain, no buses, no interfaces,
    /// not a gateway, no FOTA, QM.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        Self {
            full_name: None,
            name,
            domain: FunctionalDomain::Body,
            buses: Vec::new(),
            interfaces: Vec::new(),
            gateway: false,
            fota_capable: false,
            asil: AsilLevel::Qm,
        }
    }

    /// Sets the descriptive name.
    #[must_use]
    pub fn full_name(mut self, full_name: impl Into<String>) -> Self {
        self.full_name = Some(full_name.into());
        self
    }

    /// Sets the functional domain.
    #[must_use]
    pub fn domain(mut self, domain: FunctionalDomain) -> Self {
        self.domain = domain;
        self
    }

    /// Attaches the ECU to a bus segment (may be called repeatedly).
    #[must_use]
    pub fn on_bus(mut self, bus: impl Into<String>) -> Self {
        self.buses.push(bus.into());
        self
    }

    /// Adds a directly terminated external interface (may be called repeatedly).
    #[must_use]
    pub fn interface(mut self, interface: ExternalInterface) -> Self {
        self.interfaces.push(interface);
        self
    }

    /// Marks the ECU as a gateway between its bus segments.
    #[must_use]
    pub fn gateway(mut self, gateway: bool) -> Self {
        self.gateway = gateway;
        self
    }

    /// Marks the ECU as firmware-over-the-air capable.
    #[must_use]
    pub fn fota(mut self, fota_capable: bool) -> Self {
        self.fota_capable = fota_capable;
        self
    }

    /// Sets the ASIL level.
    #[must_use]
    pub fn asil(mut self, asil: AsilLevel) -> Self {
        self.asil = asil;
        self
    }

    /// Finishes building the ECU.
    #[must_use]
    pub fn build(self) -> Ecu {
        let full_name = self.full_name.unwrap_or_else(|| self.name.clone());
        Ecu {
            name: self.name,
            full_name,
            domain: self.domain,
            buses: self.buses,
            interfaces: self.interfaces,
            gateway: self.gateway,
            fota_capable: self.fota_capable,
            asil: self.asil,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tcu() -> Ecu {
        Ecu::builder("TCU")
            .full_name("Telematics Control Unit")
            .domain(FunctionalDomain::Communication)
            .on_bus("BACKBONE")
            .interface(ExternalInterface::Cellular)
            .interface(ExternalInterface::Gnss)
            .fota(true)
            .build()
    }

    #[test]
    fn builder_defaults() {
        let ecu = Ecu::builder("LCM").build();
        assert_eq!(ecu.name(), "LCM");
        assert_eq!(ecu.full_name(), "LCM");
        assert_eq!(ecu.domain(), FunctionalDomain::Body);
        assert!(ecu.buses().is_empty());
        assert!(!ecu.is_gateway());
        assert!(!ecu.is_fota_capable());
        assert_eq!(ecu.asil(), AsilLevel::Qm);
        assert!(!ecu.is_externally_exposed());
    }

    #[test]
    fn builder_sets_all_fields() {
        let tcu = sample_tcu();
        assert_eq!(tcu.full_name(), "Telematics Control Unit");
        assert_eq!(tcu.domain(), FunctionalDomain::Communication);
        assert_eq!(tcu.buses(), &["BACKBONE".to_string()]);
        assert_eq!(tcu.interfaces().len(), 2);
        assert!(tcu.is_fota_capable());
        assert!(tcu.is_externally_exposed());
    }

    #[test]
    fn asil_ranks_are_monotone() {
        let ranks: Vec<_> = AsilLevel::ALL.iter().map(|l| l.rank()).collect();
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        assert_eq!(ranks, sorted);
    }

    #[test]
    fn asil_display() {
        assert_eq!(AsilLevel::Qm.to_string(), "QM");
        assert_eq!(AsilLevel::D.to_string(), "ASIL D");
    }

    #[test]
    fn ecu_display_contains_both_names() {
        let tcu = sample_tcu();
        let s = tcu.to_string();
        assert!(s.contains("TCU"));
        assert!(s.contains("Telematics"));
    }

    #[test]
    fn serde_round_trip() {
        let tcu = sample_tcu();
        let json = serde_json::to_string(&tcu).unwrap();
        let back: Ecu = serde_json::from_str(&json).unwrap();
        assert_eq!(tcu, back);
    }

    #[test]
    fn multiple_buses_accumulate() {
        let gw = Ecu::builder("GW")
            .on_bus("PT-CAN")
            .on_bus("BODY-CAN")
            .on_bus("BACKBONE")
            .gateway(true)
            .build();
        assert_eq!(gw.buses().len(), 3);
        assert!(gw.is_gateway());
    }
}
