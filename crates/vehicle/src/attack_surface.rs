//! External interfaces and attack ranges.
//!
//! The paper adopts the Upstream classification of automotive attacks into three
//! ranges — long-range, short-range and physical-access — and colour-codes the ECUs
//! of Figure 4 accordingly.  This module models the external interfaces through
//! which an attacker can touch the vehicle and maps each interface to the attack
//! range and to the ISO/SAE-21434 attack vector it corresponds to.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The range from which an attack can be mounted (Upstream taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttackRange {
    /// The attacker can be anywhere on the internet (cellular, backend, FOTA).
    LongRange,
    /// The attacker must be in radio proximity (Wi-Fi, Bluetooth, V2X, RKE).
    ShortRange,
    /// The attacker needs physical contact with the vehicle (OBD, harness, debug).
    Physical,
}

impl AttackRange {
    /// All ranges, from the most remote to the most local.
    pub const ALL: [AttackRange; 3] = [
        AttackRange::LongRange,
        AttackRange::ShortRange,
        AttackRange::Physical,
    ];

    /// A short label matching the paper's figure legend.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AttackRange::LongRange => "Long Range Attack",
            AttackRange::ShortRange => "Short Range Attack",
            AttackRange::Physical => "Physical Attack",
        }
    }
}

impl fmt::Display for AttackRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The ISO/SAE-21434 attack-vector categories (also used by CVSS).
///
/// These are the rows of the G.9 attack-vector-based feasibility table that the PSP
/// framework re-weights; they are defined here (rather than in the `iso21434` crate)
/// because the vehicle topology is what determines which vector applies to which
/// interface, and the `iso21434` crate depends on this one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttackVector {
    /// Remotely exploitable over a routed network (internet).
    Network,
    /// Exploitable from the same logical network / radio proximity.
    Adjacent,
    /// Requires local access to the item's interfaces (e.g. OBD, USB).
    Local,
    /// Requires physical manipulation of the item itself.
    Physical,
}

impl AttackVector {
    /// All vectors, from the most remote to the most local.
    pub const ALL: [AttackVector; 4] = [
        AttackVector::Network,
        AttackVector::Adjacent,
        AttackVector::Local,
        AttackVector::Physical,
    ];

    /// The attack range an attacker needs to exercise this vector.
    #[must_use]
    pub fn range(self) -> AttackRange {
        match self {
            AttackVector::Network => AttackRange::LongRange,
            AttackVector::Adjacent => AttackRange::ShortRange,
            AttackVector::Local | AttackVector::Physical => AttackRange::Physical,
        }
    }

    /// A short label matching the standard's wording.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AttackVector::Network => "Network",
            AttackVector::Adjacent => "Adjacent",
            AttackVector::Local => "Local",
            AttackVector::Physical => "Physical",
        }
    }
}

impl fmt::Display for AttackVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An external interface through which the vehicle can be reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ExternalInterface {
    /// Cellular modem (2G–5G) of the telematics unit.
    Cellular,
    /// Wi-Fi hotspot / client.
    WiFi,
    /// Bluetooth / BLE pairing.
    Bluetooth,
    /// Vehicle-to-everything radio (DSRC / C-V2X).
    V2x,
    /// Global navigation satellite receiver (spoofable input).
    Gnss,
    /// Remote keyless entry / passive entry radio.
    KeyFobRadio,
    /// Tyre-pressure monitoring radio receiver.
    Tpms,
    /// The on-board diagnostics connector in the cabin.
    ObdPort,
    /// USB / SD media ports of the head unit.
    UsbMedia,
    /// Charging port communication (CCS/PLC) for electrified vehicles.
    ChargingPort,
    /// Direct access to the wiring harness / bus splicing.
    HarnessAccess,
    /// On-PCB debug interfaces (JTAG, SWD, UART).
    DebugPort,
    /// Removal and replacement of the ECU hardware itself.
    EcuRemoval,
}

impl ExternalInterface {
    /// All interfaces, in a stable order.
    pub const ALL: [ExternalInterface; 13] = [
        ExternalInterface::Cellular,
        ExternalInterface::WiFi,
        ExternalInterface::Bluetooth,
        ExternalInterface::V2x,
        ExternalInterface::Gnss,
        ExternalInterface::KeyFobRadio,
        ExternalInterface::Tpms,
        ExternalInterface::ObdPort,
        ExternalInterface::UsbMedia,
        ExternalInterface::ChargingPort,
        ExternalInterface::HarnessAccess,
        ExternalInterface::DebugPort,
        ExternalInterface::EcuRemoval,
    ];

    /// The attack range required to use this interface.
    #[must_use]
    pub fn range(self) -> AttackRange {
        match self {
            ExternalInterface::Cellular => AttackRange::LongRange,
            ExternalInterface::WiFi
            | ExternalInterface::Bluetooth
            | ExternalInterface::V2x
            | ExternalInterface::Gnss
            | ExternalInterface::KeyFobRadio
            | ExternalInterface::Tpms => AttackRange::ShortRange,
            ExternalInterface::ObdPort
            | ExternalInterface::UsbMedia
            | ExternalInterface::ChargingPort
            | ExternalInterface::HarnessAccess
            | ExternalInterface::DebugPort
            | ExternalInterface::EcuRemoval => AttackRange::Physical,
        }
    }

    /// The ISO/SAE-21434 attack vector this interface maps to.
    ///
    /// The distinction the paper leans on is between `Local` (OBD, USB: local
    /// logical access through an exposed connector) and `Physical` (harness
    /// splicing, debug ports, ECU removal: manipulation of the item itself).
    #[must_use]
    pub fn vector(self) -> AttackVector {
        match self {
            ExternalInterface::Cellular => AttackVector::Network,
            ExternalInterface::WiFi
            | ExternalInterface::Bluetooth
            | ExternalInterface::V2x
            | ExternalInterface::Gnss
            | ExternalInterface::KeyFobRadio
            | ExternalInterface::Tpms => AttackVector::Adjacent,
            ExternalInterface::ObdPort
            | ExternalInterface::UsbMedia
            | ExternalInterface::ChargingPort => AttackVector::Local,
            ExternalInterface::HarnessAccess
            | ExternalInterface::DebugPort
            | ExternalInterface::EcuRemoval => AttackVector::Physical,
        }
    }

    /// Whether using the interface requires the owner's cooperation or awareness.
    ///
    /// This feeds the insider/outsider split: interfaces inside the cabin or on the
    /// ECU itself are typically exercised with the owner's consent (tuning,
    /// defeat devices), which is the paper's definition of an *insider* attack.
    #[must_use]
    pub fn typically_owner_assisted(self) -> bool {
        matches!(
            self,
            ExternalInterface::ObdPort
                | ExternalInterface::UsbMedia
                | ExternalInterface::HarnessAccess
                | ExternalInterface::DebugPort
                | ExternalInterface::EcuRemoval
        )
    }

    /// A short label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ExternalInterface::Cellular => "Cellular",
            ExternalInterface::WiFi => "Wi-Fi",
            ExternalInterface::Bluetooth => "Bluetooth",
            ExternalInterface::V2x => "V2X",
            ExternalInterface::Gnss => "GNSS",
            ExternalInterface::KeyFobRadio => "Key fob radio",
            ExternalInterface::Tpms => "TPMS",
            ExternalInterface::ObdPort => "OBD port",
            ExternalInterface::UsbMedia => "USB/SD media",
            ExternalInterface::ChargingPort => "Charging port",
            ExternalInterface::HarnessAccess => "Harness access",
            ExternalInterface::DebugPort => "Debug port",
            ExternalInterface::EcuRemoval => "ECU removal",
        }
    }
}

impl fmt::Display for ExternalInterface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_range_consistency() {
        // The range required by an interface must match the range of its vector,
        // except that Local vectors are exercised with physical presence as well.
        for iface in ExternalInterface::ALL {
            let via_vector = iface.vector().range();
            let direct = iface.range();
            assert_eq!(via_vector, direct, "{iface:?}");
        }
    }

    #[test]
    fn cellular_is_the_only_network_vector() {
        let network: Vec<_> = ExternalInterface::ALL
            .iter()
            .filter(|i| i.vector() == AttackVector::Network)
            .collect();
        assert_eq!(network, vec![&ExternalInterface::Cellular]);
    }

    #[test]
    fn obd_is_local_and_owner_assisted() {
        assert_eq!(ExternalInterface::ObdPort.vector(), AttackVector::Local);
        assert!(ExternalInterface::ObdPort.typically_owner_assisted());
    }

    #[test]
    fn debug_port_is_physical() {
        assert_eq!(
            ExternalInterface::DebugPort.vector(),
            AttackVector::Physical
        );
        assert_eq!(ExternalInterface::DebugPort.range(), AttackRange::Physical);
    }

    #[test]
    fn radio_interfaces_are_short_range() {
        for iface in [
            ExternalInterface::WiFi,
            ExternalInterface::Bluetooth,
            ExternalInterface::V2x,
            ExternalInterface::KeyFobRadio,
            ExternalInterface::Tpms,
        ] {
            assert_eq!(iface.range(), AttackRange::ShortRange, "{iface:?}");
            assert_eq!(iface.vector(), AttackVector::Adjacent, "{iface:?}");
        }
    }

    #[test]
    fn ranges_order_from_remote_to_local() {
        assert!(AttackRange::LongRange < AttackRange::ShortRange);
        assert!(AttackRange::ShortRange < AttackRange::Physical);
    }

    #[test]
    fn vectors_order_from_remote_to_local() {
        assert!(AttackVector::Network < AttackVector::Adjacent);
        assert!(AttackVector::Adjacent < AttackVector::Local);
        assert!(AttackVector::Local < AttackVector::Physical);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            ExternalInterface::ALL.iter().map(|i| i.label()).collect();
        assert_eq!(labels.len(), ExternalInterface::ALL.len());
    }

    #[test]
    fn serde_round_trip() {
        for v in AttackVector::ALL {
            let json = serde_json::to_string(&v).unwrap();
            assert_eq!(v, serde_json::from_str::<AttackVector>(&json).unwrap());
        }
        for r in AttackRange::ALL {
            let json = serde_json::to_string(&r).unwrap();
            assert_eq!(r, serde_json::from_str::<AttackRange>(&json).unwrap());
        }
    }

    #[test]
    fn owner_assisted_interfaces_are_physical_range() {
        for iface in ExternalInterface::ALL {
            if iface.typically_owner_assisted() {
                assert_eq!(iface.range(), AttackRange::Physical, "{iface:?}");
            }
        }
    }
}
