//! Reference vehicle architectures used across the workspace.
//!
//! [`passenger_car`] reproduces the architecture sketched in paper Figure 4
//! (gateway-centred topology with powertrain, chassis, body, infotainment and
//! communication domains plus the OBD port).  [`excavator`] and [`light_truck`]
//! model the industrial and commercial applications the financial case study of
//! Section III uses (DPF tampering on European excavators).

use crate::attack_surface::ExternalInterface;
use crate::bus::{Bus, BusKind};
use crate::domain::FunctionalDomain;
use crate::ecu::{AsilLevel, Ecu};
use crate::topology::VehicleTopology;

/// The passenger-car reference architecture of paper Figure 4.
///
/// # Panics
///
/// Never panics: the built-in definition is validated by the crate's test suite.
#[must_use]
pub fn passenger_car() -> VehicleTopology {
    VehicleTopology::builder("passenger-car")
        // Network segments.
        .bus(Bus::new(
            "PT-CAN",
            BusKind::CanHighSpeed,
            FunctionalDomain::Powertrain,
        ))
        .bus(Bus::new(
            "CHASSIS-CAN",
            BusKind::CanFd,
            FunctionalDomain::Chassis,
        ))
        .bus(Bus::new(
            "BODY-CAN",
            BusKind::CanLowSpeed,
            FunctionalDomain::Body,
        ))
        .bus(Bus::new("BODY-LIN", BusKind::Lin, FunctionalDomain::Body))
        .bus(Bus::new(
            "INFO-CAN",
            BusKind::CanFd,
            FunctionalDomain::Infotainment,
        ))
        .bus(Bus::new(
            "DIAG-CAN",
            BusKind::CanHighSpeed,
            FunctionalDomain::Diagnostics,
        ))
        // Central gateway.
        .ecu(
            Ecu::builder("GATEWAY")
                .full_name("Central Gateway")
                .domain(FunctionalDomain::Communication)
                .on_bus("PT-CAN")
                .on_bus("CHASSIS-CAN")
                .on_bus("BODY-CAN")
                .on_bus("INFO-CAN")
                .on_bus("DIAG-CAN")
                .gateway(true)
                .asil(AsilLevel::B)
                .build(),
        )
        // Communication domain.
        .ecu(
            Ecu::builder("TCU")
                .full_name("Telematics Control Unit")
                .domain(FunctionalDomain::Communication)
                .on_bus("INFO-CAN")
                .interface(ExternalInterface::Cellular)
                .interface(ExternalInterface::Gnss)
                .fota(true)
                .build(),
        )
        .ecu(
            Ecu::builder("V2X")
                .full_name("Vehicle-to-Everything Module")
                .domain(FunctionalDomain::Communication)
                .on_bus("INFO-CAN")
                .interface(ExternalInterface::V2x)
                .build(),
        )
        // Infotainment domain.
        .ecu(
            Ecu::builder("ICM")
                .full_name("Infotainment Control Module")
                .domain(FunctionalDomain::Infotainment)
                .on_bus("INFO-CAN")
                .interface(ExternalInterface::Bluetooth)
                .interface(ExternalInterface::WiFi)
                .interface(ExternalInterface::UsbMedia)
                .fota(true)
                .build(),
        )
        .ecu(
            Ecu::builder("SCU")
                .full_name("Smart Connectivity Unit")
                .domain(FunctionalDomain::Infotainment)
                .on_bus("INFO-CAN")
                .interface(ExternalInterface::KeyFobRadio)
                .build(),
        )
        // Powertrain domain.
        .ecu(
            Ecu::builder("ECM")
                .full_name("Engine Control Module")
                .domain(FunctionalDomain::Powertrain)
                .on_bus("PT-CAN")
                .asil(AsilLevel::D)
                .build(),
        )
        .ecu(
            Ecu::builder("TCM")
                .full_name("Transmission Control Module")
                .domain(FunctionalDomain::Powertrain)
                .on_bus("PT-CAN")
                .asil(AsilLevel::C)
                .build(),
        )
        .ecu(
            Ecu::builder("DEFC")
                .full_name("Diesel Exhaust Fluid Controller")
                .domain(FunctionalDomain::Powertrain)
                .on_bus("PT-CAN")
                .asil(AsilLevel::B)
                .build(),
        )
        // Chassis domain.
        .ecu(
            Ecu::builder("BCU")
                .full_name("Brake Control Unit")
                .domain(FunctionalDomain::Chassis)
                .on_bus("CHASSIS-CAN")
                .asil(AsilLevel::D)
                .build(),
        )
        .ecu(
            Ecu::builder("SCM")
                .full_name("Steering Control Module")
                .domain(FunctionalDomain::Chassis)
                .on_bus("CHASSIS-CAN")
                .asil(AsilLevel::D)
                .build(),
        )
        .ecu(
            Ecu::builder("DCU")
                .full_name("Damping Control Unit")
                .domain(FunctionalDomain::Chassis)
                .on_bus("CHASSIS-CAN")
                .asil(AsilLevel::B)
                .build(),
        )
        .ecu(
            Ecu::builder("WCU")
                .full_name("Wheel Control Unit")
                .domain(FunctionalDomain::Chassis)
                .on_bus("CHASSIS-CAN")
                .interface(ExternalInterface::Tpms)
                .asil(AsilLevel::B)
                .build(),
        )
        // Body domain.
        .ecu(
            Ecu::builder("BCM")
                .full_name("Body Control Module")
                .domain(FunctionalDomain::Body)
                .on_bus("BODY-CAN")
                .on_bus("BODY-LIN")
                .gateway(true)
                .build(),
        )
        .ecu(
            Ecu::builder("LCM")
                .full_name("Light Control Module")
                .domain(FunctionalDomain::Body)
                .on_bus("BODY-LIN")
                .build(),
        )
        // Diagnostics.
        .ecu(
            Ecu::builder("OBD")
                .full_name("On-Board Diagnostic Port")
                .domain(FunctionalDomain::Diagnostics)
                .on_bus("DIAG-CAN")
                .interface(ExternalInterface::ObdPort)
                .build(),
        )
        .build()
        .expect("built-in passenger car architecture is valid")
}

/// A European soil excavator: no telematics by default, engine / after-treatment
/// centric, with the service (diagnostic) connector in the cab.  This is the target
/// application of the paper's DPF-tampering financial case study.
#[must_use]
pub fn excavator() -> VehicleTopology {
    VehicleTopology::builder("excavator")
        .bus(Bus::new(
            "ENG-CAN",
            BusKind::CanHighSpeed,
            FunctionalDomain::Powertrain,
        ))
        .bus(Bus::new(
            "IMPL-CAN",
            BusKind::CanHighSpeed,
            FunctionalDomain::Chassis,
        ))
        .bus(Bus::new(
            "CAB-CAN",
            BusKind::CanLowSpeed,
            FunctionalDomain::Body,
        ))
        .ecu(
            Ecu::builder("ECM")
                .full_name("Engine Control Module")
                .domain(FunctionalDomain::Powertrain)
                .on_bus("ENG-CAN")
                .asil(AsilLevel::C)
                .build(),
        )
        .ecu(
            Ecu::builder("ATM")
                .full_name("After-Treatment Module (DPF/EGR/SCR)")
                .domain(FunctionalDomain::Powertrain)
                .on_bus("ENG-CAN")
                .asil(AsilLevel::B)
                .build(),
        )
        .ecu(
            Ecu::builder("HCM")
                .full_name("Hydraulics Control Module")
                .domain(FunctionalDomain::Chassis)
                .on_bus("IMPL-CAN")
                .asil(AsilLevel::C)
                .build(),
        )
        .ecu(
            Ecu::builder("CABGW")
                .full_name("Cab Gateway & Display")
                .domain(FunctionalDomain::Communication)
                .on_bus("ENG-CAN")
                .on_bus("IMPL-CAN")
                .on_bus("CAB-CAN")
                .gateway(true)
                .build(),
        )
        .ecu(
            Ecu::builder("SVC")
                .full_name("Service Connector")
                .domain(FunctionalDomain::Diagnostics)
                .on_bus("ENG-CAN")
                .interface(ExternalInterface::ObdPort)
                .build(),
        )
        .build()
        .expect("built-in excavator architecture is valid")
}

/// A connected light truck: like the passenger car but with a fleet-telematics unit
/// on the powertrain CAN (common retrofit), which is what moves some powertrain
/// threats into the long-range bucket.
#[must_use]
pub fn light_truck() -> VehicleTopology {
    VehicleTopology::builder("light-truck")
        .bus(Bus::new(
            "PT-CAN",
            BusKind::CanHighSpeed,
            FunctionalDomain::Powertrain,
        ))
        .bus(Bus::new(
            "BODY-CAN",
            BusKind::CanLowSpeed,
            FunctionalDomain::Body,
        ))
        .bus(Bus::new(
            "DIAG-CAN",
            BusKind::CanHighSpeed,
            FunctionalDomain::Diagnostics,
        ))
        .ecu(
            Ecu::builder("GATEWAY")
                .full_name("Central Gateway")
                .domain(FunctionalDomain::Communication)
                .on_bus("PT-CAN")
                .on_bus("BODY-CAN")
                .on_bus("DIAG-CAN")
                .gateway(true)
                .build(),
        )
        .ecu(
            Ecu::builder("ECM")
                .full_name("Engine Control Module")
                .domain(FunctionalDomain::Powertrain)
                .on_bus("PT-CAN")
                .asil(AsilLevel::D)
                .build(),
        )
        .ecu(
            Ecu::builder("DEFC")
                .full_name("Diesel Exhaust Fluid Controller")
                .domain(FunctionalDomain::Powertrain)
                .on_bus("PT-CAN")
                .asil(AsilLevel::B)
                .build(),
        )
        .ecu(
            Ecu::builder("FLEET")
                .full_name("Fleet Telematics Unit")
                .domain(FunctionalDomain::Communication)
                .on_bus("PT-CAN")
                .interface(ExternalInterface::Cellular)
                .fota(true)
                .build(),
        )
        .ecu(
            Ecu::builder("BCM")
                .full_name("Body Control Module")
                .domain(FunctionalDomain::Body)
                .on_bus("BODY-CAN")
                .build(),
        )
        .ecu(
            Ecu::builder("OBD")
                .full_name("On-Board Diagnostic Port")
                .domain(FunctionalDomain::Diagnostics)
                .on_bus("DIAG-CAN")
                .interface(ExternalInterface::ObdPort)
                .build(),
        )
        .build()
        .expect("built-in light truck architecture is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack_surface::AttackRange;
    use crate::reachability::ReachabilityAnalysis;

    #[test]
    fn passenger_car_has_expected_shape() {
        let car = passenger_car();
        assert_eq!(car.name(), "passenger-car");
        assert_eq!(car.ecu_count(), 15);
        assert_eq!(car.buses().count(), 6);
        assert!(car.ecu("ECM").is_some());
        assert!(car.ecu("GATEWAY").unwrap().is_gateway());
    }

    #[test]
    fn passenger_car_powertrain_is_not_directly_remote() {
        let car = passenger_car();
        let analysis = ReachabilityAnalysis::analyze(&car);
        for name in ["ECM", "TCM", "DEFC"] {
            let c = analysis.classification_of(name).unwrap();
            assert!(
                c.direct_ranges()
                    .iter()
                    .all(|r| *r == AttackRange::Physical),
                "{name} must only be directly exposed to physical access"
            );
        }
    }

    #[test]
    fn passenger_car_tcu_is_long_range() {
        let car = passenger_car();
        let analysis = ReachabilityAnalysis::analyze(&car);
        let tcu = analysis.classification_of("TCU").unwrap();
        assert!(tcu.direct_ranges().contains(&AttackRange::LongRange));
    }

    #[test]
    fn excavator_has_no_long_range_interface() {
        let exc = excavator();
        let analysis = ReachabilityAnalysis::analyze(&exc);
        for c in analysis.iter() {
            assert!(
                !c.direct_ranges().contains(&AttackRange::LongRange),
                "{} should not be directly long-range reachable",
                c.name()
            );
        }
    }

    #[test]
    fn excavator_ecm_reachable_via_obd() {
        let exc = excavator();
        let analysis = ReachabilityAnalysis::analyze(&exc);
        let ecm = analysis.classification_of("ECM").unwrap();
        assert!(ecm
            .exposures()
            .iter()
            .any(|e| e.vector == crate::attack_surface::AttackVector::Local));
    }

    #[test]
    fn light_truck_fleet_unit_exposes_pt_can_remotely() {
        let truck = light_truck();
        let analysis = ReachabilityAnalysis::analyze(&truck);
        let ecm = analysis.classification_of("ECM").unwrap();
        assert!(ecm.reachable_ranges().contains(&AttackRange::LongRange));
    }

    #[test]
    fn all_reference_architectures_have_an_obd_or_service_port() {
        for topo in [passenger_car(), excavator(), light_truck()] {
            let has_obd = topo
                .interfaces()
                .any(|(i, _)| i == ExternalInterface::ObdPort);
            assert!(has_obd, "{} lacks an OBD/service port", topo.name());
        }
    }
}
