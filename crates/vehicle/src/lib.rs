//! Vehicle electrical/electronic (E/E) architecture substrate for the PSP framework.
//!
//! The PSP paper argues that the static attack-feasibility models of ISO/SAE-21434
//! mis-rate threats because real vehicles are heterogeneous: a powertrain ECU that is
//! only reachable over the CAN bus and the OBD connector faces a very different
//! attacker population than a telematics unit with a cellular modem.  This crate
//! provides the structural model that the rest of the workspace reasons over:
//!
//! * [`domain`] — functional domains (powertrain, chassis, body, infotainment, …),
//! * [`bus`] — in-vehicle networks (CAN, CAN-FD, LIN, FlexRay, Ethernet),
//! * [`attack_surface`] — external interfaces and their attack range
//!   (long-range / short-range / physical, following the Upstream taxonomy cited by
//!   the paper),
//! * [`ecu`] — electronic control units with their interfaces and properties,
//! * [`topology`] — the vehicle network graph built on `petgraph`,
//! * [`reachability`] — which attack ranges can reach which ECU (paper Figure 4),
//! * [`standards_graph`] — the standards-contribution graph of paper Figure 1,
//! * [`lifecycle`] — the ISO/SAE-21434 development life cycle with TARA
//!   re-processing points of paper Figure 2,
//! * [`mod@reference`] — ready-made reference architectures (passenger car, excavator,
//!   light truck) used by the examples, tests and benches.
//!
//! # Example
//!
//! ```
//! use vehicle::reference::passenger_car;
//! use vehicle::reachability::ReachabilityAnalysis;
//! use vehicle::attack_surface::AttackRange;
//!
//! let car = passenger_car();
//! let analysis = ReachabilityAnalysis::analyze(&car);
//! let ecm = analysis.classification_of("ECM").expect("ECM present");
//! // The engine control module is not directly exposed to long-range interfaces.
//! assert!(ecm.direct_ranges().iter().all(|r| *r != AttackRange::LongRange));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack_surface;
pub mod bus;
pub mod domain;
pub mod ecu;
pub mod error;
pub mod lifecycle;
pub mod reachability;
pub mod reference;
pub mod standards_graph;
pub mod topology;

pub use attack_surface::{AttackRange, ExternalInterface};
pub use bus::{Bus, BusKind};
pub use domain::FunctionalDomain;
pub use ecu::{AsilLevel, Ecu, EcuBuilder};
pub use error::VehicleError;
pub use topology::{NodeKind, VehicleTopology, VehicleTopologyBuilder};
