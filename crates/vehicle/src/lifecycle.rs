//! The ISO/SAE-21434 development life cycle (paper Figure 2).
//!
//! Figure 2 shows the V-model phases of an ISO/SAE-21434 development and marks the
//! points at which the TARA is (re)processed.  The PSP pitch is precisely that a
//! *dynamic* model makes these re-processing passes cheap and data-driven instead of
//! a manual re-evaluation, so the lifecycle model is exercised by several examples.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A phase of the ISO/SAE-21434 development life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum LifecyclePhase {
    /// Item definition (Clause 9.3).
    ItemDefinition,
    /// Threat analysis and risk assessment (Clause 15).
    Tara,
    /// Cybersecurity goals and concepts (Clauses 9.4 & 9.5).
    GoalsAndConcepts,
    /// System architecture design (Clause 10).
    Design,
    /// Implementation (Clause 10).
    Implementation,
    /// Integration and verification (Clause 10).
    IntegrationVerification,
    /// Functional testing and vulnerability scanning (Clause 11).
    FunctionalTesting,
    /// Fuzz testing (Clause 11).
    FuzzTesting,
    /// Penetration testing (Clause 11).
    PenTesting,
    /// Production readiness and post-development monitoring.
    ProductionReadiness,
}

impl LifecyclePhase {
    /// All phases in chronological (V-model, left-to-right) order as drawn in
    /// paper Figure 2.
    pub const ALL: [LifecyclePhase; 10] = [
        LifecyclePhase::ItemDefinition,
        LifecyclePhase::Tara,
        LifecyclePhase::GoalsAndConcepts,
        LifecyclePhase::Design,
        LifecyclePhase::Implementation,
        LifecyclePhase::IntegrationVerification,
        LifecyclePhase::FunctionalTesting,
        LifecyclePhase::FuzzTesting,
        LifecyclePhase::PenTesting,
        LifecyclePhase::ProductionReadiness,
    ];

    /// The ISO/SAE-21434 clause that governs the phase.
    #[must_use]
    pub fn clause(self) -> &'static str {
        match self {
            LifecyclePhase::ItemDefinition => "Clause 9.3",
            LifecyclePhase::Tara => "Clause 15",
            LifecyclePhase::GoalsAndConcepts => "Clauses 9.4 & 9.5",
            LifecyclePhase::Design
            | LifecyclePhase::Implementation
            | LifecyclePhase::IntegrationVerification => "Clause 10",
            LifecyclePhase::FunctionalTesting
            | LifecyclePhase::FuzzTesting
            | LifecyclePhase::PenTesting => "Clause 11",
            LifecyclePhase::ProductionReadiness => "Clause 13",
        }
    }

    /// Whether Figure 2 marks a TARA re-processing arrow at the end of this phase.
    #[must_use]
    pub fn triggers_tara_reprocessing(self) -> bool {
        matches!(
            self,
            LifecyclePhase::Design
                | LifecyclePhase::IntegrationVerification
                | LifecyclePhase::FunctionalTesting
                | LifecyclePhase::FuzzTesting
                | LifecyclePhase::PenTesting
        )
    }

    /// A human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LifecyclePhase::ItemDefinition => "Item Definitions",
            LifecyclePhase::Tara => "TARA",
            LifecyclePhase::GoalsAndConcepts => "Goals & Concepts",
            LifecyclePhase::Design => "Design",
            LifecyclePhase::Implementation => "Implementation",
            LifecyclePhase::IntegrationVerification => "Integration & Verification",
            LifecyclePhase::FunctionalTesting => "Functional testing & Vulnerability Scanning",
            LifecyclePhase::FuzzTesting => "Fuzz testing",
            LifecyclePhase::PenTesting => "Pen Testing",
            LifecyclePhase::ProductionReadiness => "Production Readiness",
        }
    }
}

impl fmt::Display for LifecyclePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A development life cycle instance that tracks which phase the project is in and
/// how many TARA (re)processing passes have been performed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DevelopmentLifecycle {
    current: usize,
    tara_passes: u32,
}

impl DevelopmentLifecycle {
    /// Starts a new life cycle at the item-definition phase.
    #[must_use]
    pub fn new() -> Self {
        Self {
            current: 0,
            tara_passes: 0,
        }
    }

    /// The current phase.
    #[must_use]
    pub fn current_phase(&self) -> LifecyclePhase {
        LifecyclePhase::ALL[self.current]
    }

    /// Advances to the next phase, counting TARA passes: entering the TARA phase or
    /// leaving any phase that triggers re-processing increments the counter.
    /// Returns the new phase, or `None` once the life cycle is complete.
    pub fn advance(&mut self) -> Option<LifecyclePhase> {
        let leaving = self.current_phase();
        if leaving.triggers_tara_reprocessing() {
            self.tara_passes += 1;
        }
        if self.current + 1 >= LifecyclePhase::ALL.len() {
            self.current = LifecyclePhase::ALL.len() - 1;
            return None;
        }
        self.current += 1;
        let entering = self.current_phase();
        if entering == LifecyclePhase::Tara {
            self.tara_passes += 1;
        }
        Some(entering)
    }

    /// Number of TARA processing passes performed so far (initial + re-processing).
    #[must_use]
    pub fn tara_passes(&self) -> u32 {
        self.tara_passes
    }

    /// Runs the whole life cycle to completion and returns the total number of TARA
    /// passes — six in the paper's Figure 2 (one initial, five re-processing).
    #[must_use]
    pub fn run_to_completion(mut self) -> u32 {
        while self.advance().is_some() {}
        self.tara_passes
    }
}

impl Default for DevelopmentLifecycle {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_are_in_order_and_unique() {
        let set: std::collections::HashSet<_> = LifecyclePhase::ALL.iter().collect();
        assert_eq!(set.len(), LifecyclePhase::ALL.len());
        assert_eq!(LifecyclePhase::ALL[0], LifecyclePhase::ItemDefinition);
        assert_eq!(LifecyclePhase::ALL[9], LifecyclePhase::ProductionReadiness);
    }

    #[test]
    fn clause_mapping_matches_figure_2() {
        assert_eq!(LifecyclePhase::ItemDefinition.clause(), "Clause 9.3");
        assert_eq!(LifecyclePhase::Tara.clause(), "Clause 15");
        assert_eq!(LifecyclePhase::FuzzTesting.clause(), "Clause 11");
        assert_eq!(LifecyclePhase::Design.clause(), "Clause 10");
    }

    #[test]
    fn five_phases_trigger_reprocessing() {
        let n = LifecyclePhase::ALL
            .iter()
            .filter(|p| p.triggers_tara_reprocessing())
            .count();
        assert_eq!(n, 5);
    }

    #[test]
    fn lifecycle_counts_six_tara_passes() {
        // One initial TARA pass plus five re-processing arrows in Figure 2.
        assert_eq!(DevelopmentLifecycle::new().run_to_completion(), 6);
    }

    #[test]
    fn advance_walks_every_phase() {
        let mut lc = DevelopmentLifecycle::new();
        let mut seen = vec![lc.current_phase()];
        while let Some(p) = lc.advance() {
            seen.push(p);
        }
        assert_eq!(seen, LifecyclePhase::ALL.to_vec());
    }

    #[test]
    fn advance_past_end_returns_none_and_stays() {
        let mut lc = DevelopmentLifecycle::new();
        while lc.advance().is_some() {}
        assert_eq!(lc.current_phase(), LifecyclePhase::ProductionReadiness);
        assert!(lc.advance().is_none());
        assert_eq!(lc.current_phase(), LifecyclePhase::ProductionReadiness);
    }

    #[test]
    fn default_equals_new() {
        assert_eq!(DevelopmentLifecycle::default(), DevelopmentLifecycle::new());
    }
}
