//! Attack-range reachability analysis (paper Figure 4).
//!
//! Figure 4 of the paper colour-codes the ECUs of a reference passenger car by the
//! attack range that can plausibly reach them: green for long-range, blue for
//! short-range and red for physical access only.  This module reproduces that
//! classification from the topology graph:
//!
//! * an ECU is **directly** exposed to a range if it terminates an external
//!   interface of that range;
//! * an ECU is **transitively** exposed if a path exists from such an interface to
//!   the ECU through bus segments, where every domain crossing goes through a
//!   gateway ECU (the number of gateway hops is reported as the *depth* of the
//!   exposure).

use crate::attack_surface::{AttackRange, AttackVector};
use crate::topology::{NodeKind, VehicleTopology};
use petgraph::graph::NodeIndex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// How an ECU can be reached from a given attack range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Exposure {
    /// The attack range of the entry interface.
    pub range: AttackRange,
    /// The attack vector of the entry interface.
    pub vector: AttackVector,
    /// Number of gateway ECUs that must be traversed (0 = the interface terminates
    /// on the ECU itself or on an ECU sharing a bus segment with it).
    pub gateway_hops: usize,
    /// Whether the entry interface terminates directly on the target ECU.
    pub direct: bool,
}

/// The classification of a single ECU.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EcuClassification {
    name: String,
    exposures: Vec<Exposure>,
}

impl EcuClassification {
    /// The ECU short name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All exposures, sorted from the most remote range to the most local and by
    /// increasing gateway depth.
    #[must_use]
    pub fn exposures(&self) -> &[Exposure] {
        &self.exposures
    }

    /// Attack ranges whose entry interface terminates directly on this ECU.
    #[must_use]
    pub fn direct_ranges(&self) -> Vec<AttackRange> {
        let set: BTreeSet<_> = self
            .exposures
            .iter()
            .filter(|e| e.direct)
            .map(|e| e.range)
            .collect();
        set.into_iter().collect()
    }

    /// All attack ranges that can reach the ECU (directly or through gateways).
    #[must_use]
    pub fn reachable_ranges(&self) -> Vec<AttackRange> {
        let set: BTreeSet<_> = self.exposures.iter().map(|e| e.range).collect();
        set.into_iter().collect()
    }

    /// The "dominant" range used for the Figure 4 colour code: the most remote
    /// range that reaches the ECU with at most `max_hops` gateway traversals,
    /// falling back to the most remote reachable range.
    #[must_use]
    pub fn dominant_range(&self, max_hops: usize) -> Option<AttackRange> {
        self.exposures
            .iter()
            .filter(|e| e.gateway_hops <= max_hops)
            .map(|e| e.range)
            .min()
            .or_else(|| self.reachable_ranges().first().copied())
    }

    /// Whether the only way to reach this ECU is physical access
    /// (possibly including the local OBD vector).
    #[must_use]
    pub fn physical_only(&self) -> bool {
        self.exposures
            .iter()
            .all(|e| e.range == AttackRange::Physical)
    }
}

/// Result of analysing a whole topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReachabilityAnalysis {
    topology_name: String,
    classifications: BTreeMap<String, EcuClassification>,
}

impl ReachabilityAnalysis {
    /// Runs the analysis on a topology.
    #[must_use]
    pub fn analyze(topology: &VehicleTopology) -> Self {
        let graph = topology.graph();

        // Pre-compute, for every interface node, the BFS frontier over the graph.
        // Traversal rule: interfaces -> their ECU -> buses -> ECUs ... ; crossing
        // from a bus into an ECU and out to another bus is only allowed if that ECU
        // is a gateway, and each such crossing counts one gateway hop.
        let mut per_ecu: HashMap<String, Vec<Exposure>> = HashMap::new();

        for idx in graph.node_indices() {
            let NodeKind::Interface(iface) = &graph[idx] else {
                continue;
            };
            let reached = bfs_from_interface(topology, idx);
            for (ecu_name, hops, direct) in reached {
                per_ecu.entry(ecu_name).or_default().push(Exposure {
                    range: iface.range(),
                    vector: iface.vector(),
                    gateway_hops: hops,
                    direct,
                });
            }
        }

        let mut classifications = BTreeMap::new();
        for ecu in topology.ecus() {
            let mut exposures = per_ecu.remove(ecu.name()).unwrap_or_default();
            // Every ECU is always exposed to physical attack by definition: the
            // attacker can open the vehicle and manipulate the unit (the MATE
            // scenario the paper insists on).
            exposures.push(Exposure {
                range: AttackRange::Physical,
                vector: AttackVector::Physical,
                gateway_hops: 0,
                direct: true,
            });
            exposures.sort_by_key(|e| (e.range, e.gateway_hops, !e.direct));
            exposures.dedup();
            classifications.insert(
                ecu.name().to_string(),
                EcuClassification {
                    name: ecu.name().to_string(),
                    exposures,
                },
            );
        }

        Self {
            topology_name: topology.name().to_string(),
            classifications,
        }
    }

    /// The name of the analysed topology.
    #[must_use]
    pub fn topology_name(&self) -> &str {
        &self.topology_name
    }

    /// Classification for a single ECU.
    #[must_use]
    pub fn classification_of(&self, ecu_name: &str) -> Option<&EcuClassification> {
        self.classifications.get(ecu_name)
    }

    /// Iterates over all classifications in ECU-name order.
    pub fn iter(&self) -> impl Iterator<Item = &EcuClassification> {
        self.classifications.values()
    }

    /// ECUs grouped by their dominant range, mirroring the Figure 4 colour code.
    /// `max_hops` bounds how many gateways an attacker is assumed to traverse.
    #[must_use]
    pub fn grouped_by_dominant_range(&self, max_hops: usize) -> BTreeMap<AttackRange, Vec<String>> {
        let mut out: BTreeMap<AttackRange, Vec<String>> = BTreeMap::new();
        for c in self.classifications.values() {
            if let Some(range) = c.dominant_range(max_hops) {
                out.entry(range).or_default().push(c.name.clone());
            }
        }
        out
    }
}

/// BFS from an interface node.  Returns `(ecu_name, gateway_hops, direct)` tuples.
///
/// Semantics: the ECU terminating the interface is reached *directly* at depth 0;
/// every ECU sharing a bus segment with it is reached at depth 0 (a compromised
/// entry ECU can inject on its whole segment); continuing through any further ECU
/// onto another segment is only possible if that ECU is a gateway and costs one
/// gateway hop.
fn bfs_from_interface(topology: &VehicleTopology, start: NodeIndex) -> Vec<(String, usize, bool)> {
    let graph = topology.graph();
    let mut best: HashMap<NodeIndex, usize> = HashMap::new();
    let mut entry: Vec<NodeIndex> = Vec::new();
    let mut queue: VecDeque<NodeIndex> = VecDeque::new();

    for ecu_idx in graph.neighbors(start) {
        if matches!(&graph[ecu_idx], NodeKind::Ecu(_)) {
            best.insert(ecu_idx, 0);
            entry.push(ecu_idx);
            queue.push_back(ecu_idx);
        }
    }

    while let Some(node) = queue.pop_front() {
        let hops = best[&node];
        let NodeKind::Ecu(ecu) = &graph[node] else {
            continue;
        };
        let is_entry = entry.contains(&node);
        // Only the entry ECU and gateways forward traffic onto their segments.
        if !is_entry && !ecu.is_gateway() && ecu.buses().len() < 2 {
            continue;
        }
        // Crossing through a non-entry (gateway) ECU costs one hop.
        let next_hops = if is_entry { hops } else { hops + 1 };
        for bus_idx in graph.neighbors(node) {
            if !matches!(&graph[bus_idx], NodeKind::Bus(_)) {
                continue;
            }
            for peer_idx in graph.neighbors(bus_idx) {
                if peer_idx == node || !matches!(&graph[peer_idx], NodeKind::Ecu(_)) {
                    continue;
                }
                let better = match best.get(&peer_idx) {
                    Some(prev) => next_hops < *prev,
                    None => true,
                };
                if better {
                    best.insert(peer_idx, next_hops);
                    queue.push_back(peer_idx);
                }
            }
        }
    }

    best.into_iter()
        .map(|(idx, hops)| {
            let name = match &graph[idx] {
                NodeKind::Ecu(e) => e.name().to_string(),
                other => other.name(),
            };
            (name, hops, entry.contains(&idx))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack_surface::ExternalInterface;
    use crate::bus::{Bus, BusKind};
    use crate::domain::FunctionalDomain;
    use crate::ecu::Ecu;

    fn topology() -> VehicleTopology {
        VehicleTopology::builder("test-car")
            .bus(Bus::new(
                "PT-CAN",
                BusKind::CanHighSpeed,
                FunctionalDomain::Powertrain,
            ))
            .bus(Bus::new(
                "INFO-CAN",
                BusKind::CanFd,
                FunctionalDomain::Infotainment,
            ))
            .ecu(
                Ecu::builder("TCU")
                    .domain(FunctionalDomain::Communication)
                    .on_bus("INFO-CAN")
                    .interface(ExternalInterface::Cellular)
                    .interface(ExternalInterface::Bluetooth)
                    .fota(true)
                    .build(),
            )
            .ecu(
                Ecu::builder("GW")
                    .domain(FunctionalDomain::Communication)
                    .on_bus("INFO-CAN")
                    .on_bus("PT-CAN")
                    .gateway(true)
                    .build(),
            )
            .ecu(
                Ecu::builder("ECM")
                    .domain(FunctionalDomain::Powertrain)
                    .on_bus("PT-CAN")
                    .build(),
            )
            .ecu(
                Ecu::builder("OBD")
                    .full_name("OBD port node")
                    .domain(FunctionalDomain::Diagnostics)
                    .on_bus("PT-CAN")
                    .interface(ExternalInterface::ObdPort)
                    .build(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn every_ecu_is_physically_exposed() {
        let analysis = ReachabilityAnalysis::analyze(&topology());
        for c in analysis.iter() {
            assert!(
                c.reachable_ranges().contains(&AttackRange::Physical),
                "{} should always be physically reachable",
                c.name()
            );
        }
    }

    #[test]
    fn tcu_is_long_range_exposed_directly() {
        let analysis = ReachabilityAnalysis::analyze(&topology());
        let tcu = analysis.classification_of("TCU").unwrap();
        assert!(tcu.direct_ranges().contains(&AttackRange::LongRange));
        assert!(tcu.direct_ranges().contains(&AttackRange::ShortRange));
    }

    #[test]
    fn ecm_reachable_from_long_range_only_through_gateway() {
        let analysis = ReachabilityAnalysis::analyze(&topology());
        let ecm = analysis.classification_of("ECM").unwrap();
        let long_range: Vec<_> = ecm
            .exposures()
            .iter()
            .filter(|e| e.range == AttackRange::LongRange)
            .collect();
        assert!(!long_range.is_empty(), "a path through GW exists");
        assert!(long_range.iter().all(|e| !e.direct));
        assert!(long_range.iter().all(|e| e.gateway_hops >= 1));
    }

    #[test]
    fn ecm_reachable_locally_via_obd_same_segment() {
        let analysis = ReachabilityAnalysis::analyze(&topology());
        let ecm = analysis.classification_of("ECM").unwrap();
        let local: Vec<_> = ecm
            .exposures()
            .iter()
            .filter(|e| e.vector == AttackVector::Local)
            .collect();
        assert!(
            !local.is_empty(),
            "OBD port shares the PT-CAN segment with the ECM"
        );
        assert_eq!(local[0].gateway_hops, 0);
    }

    #[test]
    fn dominant_range_with_zero_hops_keeps_ecm_physical_or_short() {
        let analysis = ReachabilityAnalysis::analyze(&topology());
        let ecm = analysis.classification_of("ECM").unwrap();
        // With no gateway traversal allowed, long range cannot reach the ECM.
        let dom = ecm.dominant_range(0).unwrap();
        assert_ne!(dom, AttackRange::LongRange);
        // Allowing one hop makes the long-range path through the gateway count.
        assert_eq!(ecm.dominant_range(1).unwrap(), AttackRange::LongRange);
    }

    #[test]
    fn grouping_covers_all_ecus() {
        let analysis = ReachabilityAnalysis::analyze(&topology());
        let grouped = analysis.grouped_by_dominant_range(1);
        let total: usize = grouped.values().map(Vec::len).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn unknown_ecu_classification_is_none() {
        let analysis = ReachabilityAnalysis::analyze(&topology());
        assert!(analysis.classification_of("NOPE").is_none());
    }

    #[test]
    fn physical_only_for_isolated_ecu() {
        let topo = VehicleTopology::builder("isolated")
            .bus(Bus::new(
                "LOCAL-CAN",
                BusKind::CanHighSpeed,
                FunctionalDomain::Powertrain,
            ))
            .ecu(
                Ecu::builder("ECM")
                    .on_bus("LOCAL-CAN")
                    .domain(FunctionalDomain::Powertrain)
                    .build(),
            )
            .build()
            .unwrap();
        let analysis = ReachabilityAnalysis::analyze(&topo);
        assert!(analysis.classification_of("ECM").unwrap().physical_only());
    }
}
