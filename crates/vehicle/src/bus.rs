//! In-vehicle network buses.
//!
//! The paper's powertrain argument rests on the properties of the CAN bus: no
//! native authentication, broadcast medium, physically accessible through the OBD
//! connector.  This module models the common in-vehicle network technologies and
//! the properties the risk analysis needs (bandwidth, native security, typical
//! domain usage).

use crate::domain::FunctionalDomain;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of an in-vehicle network segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum BusKind {
    /// Classical high-speed CAN (up to 1 Mbit/s).
    CanHighSpeed,
    /// Classical low-speed / fault-tolerant CAN (body electronics).
    CanLowSpeed,
    /// CAN-FD with flexible data rate (up to 8 Mbit/s payload phase).
    CanFd,
    /// LIN sub-bus for low-cost actuators and sensors.
    Lin,
    /// FlexRay time-triggered bus (chassis, x-by-wire).
    FlexRay,
    /// Automotive Ethernet (100BASE-T1 / 1000BASE-T1).
    Ethernet,
    /// MOST multimedia ring (legacy infotainment).
    Most,
}

impl BusKind {
    /// All bus kinds, in a stable order.
    pub const ALL: [BusKind; 7] = [
        BusKind::CanHighSpeed,
        BusKind::CanLowSpeed,
        BusKind::CanFd,
        BusKind::Lin,
        BusKind::FlexRay,
        BusKind::Ethernet,
        BusKind::Most,
    ];

    /// Nominal bandwidth in kilobit per second.
    #[must_use]
    pub fn bandwidth_kbps(self) -> u32 {
        match self {
            BusKind::CanHighSpeed => 1_000,
            BusKind::CanLowSpeed => 125,
            BusKind::CanFd => 8_000,
            BusKind::Lin => 20,
            BusKind::FlexRay => 10_000,
            BusKind::Ethernet => 1_000_000,
            BusKind::Most => 150_000,
        }
    }

    /// Whether the bus technology ships any native security mechanism
    /// (message authentication, encryption).  Classical CAN, LIN and FlexRay do not,
    /// which is exactly what makes physical and OBD-local attacks on the powertrain
    /// sub-network attractive.
    #[must_use]
    pub fn has_native_security(self) -> bool {
        matches!(self, BusKind::Ethernet)
    }

    /// Whether frames are broadcast to every node on the segment.
    #[must_use]
    pub fn is_broadcast(self) -> bool {
        !matches!(self, BusKind::Ethernet)
    }

    /// A short label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BusKind::CanHighSpeed => "CAN-HS",
            BusKind::CanLowSpeed => "CAN-LS",
            BusKind::CanFd => "CAN-FD",
            BusKind::Lin => "LIN",
            BusKind::FlexRay => "FlexRay",
            BusKind::Ethernet => "Ethernet",
            BusKind::Most => "MOST",
        }
    }
}

impl fmt::Display for BusKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A concrete network segment in a vehicle architecture.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bus {
    name: String,
    kind: BusKind,
    domain: FunctionalDomain,
}

impl Bus {
    /// Creates a new bus segment.
    ///
    /// # Examples
    ///
    /// ```
    /// use vehicle::{Bus, BusKind, FunctionalDomain};
    /// let bus = Bus::new("PT-CAN", BusKind::CanHighSpeed, FunctionalDomain::Powertrain);
    /// assert_eq!(bus.name(), "PT-CAN");
    /// ```
    pub fn new(name: impl Into<String>, kind: BusKind, domain: FunctionalDomain) -> Self {
        Self {
            name: name.into(),
            kind,
            domain,
        }
    }

    /// The segment name, unique within a topology.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The network technology.
    #[must_use]
    pub fn kind(&self) -> BusKind {
        self.kind
    }

    /// The functional domain this segment primarily serves.
    #[must_use]
    pub fn domain(&self) -> FunctionalDomain {
        self.domain
    }

    /// Whether an attacker with physical access to the harness can inject frames
    /// that every node will accept (broadcast bus without native security).
    #[must_use]
    pub fn is_injection_prone(&self) -> bool {
        self.kind.is_broadcast() && !self.kind.has_native_security()
    }
}

impl fmt::Display for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn can_is_broadcast_without_security() {
        assert!(BusKind::CanHighSpeed.is_broadcast());
        assert!(!BusKind::CanHighSpeed.has_native_security());
        assert!(BusKind::CanFd.is_broadcast());
    }

    #[test]
    fn ethernet_is_switched_with_security() {
        assert!(!BusKind::Ethernet.is_broadcast());
        assert!(BusKind::Ethernet.has_native_security());
    }

    #[test]
    fn bandwidth_ordering_is_sensible() {
        assert!(BusKind::Lin.bandwidth_kbps() < BusKind::CanHighSpeed.bandwidth_kbps());
        assert!(BusKind::CanHighSpeed.bandwidth_kbps() < BusKind::CanFd.bandwidth_kbps());
        assert!(BusKind::CanFd.bandwidth_kbps() < BusKind::Ethernet.bandwidth_kbps());
    }

    #[test]
    fn powertrain_can_is_injection_prone() {
        let bus = Bus::new(
            "PT-CAN",
            BusKind::CanHighSpeed,
            FunctionalDomain::Powertrain,
        );
        assert!(bus.is_injection_prone());
        assert_eq!(bus.domain(), FunctionalDomain::Powertrain);
    }

    #[test]
    fn ethernet_backbone_is_not_injection_prone() {
        let bus = Bus::new(
            "BACKBONE",
            BusKind::Ethernet,
            FunctionalDomain::Communication,
        );
        assert!(!bus.is_injection_prone());
    }

    #[test]
    fn display_includes_kind() {
        let bus = Bus::new("BODY-LIN", BusKind::Lin, FunctionalDomain::Body);
        assert_eq!(bus.to_string(), "BODY-LIN (LIN)");
    }

    #[test]
    fn serde_round_trip() {
        let bus = Bus::new("PT-CAN", BusKind::CanFd, FunctionalDomain::Powertrain);
        let json = serde_json::to_string(&bus).unwrap();
        let back: Bus = serde_json::from_str(&json).unwrap();
        assert_eq!(bus, back);
    }

    #[test]
    fn all_kinds_have_distinct_labels() {
        let labels: std::collections::HashSet<_> = BusKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), BusKind::ALL.len());
    }
}
