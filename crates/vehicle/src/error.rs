//! Error types for the vehicle architecture substrate.

use std::fmt;

/// Errors produced while building or querying a vehicle architecture model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VehicleError {
    /// An ECU, bus or interface name was referenced before being declared.
    UnknownNode {
        /// The name that could not be resolved.
        name: String,
    },
    /// Two nodes with the same name were declared.
    DuplicateNode {
        /// The conflicting name.
        name: String,
    },
    /// A connection was requested between nodes that cannot be linked
    /// (for instance two buses without a gateway ECU in between).
    InvalidConnection {
        /// Source node name.
        from: String,
        /// Destination node name.
        to: String,
        /// Human-readable reason.
        reason: String,
    },
    /// The topology is empty or otherwise unusable for analysis.
    EmptyTopology,
}

impl fmt::Display for VehicleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VehicleError::UnknownNode { name } => write!(f, "unknown node `{name}`"),
            VehicleError::DuplicateNode { name } => write!(f, "duplicate node `{name}`"),
            VehicleError::InvalidConnection { from, to, reason } => {
                write!(f, "invalid connection from `{from}` to `{to}`: {reason}")
            }
            VehicleError::EmptyTopology => write!(f, "topology contains no nodes"),
        }
    }
}

impl std::error::Error for VehicleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_node() {
        let err = VehicleError::UnknownNode { name: "ECM".into() };
        assert_eq!(err.to_string(), "unknown node `ECM`");
    }

    #[test]
    fn display_duplicate_node() {
        let err = VehicleError::DuplicateNode { name: "TCU".into() };
        assert_eq!(err.to_string(), "duplicate node `TCU`");
    }

    #[test]
    fn display_invalid_connection() {
        let err = VehicleError::InvalidConnection {
            from: "CAN1".into(),
            to: "CAN2".into(),
            reason: "buses must be joined through a gateway".into(),
        };
        assert!(err.to_string().contains("CAN1"));
        assert!(err.to_string().contains("gateway"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VehicleError>();
    }

    #[test]
    fn implements_std_error() {
        let err: Box<dyn std::error::Error> = Box::new(VehicleError::EmptyTopology);
        assert_eq!(err.to_string(), "topology contains no nodes");
    }
}
