//! Offline shim of `proptest`.
//!
//! Implements the subset this workspace's property tests use: the `proptest!`
//! / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!` macros, `Strategy` with
//! `prop_map`, `Just`, numeric range strategies, tuple strategies,
//! `prop::collection::vec`, and string strategies over a small regex subset
//! (`.`, `[...]` classes, `?` and `{m,n}` quantifiers).  Cases are generated
//! deterministically from a per-test seed, so failures are reproducible; there
//! is no shrinking.

use std::ops::{Range, RangeInclusive};

/// Number of cases each `proptest!` test runs.
pub const CASES: usize = 96;

/// Deterministic per-test random source (SplitMix64 seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from a stable FNV-1a hash of `name`.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: hash }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty choice");
        self.next_u64() % bound
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A uniform choice between type-erased strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union; panics on an empty option list.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
strategy_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        start + (end - start) * rng.unit_f64()
    }
}

macro_rules! strategy_tuple {
    ($(($($s:ident : $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
strategy_tuple!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
);

// ---------------------------------------------------------------------------
// String strategies over a small regex subset.
// ---------------------------------------------------------------------------

enum Atom {
    /// `.` — any printable ASCII character.
    Any,
    /// `[...]` — an explicit character set.
    Class(Vec<char>),
    /// A literal character.
    Literal(char),
}

struct Quantified {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            let mut c = lo;
            while c <= hi {
                set.push(c);
                c = char::from_u32(c as u32 + 1).unwrap_or(hi);
                if c as u32 > hi as u32 {
                    break;
                }
            }
            i += 3;
        } else {
            set.push(chars[i]);
            i += 1;
        }
    }
    (set, i + 1) // past ']'
}

fn parse_pattern(pattern: &str) -> Vec<Quantified> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                let (set, next) = parse_class(&chars, i + 1);
                i = next;
                Atom::Class(set)
            }
            '\\' => {
                i += 2;
                Atom::Literal(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = match chars.get(i) {
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == '}')
                    .expect("unclosed {} quantifier in string strategy")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        atoms.push(Quantified { atom, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for q in parse_pattern(self) {
            let count = q.min + rng.below((q.max - q.min + 1) as u64) as usize;
            for _ in 0..count {
                match &q.atom {
                    Atom::Any => {
                        out.push(char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or('x'));
                    }
                    Atom::Class(set) => {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Generates `Vec`s with lengths drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The proptest prelude.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{Just, Strategy};

    /// Mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests; each runs [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = __outcome {
                        panic!("property case {} failed: {}", __case, message);
                    }
                }
            }
        )*
    };
}

/// Early-returns a failure from a property body when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Early-returns a failure when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            ));
        }
    }};
}

/// A uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn string_pattern_subset_generates_valid_strings() {
        let mut rng = crate::TestRng::deterministic("x");
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[#]?[A-Za-z0-9_ -]{0,24}", &mut rng);
            assert!(s.len() <= 25);
            let t = crate::Strategy::generate(&".{0,10}", &mut rng);
            assert!(t.chars().count() <= 10);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u32..10, y in 1u8..=3, f in 0.5f64..1.5) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1..=3).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn oneof_map_and_vec_compose(
            v in prop::collection::vec(0.0f64..10.0, 0..8),
            c in prop_oneof![Just(1_i32), Just(2), Just(3)].prop_map(|n| n * 10)
        ) {
            prop_assert!(v.len() < 8);
            prop_assert!(c == 10 || c == 20 || c == 30);
            prop_assert_eq!(c % 10, 0);
        }
    }
}
