//! Offline shim of `serde_json`.
//!
//! Renders and parses the local serde shim's [`serde::Value`] model as JSON.
//! Supports exactly what this workspace uses: `to_string`, `to_string_pretty`
//! and `from_str`, with round-trip-exact floating-point formatting (Rust's
//! shortest `{:?}` representation).

use serde::{Deserialize, Serialize, Value};

/// The error type (shared with the serde shim).
pub type Error = serde::Error;

/// Serialises a value to compact JSON.
///
/// # Errors
///
/// Returns [`Error`] for non-finite floats or non-string-like map keys.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialises a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Returns [`Error`] for non-finite floats or non-string-like map keys.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into a deserialisable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error::custom("cannot serialise non-finite float"));
            }
            // `{:?}` is Rust's shortest round-trip representation (e.g. `360.0`).
            out.push_str(&format!("{x:?}"));
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                write_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                match key {
                    Value::Str(s) => write_string(out, s),
                    Value::Int(n) => write_string(out, &n.to_string()),
                    Value::UInt(n) => write_string(out, &n.to_string()),
                    _ => return Err(Error::custom("map key must be string-like")),
                }
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                write_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts.  Matches real serde_json's
/// default recursion limit; without it, adversarial input like `"[" * 100_000`
/// overflows the stack (an abort, not a catchable error).
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(&format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(&format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(Error::custom("recursion limit exceeded"));
        }
        Ok(())
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.enter()?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((Value::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let second = self.parse_hex4()?;
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(Error::custom("unknown escape sequence")),
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid unicode escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid unicode escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&42_i32).unwrap(), "42");
        assert_eq!(from_str::<i32>("42").unwrap(), 42);
        assert_eq!(to_string(&360.0_f64).unwrap(), "360.0");
        assert_eq!(from_str::<f64>("360.0").unwrap(), 360.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(
            to_string(&"a \"quote\"\n".to_string()).unwrap(),
            "\"a \\\"quote\\\"\\n\""
        );
        let s: String = from_str("\"a \\\"quote\\\"\\n\"").unwrap();
        assert_eq!(s, "a \"quote\"\n");
    }

    #[test]
    fn round_trip_collections() {
        let v = vec![(1_u64, "x".to_string()), (2, "y".to_string())];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u64, String)>>(&json).unwrap(), v);
        let none: Option<f64> = None;
        assert_eq!(to_string(&none).unwrap(), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<f64>>("2.5").unwrap(), Some(2.5));
    }

    #[test]
    fn float_shortest_repr_survives() {
        for x in [0.1_f64, 1.0 / 3.0, 1e-12, 123456.789, f64::MIN_POSITIVE] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), x, "{json}");
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "Aé😀");
    }

    #[test]
    fn deep_nesting_is_a_structured_error_not_a_stack_overflow() {
        // Well past any realistic document, far past the recursion limit —
        // before the limit existed this aborted the process.
        let hostile = "[".repeat(100_000);
        let err = from_str::<Vec<u64>>(&hostile).unwrap_err();
        assert!(err.to_string().contains("recursion"), "{err}");
        let hostile_obj = "{\"a\":".repeat(100_000);
        assert!(from_str::<Vec<u64>>(&hostile_obj).is_err());
        // Nesting under the limit still parses: depth 100 gets past the
        // parser (the failure below is the shape mismatch with `Vec<u64>`,
        // not the recursion guard).
        let fine = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        let err = from_str::<Vec<u64>>(&fine).unwrap_err();
        assert!(!err.to_string().contains("recursion"), "{err}");
        assert_eq!(from_str::<Vec<Vec<u64>>>("[[1],[2]]").unwrap().len(), 2);
    }
}
