//! Offline shim of `rayon`.
//!
//! Provides the `par_iter().map(..).collect()` shape this workspace uses,
//! backed by `std::thread::scope` with one chunk per available core.  Results
//! preserve input order (chunks are processed and re-assembled in order), so
//! swapping this shim for real rayon is behaviour-compatible for this API
//! subset.

use std::num::NonZeroUsize;

/// The prelude, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Number of worker threads to fan out over.
fn thread_count(items: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(items).max(1)
}

/// Order-preserving parallel map over a slice.
fn parallel_map<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let threads = thread_count(items.len());
    // Small inputs are not worth the thread spawn overhead.
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunk_results: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            chunk_results.push(handle.join().expect("rayon shim worker panicked"));
        }
    });
    chunk_results.into_iter().flatten().collect()
}

/// Conversion into a borrowing parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The element type yielded by the parallel iterator.
    type Item: Sync + 'a;

    /// Returns a parallel iterator over borrowed elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A lazy parallel iterator over `&T`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element in parallel (lazily; runs on `collect`).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Executes the map across threads and collects the results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map(self.items, &self.f).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled.len(), input.len());
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 2);
        }
    }

    #[test]
    fn works_on_slices_and_empty_inputs() {
        let empty: Vec<i32> = Vec::new();
        let out: Vec<i32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let slice: &[i32] = &[1, 2, 3];
        let out: Vec<i32> = slice.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4]);
    }
}
