//! Offline shim of `rayon`.
//!
//! Provides the `par_iter().map(..).collect()` shape this workspace uses,
//! backed by `std::thread::scope` with one chunk per available core.  Results
//! preserve input order (chunks are processed and re-assembled in order), so
//! swapping this shim for real rayon is behaviour-compatible for this API
//! subset.

use std::cell::Cell;
use std::num::NonZeroUsize;

/// The prelude, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

thread_local! {
    /// Scoped worker-count override installed by [`with_thread_count`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Runs `f` with every `par_iter` issued *from this thread* fanning out over
/// exactly `threads` workers (still capped by item count; values above the
/// core count are honoured, like real rayon pools).  Nested `par_iter` calls
/// made from inside spawned workers fall back to the default policy.
///
/// This is a shim-only determinism hook: tests use it to assert that fan-out
/// results are identical at every thread count (guarding against
/// order-dependent folds/merges).  Real rayon sizes its global pool via
/// `RAYON_NUM_THREADS` / `ThreadPoolBuilder` instead, so gate callers behind a
/// shim-only cfg or feature (the workspace uses the `psp-suite` crate feature
/// `shim-rayon` for this).
pub fn with_thread_count<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    /// Restores the previous override even when the closure unwinds (proptest,
    /// for one, catches panics and keeps running on the same thread).
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|cell| cell.replace(Some(threads.max(1)))));
    f()
}

/// Number of worker threads to fan out over: the scoped override if one is
/// installed, else `RAYON_NUM_THREADS` (the variable real rayon's global pool
/// honours), else one per available core — always capped by the item count.
fn thread_count(items: usize) -> usize {
    let configured = THREAD_OVERRIDE
        .with(Cell::get)
        .or_else(|| {
            std::env::var("RAYON_NUM_THREADS")
                .ok()
                .and_then(|raw| raw.trim().parse().ok())
                .filter(|n: &usize| *n > 0)
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
    configured.min(items).max(1)
}

/// Order-preserving parallel map over a slice.
fn parallel_map<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let threads = thread_count(items.len());
    // Small inputs are not worth the thread spawn overhead.
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunk_results: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            chunk_results.push(handle.join().expect("rayon shim worker panicked"));
        }
    });
    chunk_results.into_iter().flatten().collect()
}

/// Conversion into a borrowing parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The element type yielded by the parallel iterator.
    type Item: Sync + 'a;

    /// Returns a parallel iterator over borrowed elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A lazy parallel iterator over `&T`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element in parallel (lazily; runs on `collect`).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Executes the map across threads and collects the results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map(self.items, &self.f).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled.len(), input.len());
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 2);
        }
    }

    #[test]
    fn works_on_slices_and_empty_inputs() {
        let empty: Vec<i32> = Vec::new();
        let out: Vec<i32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let slice: &[i32] = &[1, 2, 3];
        let out: Vec<i32> = slice.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn results_are_identical_at_every_thread_count() {
        // The sequential-fallback guarantee: whatever the worker count — one
        // (the 1-core fallback), a few, or more threads than cores — the
        // collected results are the same values in the same order.
        let input: Vec<u64> = (0..997).collect();
        let reference: Vec<u64> = input.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 7, 64] {
            let out: Vec<u64> =
                super::with_thread_count(threads, || input.par_iter().map(|x| x * 3 + 1).collect());
            assert_eq!(out, reference, "diverged at {threads} threads");
        }
    }

    #[test]
    fn thread_count_override_is_scoped_and_restored() {
        assert_eq!(super::with_thread_count(5, || super::thread_count(100)), 5);
        // Override is capped by the item count and floored at 1.
        assert_eq!(super::with_thread_count(8, || super::thread_count(3)), 3);
        assert_eq!(super::with_thread_count(0, || super::thread_count(10)), 1);
        // Nested overrides restore the outer value on exit.
        let (inner, outer_after) = super::with_thread_count(4, || {
            let inner = super::with_thread_count(2, || super::thread_count(100));
            (inner, super::thread_count(100))
        });
        assert_eq!(inner, 2);
        assert_eq!(outer_after, 4);
    }

    #[test]
    fn override_is_restored_when_the_closure_panics() {
        let after = super::with_thread_count(6, || {
            let unwound = std::panic::catch_unwind(|| {
                super::with_thread_count(2, || panic!("worker asserts mid-override"))
            });
            assert!(unwound.is_err());
            // The inner override must not leak past the unwind.
            super::thread_count(100)
        });
        assert_eq!(after, 6);
    }
}
