//! Offline shim of `serde_derive`.
//!
//! The build environment has no registry access, so this crate re-implements the
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros against the local
//! `serde` shim's simplified data model (`serde::Value`).  It parses the item
//! token stream by hand (no `syn`/`quote`) and supports the shapes this
//! workspace actually uses: non-generic named structs (with `#[serde(skip)]`
//! fields), tuple structs, unit structs, and enums with unit, tuple and struct
//! variants (externally tagged, like real serde).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn is_punct(tok: &TokenTree, ch: char) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tok: &TokenTree, word: &str) -> bool {
    matches!(tok, TokenTree::Ident(id) if id.to_string() == word)
}

/// Advances past a type (or discriminant expression) until a `,` at angle-bracket
/// depth zero, returning the index just past the comma (or the end).
fn skip_past_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut depth: i32 = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Whether an attribute group marks the field as `#[serde(skip)]`.
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let body = group.stream().to_string();
    let compact: String = body.chars().filter(|c| !c.is_whitespace()).collect();
    compact.starts_with("serde(") && compact.contains("skip")
}

/// Skips leading attributes, reporting whether any was `#[serde(skip)]`.
fn eat_attrs(toks: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut skip = false;
    while i + 1 < toks.len() && is_punct(&toks[i], '#') {
        if let TokenTree::Group(g) = &toks[i + 1] {
            if attr_is_serde_skip(g) {
                skip = true;
            }
        }
        i += 2;
    }
    (i, skip)
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, …).
fn eat_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if i < toks.len() && is_ident(&toks[i], "pub") {
        i += 1;
        if i < toks.len() {
            if let TokenTree::Group(g) = &toks[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (j, skip) = eat_attrs(&toks, i);
        i = eat_vis(&toks, j);
        if i >= toks.len() {
            break;
        }
        let name = toks[i].to_string();
        i += 1; // field name
        i += 1; // ':'
        i = skip_past_comma(&toks, i);
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut arity = 0;
    let mut i = 0;
    while i < toks.len() {
        let (j, _) = eat_attrs(&toks, i);
        i = eat_vis(&toks, j);
        if i >= toks.len() {
            break;
        }
        i = skip_past_comma(&toks, i);
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (j, _) = eat_attrs(&toks, i);
        i = j;
        if i >= toks.len() {
            break;
        }
        let name = toks[i].to_string();
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                i += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        i = skip_past_comma(&toks, i);
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while i < toks.len() && !is_ident(&toks[i], "struct") && !is_ident(&toks[i], "enum") {
        if is_punct(&toks[i], '#') {
            i += 2;
        } else {
            i += 1;
        }
    }
    let is_struct = is_ident(&toks[i], "struct");
    i += 1;
    let name = toks[i].to_string();
    i += 1;
    if i < toks.len() && is_punct(&toks[i], '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    if is_struct {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            _ => Item::UnitStruct { name },
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            _ => panic!("serde_derive shim: malformed enum `{name}`"),
        }
    }
}

fn seq_ser(arity: usize, prefix: &str) -> String {
    let items: Vec<String> = (0..arity)
        .map(|k| format!("::serde::Serialize::to_value({prefix}{k})"))
        .collect();
    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
}

/// `#[derive(Serialize)]` against the local serde shim.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "map.push((::serde::Value::Str(\"{n}\".to_string()), \
                     ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut map: Vec<(::serde::Value, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Map(map)\n}}\n}}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let expr = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {expr} }}\n}}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|k| format!("f{k}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            seq_ser(*arity, "f")
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Map(vec![(\
                             ::serde::Value::Str(\"{vn}\".to_string()), {payload})]),\n",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut pushes = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            pushes.push_str(&format!(
                                "inner.push((::serde::Value::Str(\"{n}\".to_string()), \
                                 ::serde::Serialize::to_value({n})));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             let mut inner: Vec<(::serde::Value, ::serde::Value)> = Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Map(vec![(::serde::Value::Str(\"{vn}\".to_string()), \
                             ::serde::Value::Map(inner))])\n}}\n",
                            binds = binders.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n}}\n}}"
            )
        }
    };
    body.parse()
        .expect("serde_derive shim: generated invalid Serialize impl")
}

fn named_fields_de(struct_path: &str, fields: &[Field], map_expr: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else {
            inits.push_str(&format!(
                "{n}: ::serde::__private::get_field({map_expr}, \"{n}\", \"{struct_path}\")?,\n",
                n = f.name
            ));
        }
    }
    inits
}

/// `#[derive(Deserialize)]` against the local serde shim.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let inits = named_fields_de(name, fields, "map");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let map = v.as_map().ok_or_else(|| ::serde::Error::custom(\
                 \"expected map for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n}}\n}}"
            )
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n}}\n}}"
                )
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|k| format!("::serde::Deserialize::from_value(&seq[{k}])?"))
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     let seq = v.as_seq().ok_or_else(|| ::serde::Error::custom(\
                     \"expected sequence for {name}\"))?;\n\
                     if seq.len() != {arity} {{ return ::std::result::Result::Err(\
                     ::serde::Error::custom(\"wrong tuple arity for {name}\")); }}\n\
                     ::std::result::Result::Ok({name}({items}))\n}}\n}}",
                    items = items.join(", ")
                )
            }
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(_v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             ::std::result::Result::Ok({name})\n}}\n}}"
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        if *arity == 1 {
                            data_arms.push_str(&format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_value(payload)?)),\n"
                            ));
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|k| format!("::serde::Deserialize::from_value(&seq[{k}])?"))
                                .collect();
                            data_arms.push_str(&format!(
                                "\"{vn}\" => {{\n\
                                 let seq = payload.as_seq().ok_or_else(|| ::serde::Error::custom(\
                                 \"expected sequence for {name}::{vn}\"))?;\n\
                                 if seq.len() != {arity} {{ return ::std::result::Result::Err(\
                                 ::serde::Error::custom(\"wrong tuple arity for {name}::{vn}\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({items}))\n}}\n",
                                items = items.join(", ")
                            ));
                        }
                    }
                    VariantKind::Struct(fields) => {
                        let path = format!("{name}::{vn}");
                        let inits = named_fields_de(&path, fields, "inner");
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let inner = payload.as_map().ok_or_else(|| ::serde::Error::custom(\
                             \"expected map for {name}::{vn}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(&format!(\
                 \"unknown {name} variant `{{other}}`\"))),\n\
                 }},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (key, payload) = &entries[0];\n\
                 let tag = key.as_str().ok_or_else(|| ::serde::Error::custom(\
                 \"expected string variant tag for {name}\"))?;\n\
                 match tag {{\n\
                 {data_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(&format!(\
                 \"unknown {name} variant `{{other}}`\"))),\n\
                 }}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected string or single-entry map for {name}\")),\n\
                 }}\n}}\n}}"
            )
        }
    };
    body.parse()
        .expect("serde_derive shim: generated invalid Deserialize impl")
}
