//! Offline shim of `rand`.
//!
//! Provides the subset of the rand 0.8 API this workspace uses —
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer/float ranges and
//! `Rng::gen_bool` — backed by a SplitMix64 generator.  Sequences differ from
//! upstream rand, but every consumer in this workspace only relies on
//! determinism per seed, not on specific sequences.

use std::ops::{Range, RangeInclusive};

/// The core generator interface (u64 output).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Uniform `u64` in `[0, bound)` (modulo; bias is negligible for simulation use).
fn uniform_u64(rng: &mut dyn RngCore, bound: u64) -> u64 {
    assert!(bound > 0, "empty sample range");
    rng.next_u64() % bound
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits.
fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty sample range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty sample range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}
sample_range_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty sample range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (start, end) = self.into_inner();
        assert!(start <= end, "empty sample range");
        start + (end - start) * unit_f64(rng)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore + Sized {
    /// A uniform sample from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let m = rng.gen_range(1..=12);
            assert!((1..=12).contains(&m));
            let f = rng.gen_range(0.85..1.15);
            assert!((0.85..1.15).contains(&f));
            let u = rng.gen_range(0_usize..8);
            assert!(u < 8);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.35)).count();
        assert!((3000..4000).contains(&hits), "{hits}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..10).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
