//! Offline shim of `serde`.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of serde this workspace uses: `Serialize` / `Deserialize` traits (with
//! derive macros from the sibling `serde_derive` shim) over a simplified
//! self-describing [`Value`] model.  The sibling `serde_json` shim renders and
//! parses that model as JSON.  The trait signatures are intentionally simpler
//! than real serde; nothing in this workspace implements the traits by hand, so
//! only the derive macros and `serde_json` depend on their exact shape.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialised value (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also unit structs and `None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer outside the `i64` range or serialised from unsigned types.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence (arrays, tuples, multi-field tuple structs).
    Seq(Vec<Value>),
    /// An ordered map (structs, maps, externally tagged enum variants).
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// The entries of a map value, if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of a sequence value, if this is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string value.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// The shim's (de)serialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a message.
    #[must_use]
    pub fn custom(msg: &str) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde shim error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialisation into the shim's [`Value`] model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialisation from the shim's [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value does not have the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("signed integer out of range")),
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("unsigned integer out of range")),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32, i64);

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("unsigned integer out of range")),
                    Value::Int(n) => u64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| Error::custom("integer out of unsigned range")),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        u64::from_value(v).and_then(|n| {
            usize::try_from(n).map_err(|_| Error::custom("integer out of usize range"))
        })
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        i64::from_value(v).and_then(|n| {
            isize::try_from(n).map_err(|_| Error::custom("integer out of isize range"))
        })
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            _ => Err(Error::custom("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom("expected string for char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string for char")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(k)?, V::from_value(val)?)))
            .collect()
    }
}

macro_rules! ser_de_tuple {
    ($(($($t:ident : $idx:tt),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::custom("expected tuple sequence"))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(Error::custom("wrong tuple arity"));
                }
                Ok(($($t::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}
ser_de_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Support functions for the derive macros; not part of the public API.
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Looks up a named field in a struct map and deserialises it.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the field is missing or has the wrong shape.
    pub fn get_field<T: Deserialize>(
        map: &[(Value, Value)],
        name: &str,
        ty: &str,
    ) -> Result<T, Error> {
        match map.iter().find(|(k, _)| k.as_str() == Some(name)) {
            Some((_, v)) => T::from_value(v),
            None => Err(Error::custom(&format!("missing field `{name}` for {ty}"))),
        }
    }
}
