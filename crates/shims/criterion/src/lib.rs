//! Offline shim of `criterion`.
//!
//! Implements the API subset the bench harness uses — `Criterion`,
//! `benchmark_group` with `sample_size`/`measurement_time`, `bench_function`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros — with
//! a simple wall-clock sampler.  Each bench is warmed up once, calibrated to a
//! per-sample iteration count, sampled `sample_size` times (capped for bounded
//! runtimes), and reported as a mean/median/min nanoseconds-per-iteration
//! table.  A machine-readable summary is written to
//! `target/criterion-shim/<bench>.json` (honouring `CARGO_TARGET_DIR`).

use std::time::{Duration, Instant};

/// Upper bound on the wall-clock budget a single bench function may consume.
const PER_BENCH_BUDGET: Duration = Duration::from_secs(3);

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id (`group/name` or bare name).
    pub name: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
}

/// The measurement driver passed to bench closures.
pub struct Bencher<'a> {
    sample_size: usize,
    budget: Duration,
    result: &'a mut Option<(f64, f64, f64, u64, usize)>,
}

impl Bencher<'_> {
    /// Measures a closure: warm-up, calibration, then timed samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up and calibration: find an iteration count that runs ≥ ~5 ms.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            iters = iters.saturating_mul(4);
        };
        // Budgeted sample count.
        let sample_cost = per_iter * iters as f64;
        let affordable = (self.budget.as_nanos() as f64 / sample_cost.max(1.0)) as usize;
        let samples = self.sample_size.min(affordable.max(1)).max(1);

        let mut per_iter_samples = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            per_iter_samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter_samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mean = per_iter_samples.iter().sum::<f64>() / per_iter_samples.len() as f64;
        let median = per_iter_samples[per_iter_samples.len() / 2];
        let min = per_iter_samples[0];
        *self.result = Some((mean, median, min, iters, samples));
    }
}

/// The top-level bench context.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Benches a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_bench(name.to_string(), 10, Duration::from_secs(3), f);
        self
    }

    fn run_bench<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: String,
        sample_size: usize,
        measurement_time: Duration,
        mut f: F,
    ) {
        let mut result = None;
        let mut bencher = Bencher {
            sample_size,
            budget: measurement_time.min(PER_BENCH_BUDGET),
            result: &mut result,
        };
        f(&mut bencher);
        if let Some((mean_ns, median_ns, min_ns, iters_per_sample, samples)) = result {
            let entry = BenchResult {
                name,
                mean_ns,
                median_ns,
                min_ns,
                iters_per_sample,
                samples,
            };
            println!(
                "bench {:<48} mean {:>12.1} ns  median {:>12.1} ns  ({} samples x {} iters)",
                entry.name, entry.mean_ns, entry.median_ns, entry.samples, entry.iters_per_sample
            );
            self.results.push(entry);
        }
    }

    /// All results measured so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints a summary and writes the JSON report; called by `criterion_main!`.
    pub fn final_summary(&self) {
        if self.results.is_empty() {
            return;
        }
        println!("\n{} benchmarks measured", self.results.len());
        let bench_name = std::env::args()
            .next()
            .and_then(|argv0| {
                std::path::Path::new(&argv0)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
            })
            .map(|stem| {
                // Strip the `-<hash>` suffix cargo appends to bench executables.
                match stem.rfind('-') {
                    Some(pos) if stem[pos + 1..].chars().all(|c| c.is_ascii_hexdigit()) => {
                        stem[..pos].to_string()
                    }
                    _ => stem,
                }
            })
            .unwrap_or_else(|| "bench".to_string());
        let dir = std::env::var("CARGO_TARGET_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|_| std::path::PathBuf::from("target"))
            .join("criterion-shim");
        if std::fs::create_dir_all(&dir).is_ok() {
            let mut json = String::from("{\n  \"benchmarks\": [\n");
            for (i, r) in self.results.iter().enumerate() {
                if i > 0 {
                    json.push_str(",\n");
                }
                json.push_str(&format!(
                    "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \
                     \"min_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
                    r.name, r.mean_ns, r.median_ns, r.min_ns, r.samples, r.iters_per_sample
                ));
            }
            json.push_str("\n  ]\n}\n");
            let path = dir.join(format!("{bench_name}.json"));
            if std::fs::write(&path, json).is_ok() {
                println!("wrote {}", path.display());
            }
        }
    }
}

/// A benchmark group with shared sampling configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget (capped by the shim for bounded runtimes).
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Benches one function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, f: F) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        self.criterion
            .run_bench(id, sample_size, measurement_time, f);
        self
    }

    /// Closes the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop_sum", |b| b.iter(|| (0..100_u64).sum::<u64>()));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].mean_ns > 0.0);
    }

    #[test]
    fn groups_prefix_names_and_apply_config() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(50));
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
        assert_eq!(c.results()[0].name, "g/inner");
        assert!(c.results()[0].samples <= 5);
    }
}
