//! Offline shim of `petgraph`.
//!
//! An adjacency-list graph with the petgraph API subset this workspace uses:
//! `DiGraph` / `UnGraph`, node/edge addition, weight indexing, neighbour and
//! edge iteration, and edge endpoints.

/// Graph types (mirrors `petgraph::graph`).
pub mod graph {
    use std::marker::PhantomData;
    use std::ops::Index;

    /// Marker for directed graphs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Directed;

    /// Marker for undirected graphs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Undirected;

    /// Edge directedness marker trait.
    pub trait EdgeType {
        /// Whether edges are directed.
        fn is_directed() -> bool;
    }

    impl EdgeType for Directed {
        fn is_directed() -> bool {
            true
        }
    }

    impl EdgeType for Undirected {
        fn is_directed() -> bool {
            false
        }
    }

    /// A node identifier.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub struct NodeIndex(u32);

    impl NodeIndex {
        /// Creates an index from a raw position.
        #[must_use]
        pub fn new(index: usize) -> Self {
            Self(index as u32)
        }

        /// The raw position.
        #[must_use]
        pub fn index(self) -> usize {
            self.0 as usize
        }
    }

    /// An edge identifier.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub struct EdgeIndex(u32);

    impl EdgeIndex {
        /// The raw position.
        #[must_use]
        pub fn index(self) -> usize {
            self.0 as usize
        }
    }

    #[derive(Debug, Clone)]
    struct Edge<E> {
        source: NodeIndex,
        target: NodeIndex,
        weight: E,
    }

    /// An adjacency-list graph.
    #[derive(Debug, Clone)]
    pub struct Graph<N, E, Ty = Directed> {
        nodes: Vec<N>,
        edges: Vec<Edge<E>>,
        ty: PhantomData<Ty>,
    }

    /// A directed graph.
    pub type DiGraph<N, E> = Graph<N, E, Directed>;

    /// An undirected graph.
    pub type UnGraph<N, E> = Graph<N, E, Undirected>;

    impl<N, E> Graph<N, E, Directed> {
        /// Creates an empty directed graph.
        #[must_use]
        pub fn new() -> Self {
            Self::with_parts()
        }
    }

    impl<N, E> Default for Graph<N, E, Directed> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<N, E> Graph<N, E, Undirected> {
        /// Creates an empty undirected graph.
        #[must_use]
        pub fn new_undirected() -> Self {
            Self::with_parts()
        }
    }

    impl<N, E> Default for Graph<N, E, Undirected> {
        fn default() -> Self {
            Self::new_undirected()
        }
    }

    /// A borrowed edge, as yielded by [`Graph::edges`].
    #[derive(Debug)]
    pub struct EdgeReference<'a, E> {
        id: EdgeIndex,
        source: NodeIndex,
        target: NodeIndex,
        weight: &'a E,
    }

    impl<'a, E> EdgeReference<'a, E> {
        /// The edge id.
        #[must_use]
        pub fn id(&self) -> EdgeIndex {
            self.id
        }

        /// The source endpoint (as stored).
        #[must_use]
        pub fn source(&self) -> NodeIndex {
            self.source
        }

        /// The target endpoint (as stored).
        #[must_use]
        pub fn target(&self) -> NodeIndex {
            self.target
        }

        /// The edge weight.
        #[must_use]
        pub fn weight(&self) -> &'a E {
            self.weight
        }
    }

    impl<N, E, Ty: EdgeType> Graph<N, E, Ty> {
        fn with_parts() -> Self {
            Self {
                nodes: Vec::new(),
                edges: Vec::new(),
                ty: PhantomData,
            }
        }

        /// Adds a node, returning its index.
        pub fn add_node(&mut self, weight: N) -> NodeIndex {
            self.nodes.push(weight);
            NodeIndex::new(self.nodes.len() - 1)
        }

        /// Adds an edge, returning its index.
        pub fn add_edge(&mut self, a: NodeIndex, b: NodeIndex, weight: E) -> EdgeIndex {
            self.edges.push(Edge {
                source: a,
                target: b,
                weight,
            });
            EdgeIndex((self.edges.len() - 1) as u32)
        }

        /// Number of nodes.
        #[must_use]
        pub fn node_count(&self) -> usize {
            self.nodes.len()
        }

        /// Number of edges.
        #[must_use]
        pub fn edge_count(&self) -> usize {
            self.edges.len()
        }

        /// Iterates over node weights in insertion order.
        pub fn node_weights(&self) -> impl Iterator<Item = &N> {
            self.nodes.iter()
        }

        /// Iterates over node indices.
        pub fn node_indices(&self) -> impl Iterator<Item = NodeIndex> {
            (0..self.nodes.len()).map(NodeIndex::new)
        }

        /// Iterates over edge indices.
        pub fn edge_indices(&self) -> impl Iterator<Item = EdgeIndex> {
            (0..self.edges.len()).map(|i| EdgeIndex(i as u32))
        }

        /// The endpoints of an edge.
        #[must_use]
        pub fn edge_endpoints(&self, e: EdgeIndex) -> Option<(NodeIndex, NodeIndex)> {
            self.edges
                .get(e.index())
                .map(|edge| (edge.source, edge.target))
        }

        /// Edges incident to a node: outgoing for directed graphs, all incident
        /// edges for undirected graphs.
        pub fn edges(&self, node: NodeIndex) -> impl Iterator<Item = EdgeReference<'_, E>> {
            let directed = Ty::is_directed();
            self.edges.iter().enumerate().filter_map(move |(i, edge)| {
                let incident = edge.source == node || (!directed && edge.target == node);
                if incident {
                    Some(EdgeReference {
                        id: EdgeIndex(i as u32),
                        source: edge.source,
                        target: edge.target,
                        weight: &edge.weight,
                    })
                } else {
                    None
                }
            })
        }

        /// Neighbouring nodes: successors for directed graphs, all adjacent nodes
        /// for undirected graphs.
        pub fn neighbors(&self, node: NodeIndex) -> impl Iterator<Item = NodeIndex> + '_ {
            let directed = Ty::is_directed();
            self.edges.iter().filter_map(move |edge| {
                if edge.source == node {
                    Some(edge.target)
                } else if !directed && edge.target == node {
                    Some(edge.source)
                } else {
                    None
                }
            })
        }
    }

    impl<N, E, Ty: EdgeType> Index<NodeIndex> for Graph<N, E, Ty> {
        type Output = N;
        fn index(&self, index: NodeIndex) -> &N {
            &self.nodes[index.index()]
        }
    }

    impl<N, E, Ty: EdgeType> Index<EdgeIndex> for Graph<N, E, Ty> {
        type Output = E;
        fn index(&self, index: EdgeIndex) -> &E {
            &self.edges[index.index()].weight
        }
    }
}

#[cfg(test)]
mod tests {
    use super::graph::{DiGraph, UnGraph};

    #[test]
    fn directed_neighbors_are_successors_only() {
        let mut g = DiGraph::<&str, u32>::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 1);
        assert_eq!(g.neighbors(a).count(), 1);
        assert_eq!(g.neighbors(b).count(), 0);
        assert_eq!(g[a], "a");
    }

    #[test]
    fn undirected_neighbors_are_symmetric() {
        let mut g = UnGraph::<&str, ()>::new_undirected();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        assert_eq!(g.neighbors(b).count(), 2);
        assert_eq!(g.neighbors(a).collect::<Vec<_>>(), vec![b]);
        assert_eq!(g.edges(b).count(), 2);
    }

    #[test]
    fn edge_endpoints_and_weights() {
        let mut g = DiGraph::<u8, &str>::new();
        let a = g.add_node(1);
        let b = g.add_node(2);
        let e = g.add_edge(a, b, "w");
        assert_eq!(g.edge_endpoints(e), Some((a, b)));
        assert_eq!(g[e], "w");
        assert_eq!(g.edges(a).next().unwrap().weight(), &"w");
    }
}
