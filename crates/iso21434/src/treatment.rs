//! Risk treatment decisions and cybersecurity goals (ISO/SAE-21434 Clause 15.9 / 9.4).
//!
//! Once a risk value is determined, the organisation decides how to treat it:
//! avoid, reduce, share or retain.  Reducing a risk produces one or more
//! cybersecurity goals, which later become cybersecurity requirements.

use crate::risk::RiskValue;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four risk-treatment options of Clause 15.9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RiskTreatment {
    /// Remove the risk source (e.g. drop the feature or interface).
    Avoid,
    /// Reduce the risk through cybersecurity goals and controls.
    Reduce,
    /// Share the risk contractually (suppliers, insurance).
    Share,
    /// Accept and retain the risk with a documented rationale.
    Retain,
}

impl RiskTreatment {
    /// All options.
    pub const ALL: [RiskTreatment; 4] = [
        RiskTreatment::Avoid,
        RiskTreatment::Reduce,
        RiskTreatment::Share,
        RiskTreatment::Retain,
    ];

    /// The default treatment policy used by the TARA engine: retain minimal risks,
    /// share low risks, reduce medium and high risks, avoid critical ones when no
    /// reduction is planned.
    #[must_use]
    pub fn default_for(risk: RiskValue) -> Self {
        match risk.get() {
            1 => RiskTreatment::Retain,
            2 => RiskTreatment::Share,
            3 | 4 => RiskTreatment::Reduce,
            _ => RiskTreatment::Avoid,
        }
    }
}

impl fmt::Display for RiskTreatment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A cybersecurity goal derived from a reduced risk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CybersecurityGoal {
    statement: String,
    threat_title: String,
    risk: RiskValue,
}

impl CybersecurityGoal {
    /// Creates a goal for the named threat scenario.
    #[must_use]
    pub fn new(
        statement: impl Into<String>,
        threat_title: impl Into<String>,
        risk: RiskValue,
    ) -> Self {
        Self {
            statement: statement.into(),
            threat_title: threat_title.into(),
            risk,
        }
    }

    /// The goal statement.
    #[must_use]
    pub fn statement(&self) -> &str {
        &self.statement
    }

    /// The threat scenario the goal addresses.
    #[must_use]
    pub fn threat_title(&self) -> &str {
        &self.threat_title
    }

    /// The risk value that motivated the goal.
    #[must_use]
    pub fn risk(&self) -> RiskValue {
        self.risk
    }
}

impl fmt::Display for CybersecurityGoal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[risk {}] {}", self.risk, self.statement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_escalates_with_risk() {
        assert_eq!(
            RiskTreatment::default_for(RiskValue::new(1)),
            RiskTreatment::Retain
        );
        assert_eq!(
            RiskTreatment::default_for(RiskValue::new(2)),
            RiskTreatment::Share
        );
        assert_eq!(
            RiskTreatment::default_for(RiskValue::new(3)),
            RiskTreatment::Reduce
        );
        assert_eq!(
            RiskTreatment::default_for(RiskValue::new(4)),
            RiskTreatment::Reduce
        );
        assert_eq!(
            RiskTreatment::default_for(RiskValue::new(5)),
            RiskTreatment::Avoid
        );
    }

    #[test]
    fn goal_accessors() {
        let g = CybersecurityGoal::new(
            "The ECM shall only accept authenticated firmware",
            "ECM reprogramming",
            RiskValue::new(4),
        );
        assert_eq!(g.threat_title(), "ECM reprogramming");
        assert_eq!(g.risk().get(), 4);
        assert!(g.to_string().contains("risk 4"));
    }

    #[test]
    fn all_treatments_distinct() {
        let set: std::collections::HashSet<_> = RiskTreatment::ALL.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn serde_round_trip() {
        let g = CybersecurityGoal::new("s", "t", RiskValue::new(3));
        let json = serde_json::to_string(&g).unwrap();
        assert_eq!(g, serde_json::from_str(&json).unwrap());
    }
}
