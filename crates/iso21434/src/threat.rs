//! Threat scenarios, STRIDE categories and attacker profiles
//! (ISO/SAE-21434 Clause 15.4).
//!
//! A threat scenario ties an asset and one of its cybersecurity properties to a
//! potential cause of compromise.  The paper additionally leans on an attacker
//! profile taxonomy (Insider, Outsider, Rational, Malicious, …) because the PSP
//! framework only re-tunes the feasibility weights for *insider* threats — attacks
//! the vehicle owner is aware of and approves.

use crate::asset::CybersecurityProperty;
use serde::{Deserialize, Serialize};
use std::fmt;
use vehicle::attack_surface::AttackVector;

/// STRIDE threat categories used to enumerate threat scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StrideCategory {
    /// Pretending to be something or somebody else.
    Spoofing,
    /// Unauthorised modification of data or code.
    Tampering,
    /// Denying having performed an action.
    Repudiation,
    /// Exposure of information to unauthorised parties.
    InformationDisclosure,
    /// Denial of service.
    DenialOfService,
    /// Gaining capabilities without authorisation.
    ElevationOfPrivilege,
}

impl StrideCategory {
    /// All categories.
    pub const ALL: [StrideCategory; 6] = [
        StrideCategory::Spoofing,
        StrideCategory::Tampering,
        StrideCategory::Repudiation,
        StrideCategory::InformationDisclosure,
        StrideCategory::DenialOfService,
        StrideCategory::ElevationOfPrivilege,
    ];

    /// The cybersecurity property a threat of this category primarily violates.
    #[must_use]
    pub fn violated_property(self) -> CybersecurityProperty {
        match self {
            StrideCategory::Spoofing => CybersecurityProperty::Authenticity,
            StrideCategory::Tampering => CybersecurityProperty::Integrity,
            StrideCategory::Repudiation => CybersecurityProperty::NonRepudiation,
            StrideCategory::InformationDisclosure => CybersecurityProperty::Confidentiality,
            StrideCategory::DenialOfService => CybersecurityProperty::Availability,
            StrideCategory::ElevationOfPrivilege => CybersecurityProperty::Authorization,
        }
    }
}

impl fmt::Display for StrideCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Attacker profiles, following the taxonomy the paper cites (Section II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AttackerProfile {
    /// Service or maintenance personnel, workshops — and, in the paper's reading,
    /// any attack the owner is aware of and approves.
    Insider,
    /// External attackers (black hats) acting without the owner's knowledge.
    Outsider,
    /// The vehicle owner acting in their own economic interest.
    Rational,
    /// Criminals seeking direct gain (theft, extortion).
    Malicious,
    /// Opportunistic thieves using standard tools.
    Active,
    /// Rivals or competitors gathering information.
    Passive,
    /// Attackers requiring presence at the vehicle.
    Local,
    /// Attackers operating remotely.
    Remote,
}

impl AttackerProfile {
    /// All profiles.
    pub const ALL: [AttackerProfile; 8] = [
        AttackerProfile::Insider,
        AttackerProfile::Outsider,
        AttackerProfile::Rational,
        AttackerProfile::Malicious,
        AttackerProfile::Active,
        AttackerProfile::Passive,
        AttackerProfile::Local,
        AttackerProfile::Remote,
    ];

    /// Whether the profile belongs to the paper's *insider* super-category: attacks
    /// performed with the owner's awareness and approval (owner, workshop,
    /// maintenance personnel), typically with unlimited time and free device access.
    #[must_use]
    pub fn is_insider_category(self) -> bool {
        matches!(
            self,
            AttackerProfile::Insider | AttackerProfile::Rational | AttackerProfile::Local
        )
    }

    /// Whether the profile typically enjoys unlimited physical access to the item —
    /// the property that breaks the "physical attacks are hard" assumption baked
    /// into the enterprise-IT feasibility weights.
    #[must_use]
    pub fn has_unlimited_access(self) -> bool {
        matches!(
            self,
            AttackerProfile::Insider | AttackerProfile::Rational | AttackerProfile::Local
        )
    }
}

impl fmt::Display for AttackerProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A threat scenario.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreatScenario {
    title: String,
    asset_name: String,
    violated_property: CybersecurityProperty,
    stride: StrideCategory,
    attacker: AttackerProfile,
    preferred_vector: AttackVector,
    keywords: Vec<String>,
}

impl ThreatScenario {
    /// Creates a threat scenario for the named asset.
    ///
    /// The violated property defaults to the one implied by the STRIDE category and
    /// can be overridden with [`violating`](Self::violating).
    ///
    /// # Examples
    ///
    /// ```
    /// use iso21434::{ThreatScenario, StrideCategory, AttackerProfile};
    /// use vehicle::attack_surface::AttackVector;
    ///
    /// let ts = ThreatScenario::new("ECM reprogramming", "ECM firmware", StrideCategory::Tampering)
    ///     .by(AttackerProfile::Rational)
    ///     .via(AttackVector::Physical)
    ///     .with_keyword("chiptuning");
    /// assert!(ts.attacker().is_insider_category());
    /// ```
    #[must_use]
    pub fn new(
        title: impl Into<String>,
        asset_name: impl Into<String>,
        stride: StrideCategory,
    ) -> Self {
        Self {
            title: title.into(),
            asset_name: asset_name.into(),
            violated_property: stride.violated_property(),
            stride,
            attacker: AttackerProfile::Outsider,
            preferred_vector: AttackVector::Network,
            keywords: Vec::new(),
        }
    }

    /// Overrides the violated cybersecurity property.
    #[must_use]
    pub fn violating(mut self, property: CybersecurityProperty) -> Self {
        self.violated_property = property;
        self
    }

    /// Sets the attacker profile.
    #[must_use]
    pub fn by(mut self, attacker: AttackerProfile) -> Self {
        self.attacker = attacker;
        self
    }

    /// Sets the attack vector the scenario is expected to use.
    #[must_use]
    pub fn via(mut self, vector: AttackVector) -> Self {
        self.preferred_vector = vector;
        self
    }

    /// Adds a social-media keyword / hashtag associated with the scenario
    /// (consumed by the PSP keyword database).
    #[must_use]
    pub fn with_keyword(mut self, keyword: impl Into<String>) -> Self {
        self.keywords.push(keyword.into());
        self
    }

    /// The scenario title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The name of the asset under threat.
    #[must_use]
    pub fn asset_name(&self) -> &str {
        &self.asset_name
    }

    /// The violated cybersecurity property.
    #[must_use]
    pub fn violated_property(&self) -> CybersecurityProperty {
        self.violated_property
    }

    /// The STRIDE category.
    #[must_use]
    pub fn stride(&self) -> StrideCategory {
        self.stride
    }

    /// The attacker profile.
    #[must_use]
    pub fn attacker(&self) -> AttackerProfile {
        self.attacker
    }

    /// The expected attack vector.
    #[must_use]
    pub fn preferred_vector(&self) -> AttackVector {
        self.preferred_vector
    }

    /// Social-media keywords associated with the scenario.
    #[must_use]
    pub fn keywords(&self) -> &[String] {
        &self.keywords
    }
}

impl fmt::Display for ThreatScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} on {}, {} via {})",
            self.title, self.stride, self.asset_name, self.attacker, self.preferred_vector
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reprogramming() -> ThreatScenario {
        ThreatScenario::new(
            "ECM reprogramming",
            "ECM firmware",
            StrideCategory::Tampering,
        )
        .by(AttackerProfile::Rational)
        .via(AttackVector::Physical)
        .with_keyword("chiptuning")
        .with_keyword("ecuremap")
    }

    #[test]
    fn stride_implies_property() {
        assert_eq!(
            StrideCategory::Tampering.violated_property(),
            CybersecurityProperty::Integrity
        );
        assert_eq!(
            StrideCategory::DenialOfService.violated_property(),
            CybersecurityProperty::Availability
        );
        assert_eq!(
            StrideCategory::Spoofing.violated_property(),
            CybersecurityProperty::Authenticity
        );
    }

    #[test]
    fn scenario_defaults_follow_stride() {
        let ts = ThreatScenario::new("t", "a", StrideCategory::InformationDisclosure);
        assert_eq!(
            ts.violated_property(),
            CybersecurityProperty::Confidentiality
        );
        assert_eq!(ts.attacker(), AttackerProfile::Outsider);
    }

    #[test]
    fn violating_overrides_property() {
        let ts = ThreatScenario::new("t", "a", StrideCategory::Tampering)
            .violating(CybersecurityProperty::Availability);
        assert_eq!(ts.violated_property(), CybersecurityProperty::Availability);
    }

    #[test]
    fn insider_category_profiles() {
        assert!(AttackerProfile::Insider.is_insider_category());
        assert!(AttackerProfile::Rational.is_insider_category());
        assert!(AttackerProfile::Local.is_insider_category());
        assert!(!AttackerProfile::Outsider.is_insider_category());
        assert!(!AttackerProfile::Malicious.is_insider_category());
    }

    #[test]
    fn insiders_have_unlimited_access() {
        for p in AttackerProfile::ALL {
            if p.is_insider_category() {
                assert!(p.has_unlimited_access(), "{p}");
            }
        }
    }

    #[test]
    fn keywords_accumulate() {
        assert_eq!(reprogramming().keywords(), &["chiptuning", "ecuremap"]);
    }

    #[test]
    fn display_mentions_all_parts() {
        let s = reprogramming().to_string();
        assert!(s.contains("ECM reprogramming"));
        assert!(s.contains("Tampering"));
        assert!(s.contains("Rational"));
        assert!(s.contains("Physical"));
    }

    #[test]
    fn serde_round_trip() {
        let ts = reprogramming();
        let json = serde_json::to_string(&ts).unwrap();
        assert_eq!(ts, serde_json::from_str(&json).unwrap());
    }
}
