//! The end-to-end TARA engine (ISO/SAE-21434 Clause 15).
//!
//! A [`Tara`] collects assets, damage scenarios, threat scenarios and attack paths,
//! then evaluates them against a chosen [`FeasibilityModel`] to produce a
//! [`TaraReport`] with per-threat risk values, CALs, treatment decisions and
//! cybersecurity goals.
//!
//! The engine is deliberately model-agnostic: running the same TARA against the
//! standard attack-vector table and against a PSP-tuned table is how the workspace
//! reproduces the before/after comparisons of paper Figure 9.

use crate::asset::Asset;
use crate::attack_path::AttackPath;
use crate::cal::{Cal, CalMatrix};
use crate::error::Iso21434Error;
use crate::feasibility::{AttackFeasibilityRating, FeasibilityModel};
use crate::impact::{DamageScenario, ImpactRating};
use crate::risk::{RiskMatrix, RiskValue};
use crate::threat::ThreatScenario;
use crate::treatment::{CybersecurityGoal, RiskTreatment};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One threat scenario bundled with its damage scenario and candidate attack paths.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaraEntry {
    threat: ThreatScenario,
    damage: DamageScenario,
    paths: Vec<AttackPath>,
}

impl TaraEntry {
    /// Creates an entry.
    #[must_use]
    pub fn new(threat: ThreatScenario, damage: DamageScenario) -> Self {
        Self {
            threat,
            damage,
            paths: Vec::new(),
        }
    }

    /// Adds a candidate attack path.
    #[must_use]
    pub fn with_path(mut self, path: AttackPath) -> Self {
        self.paths.push(path);
        self
    }

    /// The threat scenario.
    #[must_use]
    pub fn threat(&self) -> &ThreatScenario {
        &self.threat
    }

    /// The damage scenario.
    #[must_use]
    pub fn damage(&self) -> &DamageScenario {
        &self.damage
    }

    /// The candidate attack paths.
    #[must_use]
    pub fn paths(&self) -> &[AttackPath] {
        &self.paths
    }
}

/// The assessment of one TARA entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaraAssessment {
    /// The threat scenario title.
    pub threat_title: String,
    /// The overall impact of the damage scenario.
    pub impact: ImpactRating,
    /// The feasibility of the most feasible attack path.
    pub feasibility: AttackFeasibilityRating,
    /// The name of the attack path that produced the rating.
    pub decisive_path: String,
    /// The resulting risk value.
    pub risk: RiskValue,
    /// The CAL assigned from impact and the decisive path's limiting vector.
    pub cal: Option<Cal>,
    /// The treatment decision under the default policy.
    pub treatment: RiskTreatment,
}

/// The full TARA report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaraReport {
    item_name: String,
    model_name: String,
    assessments: Vec<TaraAssessment>,
    goals: Vec<CybersecurityGoal>,
}

impl TaraReport {
    /// The item under analysis.
    #[must_use]
    pub fn item_name(&self) -> &str {
        &self.item_name
    }

    /// The feasibility model used.
    #[must_use]
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// Per-threat assessments in submission order.
    #[must_use]
    pub fn assessments(&self) -> &[TaraAssessment] {
        &self.assessments
    }

    /// Cybersecurity goals generated for reduced risks.
    #[must_use]
    pub fn goals(&self) -> &[CybersecurityGoal] {
        &self.goals
    }

    /// The assessment of a named threat scenario.
    #[must_use]
    pub fn assessment_of(&self, threat_title: &str) -> Option<&TaraAssessment> {
        self.assessments
            .iter()
            .find(|a| a.threat_title == threat_title)
    }

    /// Histogram of risk values (risk value → count), useful for comparing a
    /// static and a dynamic run of the same TARA.
    #[must_use]
    pub fn risk_histogram(&self) -> BTreeMap<u8, usize> {
        let mut out = BTreeMap::new();
        for a in &self.assessments {
            *out.entry(a.risk.get()).or_insert(0) += 1;
        }
        out
    }

    /// Number of assessments whose risk requires treatment (risk ≥ 4).
    #[must_use]
    pub fn treatment_required_count(&self) -> usize {
        self.assessments
            .iter()
            .filter(|a| a.risk.requires_treatment())
            .count()
    }
}

impl fmt::Display for TaraReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TARA report for {} (model: {})",
            self.item_name, self.model_name
        )?;
        for a in &self.assessments {
            writeln!(
                f,
                "  {:<40} impact={:<10} feasibility={:<8} risk={} cal={} treatment={}",
                a.threat_title,
                a.impact.to_string(),
                a.feasibility.to_string(),
                a.risk,
                a.cal.map_or("-".to_string(), |c| c.to_string()),
                a.treatment
            )?;
        }
        Ok(())
    }
}

/// The TARA under construction.
#[derive(Debug, Clone, Default)]
pub struct Tara {
    item_name: String,
    assets: Vec<Asset>,
    entries: Vec<TaraEntry>,
}

impl Tara {
    /// Starts a TARA for the named item (ECU or function).
    #[must_use]
    pub fn new(item_name: impl Into<String>) -> Self {
        Self {
            item_name: item_name.into(),
            assets: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// Registers an asset.
    #[must_use]
    pub fn asset(mut self, asset: Asset) -> Self {
        self.assets.push(asset);
        self
    }

    /// Adds a TARA entry (threat + damage + attack paths).
    #[must_use]
    pub fn entry(mut self, entry: TaraEntry) -> Self {
        self.entries.push(entry);
        self
    }

    /// The registered assets.
    #[must_use]
    pub fn assets(&self) -> &[Asset] {
        &self.assets
    }

    /// The registered entries.
    #[must_use]
    pub fn entries(&self) -> &[TaraEntry] {
        &self.entries
    }

    /// Evaluates the TARA with the given feasibility model.
    ///
    /// # Errors
    ///
    /// Returns [`Iso21434Error::UnknownAsset`] if a threat scenario references an
    /// asset that was not registered, and [`Iso21434Error::MissingAttackPath`] if an
    /// entry has no attack path.
    pub fn evaluate(&self, model: &dyn FeasibilityModel) -> Result<TaraReport, Iso21434Error> {
        let risk_matrix = RiskMatrix::new();
        let cal_matrix = CalMatrix::new();
        let mut assessments = Vec::with_capacity(self.entries.len());
        let mut goals = Vec::new();

        for entry in &self.entries {
            let threat = entry.threat();
            if !self.assets.iter().any(|a| a.name() == threat.asset_name()) {
                return Err(Iso21434Error::UnknownAsset {
                    name: threat.asset_name().to_string(),
                });
            }
            if entry.paths().is_empty() {
                return Err(Iso21434Error::MissingAttackPath {
                    threat: threat.title().to_string(),
                });
            }

            // The standard rates the threat by its most feasible attack path.
            let (decisive_path, feasibility) = entry
                .paths()
                .iter()
                .map(|p| (p, model.rate(p)))
                .max_by_key(|(_, rating)| *rating)
                .expect("entry has at least one path");

            let impact = entry.damage().overall();
            let risk = risk_matrix.risk(impact, feasibility);
            let vector = decisive_path
                .limiting_vector()
                .unwrap_or(vehicle::attack_surface::AttackVector::Physical);
            let cal = cal_matrix.cal(impact, vector);
            let treatment = RiskTreatment::default_for(risk);

            if treatment == RiskTreatment::Reduce || treatment == RiskTreatment::Avoid {
                goals.push(CybersecurityGoal::new(
                    format!(
                        "The item shall prevent \"{}\" from violating {} of {}",
                        threat.title(),
                        threat.violated_property(),
                        threat.asset_name()
                    ),
                    threat.title(),
                    risk,
                ));
            }

            assessments.push(TaraAssessment {
                threat_title: threat.title().to_string(),
                impact,
                feasibility,
                decisive_path: decisive_path.name().to_string(),
                risk,
                cal,
                treatment,
            });
        }

        Ok(TaraReport {
            item_name: self.item_name.clone(),
            model_name: model.name().to_string(),
            assessments,
            goals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asset::{AssetCategory, CybersecurityProperty};
    use crate::feasibility::attack_vector::AttackVectorModel;
    use crate::impact::ImpactCategory;
    use crate::threat::{AttackerProfile, StrideCategory};
    use vehicle::attack_surface::AttackVector;

    fn ecm_tara() -> Tara {
        let firmware = Asset::new("ECM firmware", AssetCategory::Firmware)
            .hosted_on("ECM")
            .with_property(CybersecurityProperty::Integrity);
        let torque = Asset::new("Torque control", AssetCategory::Function)
            .hosted_on("ECM")
            .with_property(CybersecurityProperty::Availability);

        let reprogramming = TaraEntry::new(
            ThreatScenario::new(
                "ECM reprogramming",
                "ECM firmware",
                StrideCategory::Tampering,
            )
            .by(AttackerProfile::Rational)
            .via(AttackVector::Physical),
            DamageScenario::new("Emission defeat / warranty fraud")
                .rate(ImpactCategory::Financial, ImpactRating::Major)
                .rate(ImpactCategory::Operational, ImpactRating::Moderate),
        )
        .with_path(
            AttackPath::new("bench flash")
                .step("remove ECM from vehicle", AttackVector::Physical)
                .step(
                    "flash modified calibration on the bench",
                    AttackVector::Physical,
                ),
        )
        .with_path(
            AttackPath::new("OBD reflash")
                .step("connect tool to OBD port", AttackVector::Local)
                .step("flash modified calibration", AttackVector::Local),
        );

        let dos = TaraEntry::new(
            ThreatScenario::new(
                "CAN DoS on powertrain",
                "Torque control",
                StrideCategory::DenialOfService,
            )
            .by(AttackerProfile::Outsider)
            .via(AttackVector::Physical),
            DamageScenario::new("Loss of propulsion while driving")
                .rate(ImpactCategory::Safety, ImpactRating::Severe),
        )
        .with_path(
            AttackPath::new("bus flood")
                .step(
                    "splice into the powertrain CAN harness",
                    AttackVector::Physical,
                )
                .step(
                    "flood bus with high-priority frames",
                    AttackVector::Physical,
                ),
        );

        Tara::new("ECM")
            .asset(firmware)
            .asset(torque)
            .entry(reprogramming)
            .entry(dos)
    }

    #[test]
    fn evaluate_with_standard_model_produces_report() {
        let report = ecm_tara().evaluate(&AttackVectorModel::standard()).unwrap();
        assert_eq!(report.assessments().len(), 2);
        assert_eq!(report.item_name(), "ECM");
        assert!(report.model_name().contains("G.9"));
    }

    #[test]
    fn reprogramming_is_rated_by_its_most_feasible_path() {
        let report = ecm_tara().evaluate(&AttackVectorModel::standard()).unwrap();
        let a = report.assessment_of("ECM reprogramming").unwrap();
        // The OBD (Local -> Low) path beats the bench (Physical -> Very Low) path.
        assert_eq!(a.feasibility, AttackFeasibilityRating::Low);
        assert_eq!(a.decisive_path, "OBD reflash");
    }

    #[test]
    fn dos_gets_severe_impact_but_low_cal_via_physical_vector() {
        let report = ecm_tara().evaluate(&AttackVectorModel::standard()).unwrap();
        let a = report.assessment_of("CAN DoS on powertrain").unwrap();
        assert_eq!(a.impact, ImpactRating::Severe);
        // The paper's complaint: the physical vector caps the CAL at 2.
        assert_eq!(a.cal, Some(Cal::Cal2));
    }

    #[test]
    fn unknown_asset_is_rejected() {
        let tara = Tara::new("X").entry(TaraEntry::new(
            ThreatScenario::new("t", "missing asset", StrideCategory::Tampering),
            DamageScenario::new("d"),
        ));
        let err = tara.evaluate(&AttackVectorModel::standard()).unwrap_err();
        assert!(matches!(err, Iso21434Error::UnknownAsset { .. }));
    }

    #[test]
    fn missing_attack_path_is_rejected() {
        let tara = Tara::new("X")
            .asset(Asset::new("a", AssetCategory::Function))
            .entry(TaraEntry::new(
                ThreatScenario::new("t", "a", StrideCategory::Tampering),
                DamageScenario::new("d"),
            ));
        let err = tara.evaluate(&AttackVectorModel::standard()).unwrap_err();
        assert!(matches!(err, Iso21434Error::MissingAttackPath { .. }));
    }

    #[test]
    fn goals_are_generated_for_reduced_risks() {
        let report = ecm_tara().evaluate(&AttackVectorModel::standard()).unwrap();
        for goal in report.goals() {
            assert!(goal.risk().get() >= 3);
        }
    }

    #[test]
    fn risk_histogram_sums_to_assessment_count() {
        let report = ecm_tara().evaluate(&AttackVectorModel::standard()).unwrap();
        let total: usize = report.risk_histogram().values().sum();
        assert_eq!(total, report.assessments().len());
    }

    #[test]
    fn a_tuned_table_changes_the_outcome() {
        use crate::feasibility::attack_vector::AttackVectorTable;
        use std::collections::BTreeMap;
        let mut ratings = BTreeMap::new();
        ratings.insert(AttackVector::Physical, AttackFeasibilityRating::High);
        ratings.insert(AttackVector::Local, AttackFeasibilityRating::High);
        ratings.insert(AttackVector::Adjacent, AttackFeasibilityRating::Low);
        ratings.insert(AttackVector::Network, AttackFeasibilityRating::VeryLow);
        let tuned = AttackVectorModel::with_table(
            AttackVectorTable::custom("PSP insider", ratings).unwrap(),
        );

        let static_report = ecm_tara().evaluate(&AttackVectorModel::standard()).unwrap();
        let tuned_report = ecm_tara().evaluate(&tuned).unwrap();

        let before = static_report
            .assessment_of("ECM reprogramming")
            .unwrap()
            .risk;
        let after = tuned_report
            .assessment_of("ECM reprogramming")
            .unwrap()
            .risk;
        assert!(
            after > before,
            "insider tuning must raise the reprogramming risk"
        );
    }

    #[test]
    fn display_lists_every_threat() {
        let report = ecm_tara().evaluate(&AttackVectorModel::standard()).unwrap();
        let s = report.to_string();
        assert!(s.contains("ECM reprogramming"));
        assert!(s.contains("CAN DoS on powertrain"));
    }
}
