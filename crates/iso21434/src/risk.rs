//! Risk-value determination (ISO/SAE-21434 Clause 15.8).
//!
//! The risk value of a threat scenario combines the impact of the associated damage
//! scenario with the attack feasibility of the most feasible attack path.  The
//! standard leaves the exact combination open but provides an informative risk
//! matrix; this module implements the common 4×4 matrix producing risk values from
//! 1 (minimal) to 5 (critical).

use crate::feasibility::AttackFeasibilityRating;
use crate::impact::ImpactRating;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A risk value from 1 (minimal) to 5 (critical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RiskValue(u8);

impl RiskValue {
    /// The minimum risk value defined by the standard's informative matrix.
    pub const MIN: RiskValue = RiskValue(1);
    /// The maximum risk value defined by the standard's informative matrix.
    pub const MAX: RiskValue = RiskValue(5);

    /// Creates a risk value, clamping into the 1..=5 range.
    #[must_use]
    pub fn new(value: u8) -> Self {
        Self(value.clamp(1, 5))
    }

    /// The numeric value.
    #[must_use]
    pub fn get(self) -> u8 {
        self.0
    }

    /// Whether the risk is generally considered unacceptable without treatment
    /// (value 4 or 5).
    #[must_use]
    pub fn requires_treatment(self) -> bool {
        self.0 >= 4
    }
}

impl fmt::Display for RiskValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The informative risk matrix combining impact and feasibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RiskMatrix;

impl RiskMatrix {
    /// Creates the standard matrix.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Determines the risk value for an impact / feasibility pair.
    ///
    /// The matrix follows the common informative layout: risk grows with both
    /// coordinates, a severe impact with high feasibility is critical (5) and a
    /// negligible impact never exceeds the minimal risk (1).
    #[must_use]
    pub fn risk(self, impact: ImpactRating, feasibility: AttackFeasibilityRating) -> RiskValue {
        if impact == ImpactRating::Negligible {
            return RiskValue::new(1);
        }
        // impact value 2..=4, feasibility value 1..=4.
        let i = i16::from(impact.value());
        let f = i16::from(feasibility.value());
        // Sum ranges from 3 (moderate, very low) to 8 (severe, high); map 3..=8
        // onto 1..=5 with the top two cells saturating at 5.
        let value = (i + f - 3).clamp(1, 5) as u8;
        RiskValue::new(value)
    }

    /// The full matrix as rows over impact (negligible→severe) and columns over
    /// feasibility (very low→high) — handy for rendering reports.
    #[must_use]
    pub fn table(self) -> Vec<(ImpactRating, Vec<(AttackFeasibilityRating, RiskValue)>)> {
        ImpactRating::ALL
            .iter()
            .map(|impact| {
                let row = AttackFeasibilityRating::ALL
                    .iter()
                    .map(|feas| (*feas, self.risk(*impact, *feas)))
                    .collect();
                (*impact, row)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn risk_value_clamps() {
        assert_eq!(RiskValue::new(0).get(), 1);
        assert_eq!(RiskValue::new(9).get(), 5);
        assert_eq!(RiskValue::new(3).get(), 3);
    }

    #[test]
    fn negligible_impact_is_always_minimal_risk() {
        let m = RiskMatrix::new();
        for feas in AttackFeasibilityRating::ALL {
            assert_eq!(m.risk(ImpactRating::Negligible, feas), RiskValue::new(1));
        }
    }

    #[test]
    fn severe_high_is_critical() {
        let m = RiskMatrix::new();
        assert_eq!(
            m.risk(ImpactRating::Severe, AttackFeasibilityRating::High),
            RiskValue::new(5)
        );
    }

    #[test]
    fn severe_very_low_is_moderate_risk() {
        let m = RiskMatrix::new();
        assert_eq!(
            m.risk(ImpactRating::Severe, AttackFeasibilityRating::VeryLow),
            RiskValue::new(2)
        );
    }

    #[test]
    fn risk_is_monotone_in_feasibility() {
        let m = RiskMatrix::new();
        for impact in ImpactRating::ALL {
            let mut prev = RiskValue::new(1);
            for feas in AttackFeasibilityRating::ALL {
                let r = m.risk(impact, feas);
                assert!(r >= prev, "risk must not decrease with feasibility");
                prev = r;
            }
        }
    }

    #[test]
    fn risk_is_monotone_in_impact() {
        let m = RiskMatrix::new();
        for feas in AttackFeasibilityRating::ALL {
            let mut prev = RiskValue::new(1);
            for impact in ImpactRating::ALL {
                let r = m.risk(impact, feas);
                assert!(r >= prev, "risk must not decrease with impact");
                prev = r;
            }
        }
    }

    #[test]
    fn treatment_threshold() {
        assert!(!RiskValue::new(3).requires_treatment());
        assert!(RiskValue::new(4).requires_treatment());
        assert!(RiskValue::new(5).requires_treatment());
    }

    #[test]
    fn table_covers_all_cells() {
        let table = RiskMatrix::new().table();
        assert_eq!(table.len(), 4);
        for (_, row) in &table {
            assert_eq!(row.len(), 4);
        }
    }

    #[test]
    fn display_is_numeric() {
        assert_eq!(RiskValue::new(4).to_string(), "4");
    }
}
