//! Damage scenarios and impact rating (ISO/SAE-21434 Clause 15.3 / 15.5).
//!
//! A damage scenario describes the harm that results if a cybersecurity property of
//! an asset is violated.  The impact rating assigns one of four levels — severe,
//! major, moderate, negligible — to each of the four impact categories: safety,
//! financial, operational and privacy (S/F/O/P).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The four impact categories of ISO/SAE-21434.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ImpactCategory {
    /// Harm to life and limb of road users.
    Safety,
    /// Financial loss to the road user or the OEM.
    Financial,
    /// Loss or degradation of a vehicle function.
    Operational,
    /// Loss of personal data or privacy of the road user.
    Privacy,
}

impl ImpactCategory {
    /// All categories, in the standard's S/F/O/P order.
    pub const ALL: [ImpactCategory; 4] = [
        ImpactCategory::Safety,
        ImpactCategory::Financial,
        ImpactCategory::Operational,
        ImpactCategory::Privacy,
    ];
}

impl fmt::Display for ImpactCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The impact level assigned to one impact category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ImpactRating {
    /// No noticeable harm.
    Negligible,
    /// Inconvenient but recoverable harm.
    Moderate,
    /// Substantial harm.
    Major,
    /// Life-threatening or catastrophic harm.
    Severe,
}

impl ImpactRating {
    /// All ratings from lowest to highest.
    pub const ALL: [ImpactRating; 4] = [
        ImpactRating::Negligible,
        ImpactRating::Moderate,
        ImpactRating::Major,
        ImpactRating::Severe,
    ];

    /// The numeric impact value used by the risk matrix (1 = negligible … 4 = severe).
    #[must_use]
    pub fn value(self) -> u8 {
        match self {
            ImpactRating::Negligible => 1,
            ImpactRating::Moderate => 2,
            ImpactRating::Major => 3,
            ImpactRating::Severe => 4,
        }
    }

    /// Builds a rating back from its numeric value, clamping out-of-range input.
    #[must_use]
    pub fn from_value(value: u8) -> Self {
        match value {
            0 | 1 => ImpactRating::Negligible,
            2 => ImpactRating::Moderate,
            3 => ImpactRating::Major,
            _ => ImpactRating::Severe,
        }
    }
}

impl fmt::Display for ImpactRating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A damage scenario with its per-category impact rating.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DamageScenario {
    title: String,
    description: String,
    ratings: BTreeMap<ImpactCategory, ImpactRating>,
}

impl DamageScenario {
    /// Creates a damage scenario with all categories rated negligible.
    ///
    /// # Examples
    ///
    /// ```
    /// use iso21434::{DamageScenario, ImpactCategory, ImpactRating};
    /// let ds = DamageScenario::new("Engine stall while driving")
    ///     .rate(ImpactCategory::Safety, ImpactRating::Severe)
    ///     .rate(ImpactCategory::Operational, ImpactRating::Major);
    /// assert_eq!(ds.overall(), ImpactRating::Severe);
    /// ```
    #[must_use]
    pub fn new(title: impl Into<String>) -> Self {
        let ratings = ImpactCategory::ALL
            .iter()
            .map(|c| (*c, ImpactRating::Negligible))
            .collect();
        Self {
            title: title.into(),
            description: String::new(),
            ratings,
        }
    }

    /// Adds a free-text description.
    #[must_use]
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Sets the rating of one impact category.
    #[must_use]
    pub fn rate(mut self, category: ImpactCategory, rating: ImpactRating) -> Self {
        self.ratings.insert(category, rating);
        self
    }

    /// The scenario title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The free-text description.
    #[must_use]
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The rating of one category.
    #[must_use]
    pub fn rating(&self, category: ImpactCategory) -> ImpactRating {
        self.ratings
            .get(&category)
            .copied()
            .unwrap_or(ImpactRating::Negligible)
    }

    /// The overall impact: the maximum over the four categories, as required by the
    /// standard when a single impact level is needed for risk determination.
    #[must_use]
    pub fn overall(&self) -> ImpactRating {
        self.ratings
            .values()
            .copied()
            .max()
            .unwrap_or(ImpactRating::Negligible)
    }

    /// Whether the scenario has any safety impact above negligible.
    #[must_use]
    pub fn is_safety_relevant(&self) -> bool {
        self.rating(ImpactCategory::Safety) > ImpactRating::Negligible
    }
}

impl fmt::Display for DamageScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.title, self.overall())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stall_scenario() -> DamageScenario {
        DamageScenario::new("Engine stall while driving")
            .with_description("loss of propulsion at speed")
            .rate(ImpactCategory::Safety, ImpactRating::Severe)
            .rate(ImpactCategory::Operational, ImpactRating::Major)
            .rate(ImpactCategory::Financial, ImpactRating::Moderate)
    }

    #[test]
    fn ratings_default_to_negligible() {
        let ds = DamageScenario::new("nothing");
        for c in ImpactCategory::ALL {
            assert_eq!(ds.rating(c), ImpactRating::Negligible);
        }
        assert_eq!(ds.overall(), ImpactRating::Negligible);
        assert!(!ds.is_safety_relevant());
    }

    #[test]
    fn overall_is_the_maximum() {
        assert_eq!(stall_scenario().overall(), ImpactRating::Severe);
    }

    #[test]
    fn safety_relevance() {
        assert!(stall_scenario().is_safety_relevant());
        let ds = DamageScenario::new("emissions increase")
            .rate(ImpactCategory::Financial, ImpactRating::Major);
        assert!(!ds.is_safety_relevant());
    }

    #[test]
    fn rating_values_are_monotone() {
        let values: Vec<_> = ImpactRating::ALL.iter().map(|r| r.value()).collect();
        assert_eq!(values, vec![1, 2, 3, 4]);
    }

    #[test]
    fn from_value_round_trip_and_clamp() {
        for r in ImpactRating::ALL {
            assert_eq!(ImpactRating::from_value(r.value()), r);
        }
        assert_eq!(ImpactRating::from_value(0), ImpactRating::Negligible);
        assert_eq!(ImpactRating::from_value(200), ImpactRating::Severe);
    }

    #[test]
    fn display_contains_overall() {
        assert!(stall_scenario().to_string().contains("Severe"));
    }

    #[test]
    fn serde_round_trip() {
        let ds = stall_scenario();
        let json = serde_json::to_string(&ds).unwrap();
        assert_eq!(ds, serde_json::from_str(&json).unwrap());
    }

    #[test]
    fn ordering_of_ratings() {
        assert!(ImpactRating::Negligible < ImpactRating::Moderate);
        assert!(ImpactRating::Major < ImpactRating::Severe);
    }
}
