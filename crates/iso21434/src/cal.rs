//! Cybersecurity Assurance Level (CAL) determination (paper Figure 6, Annex E).
//!
//! ISO/SAE-21434 defines four assurance levels, CAL1 (lowest) to CAL4 (highest),
//! determined from the impact of the associated damage scenario and the attack
//! vector of the threat scenario.  The key property the paper points out: the
//! physical-vector column never exceeds CAL2, so a safety-critical powertrain
//! function attacked physically (the realistic insider case) receives only a
//! medium-low assurance emphasis.

use crate::impact::ImpactRating;
use serde::{Deserialize, Serialize};
use std::fmt;
use vehicle::attack_surface::AttackVector;

/// A Cybersecurity Assurance Level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Cal {
    /// CAL1 — lowest assurance rigour.
    Cal1,
    /// CAL2.
    Cal2,
    /// CAL3.
    Cal3,
    /// CAL4 — highest assurance rigour.
    Cal4,
}

impl Cal {
    /// All levels from lowest to highest.
    pub const ALL: [Cal; 4] = [Cal::Cal1, Cal::Cal2, Cal::Cal3, Cal::Cal4];

    /// The numeric level (1–4).
    #[must_use]
    pub fn level(self) -> u8 {
        match self {
            Cal::Cal1 => 1,
            Cal::Cal2 => 2,
            Cal::Cal3 => 3,
            Cal::Cal4 => 4,
        }
    }

    /// Builds a CAL from its numeric level, clamping into range.
    #[must_use]
    pub fn from_level(level: u8) -> Self {
        match level {
            0 | 1 => Cal::Cal1,
            2 => Cal::Cal2,
            3 => Cal::Cal3,
            _ => Cal::Cal4,
        }
    }
}

impl fmt::Display for Cal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CAL{}", self.level())
    }
}

/// The CAL determination matrix of Annex E (paper Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CalMatrix;

impl CalMatrix {
    /// Creates the standard matrix.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Determines the CAL for an impact / attack-vector pair.  Returns `None` for
    /// negligible impact (no cybersecurity goal, hence no CAL, is assigned).
    #[must_use]
    pub fn cal(self, impact: ImpactRating, vector: AttackVector) -> Option<Cal> {
        use AttackVector::{Adjacent, Local, Network, Physical};
        use ImpactRating::{Major, Moderate, Negligible, Severe};
        let cal = match (impact, vector) {
            (Negligible, _) => return None,
            (Moderate, Physical | Local) => Cal::Cal1,
            (Moderate, Adjacent | Network) => Cal::Cal2,
            (Major, Physical) => Cal::Cal1,
            (Major, Local) => Cal::Cal2,
            (Major, Adjacent | Network) => Cal::Cal3,
            (Severe, Physical) => Cal::Cal2,
            (Severe, Local) => Cal::Cal3,
            (Severe, Adjacent | Network) => Cal::Cal4,
        };
        Some(cal)
    }

    /// The maximum CAL reachable through a given attack vector — the paper's point
    /// is that this is CAL2 for the physical vector.
    #[must_use]
    pub fn max_cal_for_vector(self, vector: AttackVector) -> Cal {
        ImpactRating::ALL
            .iter()
            .filter_map(|impact| self.cal(*impact, vector))
            .max()
            .unwrap_or(Cal::Cal1)
    }

    /// The full matrix as (impact, vector, CAL) triples for report rendering.
    #[must_use]
    pub fn table(self) -> Vec<(ImpactRating, AttackVector, Option<Cal>)> {
        let mut out = Vec::new();
        for impact in ImpactRating::ALL {
            for vector in AttackVector::ALL {
                out.push((impact, vector, self.cal(impact, vector)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negligible_impact_has_no_cal() {
        let m = CalMatrix::new();
        for v in AttackVector::ALL {
            assert_eq!(m.cal(ImpactRating::Negligible, v), None);
        }
    }

    #[test]
    fn severe_network_is_cal4() {
        assert_eq!(
            CalMatrix::new().cal(ImpactRating::Severe, AttackVector::Network),
            Some(Cal::Cal4)
        );
    }

    #[test]
    fn physical_never_exceeds_cal2() {
        // The limitation the paper calls out for powertrain DoS attacks.
        let m = CalMatrix::new();
        assert_eq!(m.max_cal_for_vector(AttackVector::Physical), Cal::Cal2);
        for impact in ImpactRating::ALL {
            if let Some(cal) = m.cal(impact, AttackVector::Physical) {
                assert!(cal <= Cal::Cal2, "{impact:?} physical gave {cal}");
            }
        }
    }

    #[test]
    fn cal_grows_with_impact_for_fixed_vector() {
        let m = CalMatrix::new();
        for vector in AttackVector::ALL {
            let mut prev = Cal::Cal1;
            for impact in [
                ImpactRating::Moderate,
                ImpactRating::Major,
                ImpactRating::Severe,
            ] {
                let cal = m.cal(impact, vector).unwrap();
                assert!(cal >= prev, "{vector:?}: CAL must not decrease with impact");
                prev = cal;
            }
        }
    }

    #[test]
    fn cal_grows_with_vector_remoteness_for_fixed_impact() {
        let m = CalMatrix::new();
        for impact in [
            ImpactRating::Moderate,
            ImpactRating::Major,
            ImpactRating::Severe,
        ] {
            let mut prev = Cal::Cal1;
            // Physical -> Local -> Adjacent -> Network is increasing remoteness.
            for vector in [
                AttackVector::Physical,
                AttackVector::Local,
                AttackVector::Adjacent,
                AttackVector::Network,
            ] {
                let cal = m.cal(impact, vector).unwrap();
                assert!(cal >= prev);
                prev = cal;
            }
        }
    }

    #[test]
    fn table_has_16_cells() {
        assert_eq!(CalMatrix::new().table().len(), 16);
    }

    #[test]
    fn level_round_trip_and_clamp() {
        for c in Cal::ALL {
            assert_eq!(Cal::from_level(c.level()), c);
        }
        assert_eq!(Cal::from_level(0), Cal::Cal1);
        assert_eq!(Cal::from_level(200), Cal::Cal4);
    }

    #[test]
    fn display_format() {
        assert_eq!(Cal::Cal3.to_string(), "CAL3");
    }
}
