//! Error types for the ISO/SAE-21434 TARA substrate.

use std::fmt;

/// Errors produced while assembling or evaluating a TARA.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Iso21434Error {
    /// A threat scenario references an asset that was not registered.
    UnknownAsset {
        /// The missing asset name.
        name: String,
    },
    /// A TARA entry was submitted without any attack path.
    MissingAttackPath {
        /// The threat scenario title.
        threat: String,
    },
    /// A weight table was constructed with an empty or inconsistent mapping.
    InvalidWeightTable {
        /// Human-readable reason.
        reason: String,
    },
    /// A numeric parameter was outside its admissible range.
    OutOfRange {
        /// The parameter name.
        parameter: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for Iso21434Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Iso21434Error::UnknownAsset { name } => write!(f, "unknown asset `{name}`"),
            Iso21434Error::MissingAttackPath { threat } => {
                write!(f, "threat scenario `{threat}` has no attack path")
            }
            Iso21434Error::InvalidWeightTable { reason } => {
                write!(f, "invalid weight table: {reason}")
            }
            Iso21434Error::OutOfRange { parameter, value } => {
                write!(f, "parameter `{parameter}` out of range: {value}")
            }
        }
    }
}

impl std::error::Error for Iso21434Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            Iso21434Error::UnknownAsset {
                name: "ECM FW".into()
            }
            .to_string(),
            "unknown asset `ECM FW`"
        );
        assert!(Iso21434Error::MissingAttackPath {
            threat: "T1".into()
        }
        .to_string()
        .contains("no attack path"));
        assert!(Iso21434Error::InvalidWeightTable {
            reason: "empty".into()
        }
        .to_string()
        .contains("empty"));
        assert!(Iso21434Error::OutOfRange {
            parameter: "PEA",
            value: 1.5
        }
        .to_string()
        .contains("PEA"));
    }

    #[test]
    fn implements_std_error_send_sync() {
        fn assert_all<T: std::error::Error + Send + Sync>() {}
        assert_all::<Iso21434Error>();
    }
}
