//! ISO/SAE-21434 Threat Analysis and Risk Assessment (TARA) substrate.
//!
//! This crate implements the Clause 15 TARA workflow of ISO/SAE-21434:2021 — the
//! static model the PSP framework sets out to make dynamic.  It covers:
//!
//! * [`asset`] — assets and the cybersecurity properties they carry,
//! * [`impact`] — damage scenarios and impact rating over the four impact
//!   categories (safety, financial, operational, privacy),
//! * [`threat`] — threat scenarios, STRIDE categories and attacker profiles,
//! * [`attack_path`] — attack paths made of concrete steps,
//! * [`feasibility`] — the three attack-feasibility models defined by the standard
//!   (attack-potential-based, CVSS-based, attack-vector-based; paper Figures 3
//!   and 5),
//! * [`risk`] — risk-value determination from impact and feasibility,
//! * [`cal`] — Cybersecurity Assurance Level determination (paper Figure 6),
//! * [`treatment`] — risk-treatment decisions and cybersecurity goals,
//! * [`tables`] — the normative parameter tables as typed constants,
//! * [`tara`] — the end-to-end TARA engine producing a [`tara::TaraReport`].
//!
//! The attack-vector model deliberately accepts *replacement weight tables*
//! ([`feasibility::attack_vector::AttackVectorTable`]): that is the hook through
//! which the `psp` crate injects its socially tuned weights.
//!
//! # Example
//!
//! ```
//! use iso21434::feasibility::attack_vector::AttackVectorTable;
//! use iso21434::feasibility::AttackFeasibilityRating;
//! use vehicle::attack_surface::AttackVector;
//!
//! let table = AttackVectorTable::standard();
//! assert_eq!(table.rating(AttackVector::Network), AttackFeasibilityRating::High);
//! assert_eq!(table.rating(AttackVector::Physical), AttackFeasibilityRating::VeryLow);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asset;
pub mod attack_path;
pub mod cal;
pub mod controls;
pub mod error;
pub mod feasibility;
pub mod impact;
pub mod risk;
pub mod tables;
pub mod tara;
pub mod threat;
pub mod treatment;

pub use asset::{Asset, AssetCategory, CybersecurityProperty};
pub use cal::{Cal, CalMatrix};
pub use error::Iso21434Error;
pub use feasibility::{AttackFeasibilityRating, FeasibilityModel};
pub use impact::{DamageScenario, ImpactCategory, ImpactRating};
pub use risk::{RiskMatrix, RiskValue};
pub use tara::{Tara, TaraEntry, TaraReport};
pub use threat::{AttackerProfile, StrideCategory, ThreatScenario};
pub use treatment::{CybersecurityGoal, RiskTreatment};
