//! Normative and informative tables of ISO/SAE-21434 as typed constants.
//!
//! These are the "fixed weights defined in Clause 15" that paper Figure 3 shows and
//! that the PSP framework sets out to re-tune.  Keeping them in one module makes the
//! bench harness able to print them verbatim (experiments E3, E5 and E6) and makes
//! the provenance of every number auditable.

use crate::feasibility::attack_potential::{
    ElapsedTime, Equipment, Expertise, Knowledge, WindowOfOpportunity,
};
use crate::feasibility::AttackFeasibilityRating;

/// One row of the attack-potential parameter table (paper Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PotentialRow {
    /// The parameter group (e.g. "Elapsed time").
    pub parameter: &'static str,
    /// The level label (e.g. "<= 1 week").
    pub level: &'static str,
    /// The numeric attack-potential value.
    pub value: u32,
}

/// The full attack-potential weight table as printed in paper Figure 3.
#[must_use]
pub fn attack_potential_rows() -> Vec<PotentialRow> {
    let mut rows = Vec::new();
    let et = [
        ("<= 1 day", ElapsedTime::OneDay),
        ("<= 1 week", ElapsedTime::OneWeek),
        ("<= 1 month", ElapsedTime::OneMonth),
        ("<= 6 months", ElapsedTime::SixMonths),
        ("> 6 months", ElapsedTime::BeyondSixMonths),
    ];
    for (label, v) in et {
        rows.push(PotentialRow {
            parameter: "Elapsed time",
            level: label,
            value: v.value(),
        });
    }
    let ex = [
        ("Layman", Expertise::Layman),
        ("Proficient", Expertise::Proficient),
        ("Expert", Expertise::Expert),
        ("Multiple experts", Expertise::MultipleExperts),
    ];
    for (label, v) in ex {
        rows.push(PotentialRow {
            parameter: "Specialist expertise",
            level: label,
            value: v.value(),
        });
    }
    let kn = [
        ("Public information", Knowledge::Public),
        ("Restricted information", Knowledge::Restricted),
        ("Confidential information", Knowledge::Confidential),
        (
            "Strictly confidential information",
            Knowledge::StrictlyConfidential,
        ),
    ];
    for (label, v) in kn {
        rows.push(PotentialRow {
            parameter: "Knowledge of the item",
            level: label,
            value: v.value(),
        });
    }
    let wo = [
        ("Unlimited", WindowOfOpportunity::Unlimited),
        ("Easy", WindowOfOpportunity::Easy),
        ("Moderate", WindowOfOpportunity::Moderate),
        ("Difficult", WindowOfOpportunity::Difficult),
    ];
    for (label, v) in wo {
        rows.push(PotentialRow {
            parameter: "Window of opportunity",
            level: label,
            value: v.value(),
        });
    }
    let eq = [
        ("Standard", Equipment::Standard),
        ("Specialized", Equipment::Specialized),
        ("Bespoke", Equipment::Bespoke),
        ("Multiple bespoke", Equipment::MultipleBespoke),
    ];
    for (label, v) in eq {
        rows.push(PotentialRow {
            parameter: "Equipment",
            level: label,
            value: v.value(),
        });
    }
    rows
}

/// The mapping from summed attack-potential values to feasibility ratings
/// (Annex G.2).
pub const ATTACK_POTENTIAL_BANDS: [(u32, u32, AttackFeasibilityRating); 4] = [
    (0, 13, AttackFeasibilityRating::High),
    (14, 19, AttackFeasibilityRating::Medium),
    (20, 24, AttackFeasibilityRating::Low),
    (25, u32::MAX, AttackFeasibilityRating::VeryLow),
];

/// Looks up the feasibility band for a summed attack-potential value.
#[must_use]
pub fn feasibility_for_potential(total: u32) -> AttackFeasibilityRating {
    for (lo, hi, rating) in ATTACK_POTENTIAL_BANDS {
        if total >= lo && total <= hi {
            return rating;
        }
    }
    AttackFeasibilityRating::VeryLow
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::attack_potential::AttackPotential;

    #[test]
    fn figure_3_has_21_rows() {
        // 5 elapsed-time + 4 expertise + 4 knowledge + 4 window + 4 equipment.
        assert_eq!(attack_potential_rows().len(), 21);
    }

    #[test]
    fn rows_cover_five_parameter_groups() {
        let groups: std::collections::BTreeSet<_> = attack_potential_rows()
            .iter()
            .map(|r| r.parameter)
            .collect();
        assert_eq!(groups.len(), 5);
    }

    #[test]
    fn rows_are_monotone_within_each_group() {
        let rows = attack_potential_rows();
        let mut prev: Option<(&str, u32)> = None;
        for row in &rows {
            if let Some((param, value)) = prev {
                if param == row.parameter {
                    assert!(row.value >= value, "{} not monotone", row.parameter);
                }
            }
            prev = Some((row.parameter, row.value));
        }
    }

    #[test]
    fn bands_are_contiguous_and_exhaustive() {
        for total in 0..60 {
            let _ = feasibility_for_potential(total);
        }
        assert_eq!(feasibility_for_potential(0), AttackFeasibilityRating::High);
        assert_eq!(feasibility_for_potential(13), AttackFeasibilityRating::High);
        assert_eq!(
            feasibility_for_potential(14),
            AttackFeasibilityRating::Medium
        );
        assert_eq!(
            feasibility_for_potential(19),
            AttackFeasibilityRating::Medium
        );
        assert_eq!(feasibility_for_potential(20), AttackFeasibilityRating::Low);
        assert_eq!(feasibility_for_potential(24), AttackFeasibilityRating::Low);
        assert_eq!(
            feasibility_for_potential(25),
            AttackFeasibilityRating::VeryLow
        );
    }

    #[test]
    fn bands_agree_with_attack_potential_rating() {
        use crate::feasibility::attack_potential::{
            ElapsedTime, Equipment, Expertise, Knowledge, WindowOfOpportunity,
        };
        for et in ElapsedTime::ALL {
            for ex in Expertise::ALL {
                let ap = AttackPotential::new(
                    et,
                    ex,
                    Knowledge::Public,
                    WindowOfOpportunity::Unlimited,
                    Equipment::Standard,
                );
                assert_eq!(ap.rating(), feasibility_for_potential(ap.total()));
            }
        }
    }
}
