//! The attack-vector-based feasibility model (paper Figure 5 / table G.9).
//!
//! The simplest of the three models: the attack vector required by the attack path
//! is looked up in a four-row table that maps Network → High, Adjacent → Medium,
//! Local → Low and Physical → Very Low.
//!
//! The paper's central criticism is that this table is *fixed*: for a powertrain ECU
//! attacked by its own owner (the insider case) the physical row is grossly
//! under-rated.  [`AttackVectorTable`] therefore supports arbitrary replacement
//! mappings; the `psp` crate generates those from social-media evidence
//! (paper Figures 8-B, 9-B and 9-C).

use super::{AttackFeasibilityRating, FeasibilityModel};
use crate::attack_path::AttackPath;
use crate::error::Iso21434Error;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use vehicle::attack_surface::AttackVector;

/// A vector → rating table (the G.9 table or a PSP-tuned replacement).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackVectorTable {
    name: String,
    ratings: BTreeMap<AttackVector, AttackFeasibilityRating>,
}

impl AttackVectorTable {
    /// The standard table of ISO/SAE-21434 G.9 (paper Figure 5 / Figure 9-A):
    /// Network → High, Adjacent → Medium, Local → Low, Physical → Very Low.
    #[must_use]
    pub fn standard() -> Self {
        let mut ratings = BTreeMap::new();
        ratings.insert(AttackVector::Network, AttackFeasibilityRating::High);
        ratings.insert(AttackVector::Adjacent, AttackFeasibilityRating::Medium);
        ratings.insert(AttackVector::Local, AttackFeasibilityRating::Low);
        ratings.insert(AttackVector::Physical, AttackFeasibilityRating::VeryLow);
        Self {
            name: "ISO/SAE-21434 G.9 (standard)".to_string(),
            ratings,
        }
    }

    /// Builds a custom table.
    ///
    /// # Errors
    ///
    /// Returns [`Iso21434Error::InvalidWeightTable`] if any of the four attack
    /// vectors is missing from `ratings`.
    pub fn custom(
        name: impl Into<String>,
        ratings: BTreeMap<AttackVector, AttackFeasibilityRating>,
    ) -> Result<Self, Iso21434Error> {
        for vector in AttackVector::ALL {
            if !ratings.contains_key(&vector) {
                return Err(Iso21434Error::InvalidWeightTable {
                    reason: format!("missing rating for attack vector {vector}"),
                });
            }
        }
        Ok(Self {
            name: name.into(),
            ratings,
        })
    }

    /// The table name (shown in reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The rating assigned to an attack vector.
    #[must_use]
    pub fn rating(&self, vector: AttackVector) -> AttackFeasibilityRating {
        self.ratings
            .get(&vector)
            .copied()
            .unwrap_or(AttackFeasibilityRating::VeryLow)
    }

    /// Iterates over the rows in vector order (Network first).
    pub fn rows(&self) -> impl Iterator<Item = (AttackVector, AttackFeasibilityRating)> + '_ {
        AttackVector::ALL.into_iter().map(|v| (v, self.rating(v)))
    }

    /// The attack vectors ranked from most to least feasible under this table
    /// (ties broken by keeping the remote-to-local order).  Comparing the ranking of
    /// a tuned table against the standard one is how the paper presents the
    /// "priority change" of Figure 8-B.
    #[must_use]
    pub fn ranking(&self) -> Vec<AttackVector> {
        let mut vectors = AttackVector::ALL.to_vec();
        vectors.sort_by(|a, b| self.rating(*b).cmp(&self.rating(*a)).then(a.cmp(b)));
        vectors
    }

    /// Whether this table assigns the same rating to every vector as `other`.
    #[must_use]
    pub fn same_ratings_as(&self, other: &AttackVectorTable) -> bool {
        AttackVector::ALL
            .iter()
            .all(|v| self.rating(*v) == other.rating(*v))
    }
}

impl Default for AttackVectorTable {
    fn default() -> Self {
        Self::standard()
    }
}

impl fmt::Display for AttackVectorTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.name)?;
        for (vector, rating) in self.rows() {
            writeln!(f, "  {vector:<9} -> {rating}")?;
        }
        Ok(())
    }
}

/// A [`FeasibilityModel`] that rates an attack path by looking up its limiting
/// vector in an [`AttackVectorTable`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackVectorModel {
    table: AttackVectorTable,
}

impl AttackVectorModel {
    /// Uses the standard G.9 table.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            table: AttackVectorTable::standard(),
        }
    }

    /// Uses a custom (e.g. PSP-tuned) table.
    #[must_use]
    pub fn with_table(table: AttackVectorTable) -> Self {
        Self { table }
    }

    /// The underlying table.
    #[must_use]
    pub fn table(&self) -> &AttackVectorTable {
        &self.table
    }
}

impl Default for AttackVectorModel {
    fn default() -> Self {
        Self::standard()
    }
}

impl FeasibilityModel for AttackVectorModel {
    fn name(&self) -> &str {
        self.table.name()
    }

    fn rate(&self, path: &AttackPath) -> AttackFeasibilityRating {
        let vector = path.limiting_vector().unwrap_or(AttackVector::Physical);
        self.table.rating(vector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_table_matches_g9() {
        let t = AttackVectorTable::standard();
        assert_eq!(
            t.rating(AttackVector::Network),
            AttackFeasibilityRating::High
        );
        assert_eq!(
            t.rating(AttackVector::Adjacent),
            AttackFeasibilityRating::Medium
        );
        assert_eq!(t.rating(AttackVector::Local), AttackFeasibilityRating::Low);
        assert_eq!(
            t.rating(AttackVector::Physical),
            AttackFeasibilityRating::VeryLow
        );
    }

    #[test]
    fn standard_ranking_is_remote_first() {
        assert_eq!(
            AttackVectorTable::standard().ranking(),
            vec![
                AttackVector::Network,
                AttackVector::Adjacent,
                AttackVector::Local,
                AttackVector::Physical
            ]
        );
    }

    #[test]
    fn custom_table_requires_all_vectors() {
        let mut partial = BTreeMap::new();
        partial.insert(AttackVector::Network, AttackFeasibilityRating::High);
        let err = AttackVectorTable::custom("partial", partial).unwrap_err();
        assert!(matches!(err, Iso21434Error::InvalidWeightTable { .. }));
    }

    #[test]
    fn custom_table_can_invert_priorities() {
        // The PSP insider table of Figure 8-B: physical/local dominate.
        let mut ratings = BTreeMap::new();
        ratings.insert(AttackVector::Physical, AttackFeasibilityRating::High);
        ratings.insert(AttackVector::Local, AttackFeasibilityRating::Medium);
        ratings.insert(AttackVector::Adjacent, AttackFeasibilityRating::Low);
        ratings.insert(AttackVector::Network, AttackFeasibilityRating::VeryLow);
        let t = AttackVectorTable::custom("PSP insider", ratings).unwrap();
        assert_eq!(t.ranking()[0], AttackVector::Physical);
        assert!(!t.same_ratings_as(&AttackVectorTable::standard()));
    }

    #[test]
    fn model_rates_by_limiting_vector() {
        let model = AttackVectorModel::standard();
        let remote = AttackPath::new("remote").step("cellular exploit", AttackVector::Network);
        let physical =
            AttackPath::new("bench").step("reflash on the bench", AttackVector::Physical);
        assert_eq!(model.rate(&remote), AttackFeasibilityRating::High);
        assert_eq!(model.rate(&physical), AttackFeasibilityRating::VeryLow);
    }

    #[test]
    fn empty_path_is_treated_as_physical() {
        let model = AttackVectorModel::default();
        assert_eq!(
            model.rate(&AttackPath::new("empty")),
            AttackFeasibilityRating::VeryLow
        );
    }

    #[test]
    fn rows_iterate_in_vector_order() {
        let rows: Vec<_> = AttackVectorTable::standard().rows().collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].0, AttackVector::Network);
        assert_eq!(rows[3].0, AttackVector::Physical);
    }

    #[test]
    fn display_renders_all_rows() {
        let s = AttackVectorTable::standard().to_string();
        for label in ["Network", "Adjacent", "Local", "Physical"] {
            assert!(s.contains(label), "{label} missing from {s}");
        }
    }

    #[test]
    fn same_ratings_as_is_reflexive() {
        let t = AttackVectorTable::standard();
        assert!(t.same_ratings_as(&t.clone()));
    }

    #[test]
    fn serde_round_trip() {
        let t = AttackVectorTable::standard();
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(t, serde_json::from_str(&json).unwrap());
    }
}
