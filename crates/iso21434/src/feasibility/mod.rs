//! Attack-feasibility models (ISO/SAE-21434 Clause 15.7 and Annex G).
//!
//! The standard defines three alternative approaches to rate how feasible an attack
//! path is:
//!
//! * the **attack-potential-based** approach ([`attack_potential`]) derived from
//!   ISO/IEC 18045, summing elapsed time, expertise, knowledge, window of
//!   opportunity and equipment scores (paper Figure 3);
//! * the **CVSS-based** approach ([`cvss`]) using the exploitability sub-metrics of
//!   CVSS v3.1;
//! * the **attack-vector-based** approach ([`attack_vector`]) that maps the access
//!   required (network / adjacent / local / physical) straight to a rating
//!   (paper Figure 5 and table G.9).
//!
//! All three produce an [`AttackFeasibilityRating`].  The attack-vector approach is
//! the one the PSP framework re-weights, so its table type accepts arbitrary
//! vector → rating mappings.

pub mod attack_potential;
pub mod attack_vector;
pub mod cvss;

use crate::attack_path::AttackPath;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The attack-feasibility rating scale shared by all three models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttackFeasibilityRating {
    /// The attack is practically out of reach.
    VeryLow,
    /// The attack requires substantial effort or access.
    Low,
    /// The attack is plausible with moderate effort.
    Medium,
    /// The attack is easy for the relevant attacker population.
    High,
}

impl AttackFeasibilityRating {
    /// All ratings from lowest to highest feasibility.
    pub const ALL: [AttackFeasibilityRating; 4] = [
        AttackFeasibilityRating::VeryLow,
        AttackFeasibilityRating::Low,
        AttackFeasibilityRating::Medium,
        AttackFeasibilityRating::High,
    ];

    /// Numeric feasibility value used by the risk matrix (1 = very low … 4 = high).
    #[must_use]
    pub fn value(self) -> u8 {
        match self {
            AttackFeasibilityRating::VeryLow => 1,
            AttackFeasibilityRating::Low => 2,
            AttackFeasibilityRating::Medium => 3,
            AttackFeasibilityRating::High => 4,
        }
    }

    /// Builds a rating from the numeric value, clamping out-of-range input.
    #[must_use]
    pub fn from_value(value: u8) -> Self {
        match value {
            0 | 1 => AttackFeasibilityRating::VeryLow,
            2 => AttackFeasibilityRating::Low,
            3 => AttackFeasibilityRating::Medium,
            _ => AttackFeasibilityRating::High,
        }
    }

    /// The label used in the standard's tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AttackFeasibilityRating::VeryLow => "Very Low",
            AttackFeasibilityRating::Low => "Low",
            AttackFeasibilityRating::Medium => "Medium",
            AttackFeasibilityRating::High => "High",
        }
    }
}

impl fmt::Display for AttackFeasibilityRating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A model that can rate the feasibility of an attack path.
///
/// The trait is object-safe so a TARA can be parameterised with any of the three
/// standard models — or with a PSP-tuned replacement.
pub trait FeasibilityModel {
    /// A short name identifying the model (used in reports).
    fn name(&self) -> &str;

    /// Rates the feasibility of the given attack path.
    fn rate(&self, path: &AttackPath) -> AttackFeasibilityRating;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_are_monotone_with_feasibility() {
        let values: Vec<_> = AttackFeasibilityRating::ALL
            .iter()
            .map(|r| r.value())
            .collect();
        assert_eq!(values, vec![1, 2, 3, 4]);
    }

    #[test]
    fn from_value_round_trips_and_clamps() {
        for r in AttackFeasibilityRating::ALL {
            assert_eq!(AttackFeasibilityRating::from_value(r.value()), r);
        }
        assert_eq!(
            AttackFeasibilityRating::from_value(0),
            AttackFeasibilityRating::VeryLow
        );
        assert_eq!(
            AttackFeasibilityRating::from_value(99),
            AttackFeasibilityRating::High
        );
    }

    #[test]
    fn labels_match_standard_wording() {
        assert_eq!(AttackFeasibilityRating::VeryLow.to_string(), "Very Low");
        assert_eq!(AttackFeasibilityRating::High.to_string(), "High");
    }

    #[test]
    fn ordering_puts_high_last() {
        assert!(AttackFeasibilityRating::VeryLow < AttackFeasibilityRating::High);
        assert_eq!(
            AttackFeasibilityRating::ALL.iter().max(),
            Some(&AttackFeasibilityRating::High)
        );
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_m: &dyn FeasibilityModel) {}
    }
}
