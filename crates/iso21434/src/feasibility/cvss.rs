//! The CVSS-based feasibility model (ISO/SAE-21434 Annex G.3).
//!
//! The standard's second option rates feasibility from the exploitability
//! sub-metrics of CVSS v3.1: attack vector, attack complexity, privileges required
//! and user interaction.  The exploitability sub-score is
//! `8.22 × AV × AC × PR × UI`, and the score bands are mapped onto the shared
//! [`AttackFeasibilityRating`] scale.

use super::{AttackFeasibilityRating, FeasibilityModel};
use crate::attack_path::AttackPath;
use serde::{Deserialize, Serialize};
use std::fmt;
use vehicle::attack_surface::AttackVector;

/// CVSS v3.1 attack-complexity metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttackComplexity {
    /// Specialised access conditions do not exist.
    Low,
    /// Successful attack depends on conditions beyond the attacker's control.
    High,
}

impl AttackComplexity {
    /// CVSS numeric weight.
    #[must_use]
    pub fn weight(self) -> f64 {
        match self {
            AttackComplexity::Low => 0.77,
            AttackComplexity::High => 0.44,
        }
    }
}

/// CVSS v3.1 privileges-required metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PrivilegesRequired {
    /// No privileges needed.
    None,
    /// Basic user privileges needed.
    Low,
    /// Administrative privileges needed.
    High,
}

impl PrivilegesRequired {
    /// CVSS numeric weight (unchanged-scope values).
    #[must_use]
    pub fn weight(self) -> f64 {
        match self {
            PrivilegesRequired::None => 0.85,
            PrivilegesRequired::Low => 0.62,
            PrivilegesRequired::High => 0.27,
        }
    }
}

/// CVSS v3.1 user-interaction metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum UserInteraction {
    /// No user interaction required.
    None,
    /// A user must take some action.
    Required,
}

impl UserInteraction {
    /// CVSS numeric weight.
    #[must_use]
    pub fn weight(self) -> f64 {
        match self {
            UserInteraction::None => 0.85,
            UserInteraction::Required => 0.62,
        }
    }
}

/// CVSS numeric weight of the attack-vector metric.
#[must_use]
pub fn attack_vector_weight(vector: AttackVector) -> f64 {
    match vector {
        AttackVector::Network => 0.85,
        AttackVector::Adjacent => 0.62,
        AttackVector::Local => 0.55,
        AttackVector::Physical => 0.20,
    }
}

/// A CVSS exploitability assessment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CvssExploitability {
    /// The attack-vector metric (taken from the attack path when rating).
    pub vector: AttackVector,
    /// The attack-complexity metric.
    pub complexity: AttackComplexity,
    /// The privileges-required metric.
    pub privileges: PrivilegesRequired,
    /// The user-interaction metric.
    pub interaction: UserInteraction,
}

impl CvssExploitability {
    /// Creates an assessment.
    #[must_use]
    pub fn new(
        vector: AttackVector,
        complexity: AttackComplexity,
        privileges: PrivilegesRequired,
        interaction: UserInteraction,
    ) -> Self {
        Self {
            vector,
            complexity,
            privileges,
            interaction,
        }
    }

    /// The CVSS v3.1 exploitability sub-score: `8.22 × AV × AC × PR × UI`.
    #[must_use]
    pub fn score(&self) -> f64 {
        8.22 * attack_vector_weight(self.vector)
            * self.complexity.weight()
            * self.privileges.weight()
            * self.interaction.weight()
    }

    /// Maps the exploitability score onto the shared rating scale using the Annex G
    /// bands: < 1 → Very Low, 1–2 → Low, 2–3 → Medium, ≥ 3 → High.
    #[must_use]
    pub fn rating(&self) -> AttackFeasibilityRating {
        let score = self.score();
        if score < 1.0 {
            AttackFeasibilityRating::VeryLow
        } else if score < 2.0 {
            AttackFeasibilityRating::Low
        } else if score < 3.0 {
            AttackFeasibilityRating::Medium
        } else {
            AttackFeasibilityRating::High
        }
    }
}

impl fmt::Display for CvssExploitability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CVSS exploitability {:.2} -> {}",
            self.score(),
            self.rating()
        )
    }
}

/// A [`FeasibilityModel`] that derives the attack-vector metric from the attack
/// path's limiting vector and keeps the remaining metrics fixed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CvssModel {
    complexity: AttackComplexity,
    privileges: PrivilegesRequired,
    interaction: UserInteraction,
}

impl CvssModel {
    /// Creates the model with the given fixed metrics.
    #[must_use]
    pub fn new(
        complexity: AttackComplexity,
        privileges: PrivilegesRequired,
        interaction: UserInteraction,
    ) -> Self {
        Self {
            complexity,
            privileges,
            interaction,
        }
    }

    /// A permissive default: low complexity, no privileges, no interaction —
    /// the worst case the standard suggests starting from.
    #[must_use]
    pub fn permissive() -> Self {
        Self::new(
            AttackComplexity::Low,
            PrivilegesRequired::None,
            UserInteraction::None,
        )
    }
}

impl Default for CvssModel {
    fn default() -> Self {
        Self::permissive()
    }
}

impl FeasibilityModel for CvssModel {
    fn name(&self) -> &str {
        "CVSS-based (ISO/SAE-21434 G.3)"
    }

    fn rate(&self, path: &AttackPath) -> AttackFeasibilityRating {
        let vector = path.limiting_vector().unwrap_or(AttackVector::Physical);
        CvssExploitability::new(vector, self.complexity, self.privileges, self.interaction).rating()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assess(vector: AttackVector) -> CvssExploitability {
        CvssExploitability::new(
            vector,
            AttackComplexity::Low,
            PrivilegesRequired::None,
            UserInteraction::None,
        )
    }

    #[test]
    fn network_scores_highest() {
        let network = assess(AttackVector::Network).score();
        let adjacent = assess(AttackVector::Adjacent).score();
        let local = assess(AttackVector::Local).score();
        let physical = assess(AttackVector::Physical).score();
        assert!(network > adjacent);
        assert!(adjacent > local);
        assert!(local > physical);
        assert!((network - 8.22 * 0.85 * 0.77 * 0.85 * 0.85).abs() < 1e-9);
    }

    #[test]
    fn permissive_network_is_high_physical_is_very_low() {
        // This mirrors the G.9 ordering the paper criticises: even in the most
        // permissive configuration a physical attack lands in the lowest band.
        assert_eq!(
            assess(AttackVector::Network).rating(),
            AttackFeasibilityRating::High
        );
        assert_eq!(
            assess(AttackVector::Physical).rating(),
            AttackFeasibilityRating::VeryLow
        );
    }

    #[test]
    fn high_friction_physical_is_very_low() {
        let hard = CvssExploitability::new(
            AttackVector::Physical,
            AttackComplexity::High,
            PrivilegesRequired::High,
            UserInteraction::Required,
        );
        assert!(hard.score() < 1.0);
        assert_eq!(hard.rating(), AttackFeasibilityRating::VeryLow);
    }

    #[test]
    fn model_uses_limiting_vector_of_path() {
        let model = CvssModel::permissive();
        let remote = AttackPath::new("remote").step("exploit TCU", AttackVector::Network);
        let mixed = AttackPath::new("mixed")
            .step("exploit TCU", AttackVector::Network)
            .step("solder bypass", AttackVector::Physical);
        assert_eq!(model.rate(&remote), AttackFeasibilityRating::High);
        assert_eq!(model.rate(&mixed), AttackFeasibilityRating::VeryLow);
    }

    #[test]
    fn empty_path_defaults_to_physical() {
        let model = CvssModel::default();
        let empty = AttackPath::new("empty");
        assert_eq!(model.rate(&empty), AttackFeasibilityRating::VeryLow);
    }

    #[test]
    fn rating_bands_are_exercised() {
        // Medium: local vector, low complexity, no privileges, no interaction.
        let medium = assess(AttackVector::Local);
        assert!(medium.score() >= 2.0 && medium.score() < 3.0);
        assert_eq!(medium.rating(), AttackFeasibilityRating::Medium);
    }

    #[test]
    fn display_contains_score() {
        let s = assess(AttackVector::Network).to_string();
        assert!(s.contains("CVSS"));
        assert!(s.contains("High"));
    }

    #[test]
    fn model_name_mentions_cvss() {
        assert!(CvssModel::default().name().contains("CVSS"));
    }
}
