//! The attack-potential-based feasibility model (paper Figure 3, Annex G.2).
//!
//! Derived from the ISO/IEC 18045 "attack potential" calculation: the analyst rates
//! five core parameters — elapsed time, specialist expertise, knowledge of the item,
//! window of opportunity and equipment — sums the associated values, and maps the
//! total onto a feasibility rating (a *higher* attack-potential total means the
//! attack is *harder*, hence *lower* feasibility).

use super::{AttackFeasibilityRating, FeasibilityModel};
use crate::attack_path::AttackPath;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Elapsed time needed to identify and exploit the vulnerability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ElapsedTime {
    /// Up to one day.
    OneDay,
    /// Up to one week.
    OneWeek,
    /// Up to one month.
    OneMonth,
    /// Up to six months.
    SixMonths,
    /// More than six months.
    BeyondSixMonths,
}

impl ElapsedTime {
    /// Attack-potential value per ISO/IEC 18045.
    #[must_use]
    pub fn value(self) -> u32 {
        match self {
            ElapsedTime::OneDay => 0,
            ElapsedTime::OneWeek => 1,
            ElapsedTime::OneMonth => 4,
            ElapsedTime::SixMonths => 17,
            ElapsedTime::BeyondSixMonths => 19,
        }
    }

    /// All levels.
    pub const ALL: [ElapsedTime; 5] = [
        ElapsedTime::OneDay,
        ElapsedTime::OneWeek,
        ElapsedTime::OneMonth,
        ElapsedTime::SixMonths,
        ElapsedTime::BeyondSixMonths,
    ];
}

/// Specialist expertise required of the attacker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Expertise {
    /// No particular expertise (layman).
    Layman,
    /// Familiar with the security behaviour of the product type (proficient).
    Proficient,
    /// Familiar with underlying algorithms, protocols, hardware (expert).
    Expert,
    /// Different fields of expertise required (multiple experts).
    MultipleExperts,
}

impl Expertise {
    /// Attack-potential value.
    #[must_use]
    pub fn value(self) -> u32 {
        match self {
            Expertise::Layman => 0,
            Expertise::Proficient => 3,
            Expertise::Expert => 6,
            Expertise::MultipleExperts => 8,
        }
    }

    /// All levels.
    pub const ALL: [Expertise; 4] = [
        Expertise::Layman,
        Expertise::Proficient,
        Expertise::Expert,
        Expertise::MultipleExperts,
    ];
}

/// Knowledge of the item or component required.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Knowledge {
    /// Public information only.
    Public,
    /// Restricted information (e.g. controlled distribution).
    Restricted,
    /// Confidential information.
    Confidential,
    /// Strictly confidential information.
    StrictlyConfidential,
}

impl Knowledge {
    /// Attack-potential value.
    #[must_use]
    pub fn value(self) -> u32 {
        match self {
            Knowledge::Public => 0,
            Knowledge::Restricted => 3,
            Knowledge::Confidential => 7,
            Knowledge::StrictlyConfidential => 11,
        }
    }

    /// All levels.
    pub const ALL: [Knowledge; 4] = [
        Knowledge::Public,
        Knowledge::Restricted,
        Knowledge::Confidential,
        Knowledge::StrictlyConfidential,
    ];
}

/// Window of opportunity available to the attacker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WindowOfOpportunity {
    /// Unlimited access (no time or access constraint) — the insider case the paper
    /// highlights for powertrain attackers.
    Unlimited,
    /// Easy: access ≤ 1 month, limited physical constraint.
    Easy,
    /// Moderate: access ≤ 1 month with constraints.
    Moderate,
    /// Difficult: very limited access opportunity.
    Difficult,
}

impl WindowOfOpportunity {
    /// Attack-potential value.
    #[must_use]
    pub fn value(self) -> u32 {
        match self {
            WindowOfOpportunity::Unlimited => 0,
            WindowOfOpportunity::Easy => 1,
            WindowOfOpportunity::Moderate => 4,
            WindowOfOpportunity::Difficult => 10,
        }
    }

    /// All levels.
    pub const ALL: [WindowOfOpportunity; 4] = [
        WindowOfOpportunity::Unlimited,
        WindowOfOpportunity::Easy,
        WindowOfOpportunity::Moderate,
        WindowOfOpportunity::Difficult,
    ];
}

/// Equipment required.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Equipment {
    /// Standard equipment readily available (laptop, OBD dongle).
    Standard,
    /// Specialised equipment (CAN analyzers, debuggers, oscilloscopes).
    Specialized,
    /// Bespoke equipment that must be specially produced.
    Bespoke,
    /// Multiple bespoke instruments.
    MultipleBespoke,
}

impl Equipment {
    /// Attack-potential value.
    #[must_use]
    pub fn value(self) -> u32 {
        match self {
            Equipment::Standard => 0,
            Equipment::Specialized => 4,
            Equipment::Bespoke => 7,
            Equipment::MultipleBespoke => 9,
        }
    }

    /// All levels.
    pub const ALL: [Equipment; 4] = [
        Equipment::Standard,
        Equipment::Specialized,
        Equipment::Bespoke,
        Equipment::MultipleBespoke,
    ];
}

/// A complete attack-potential assessment of one attack path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackPotential {
    /// Elapsed time parameter.
    pub elapsed_time: ElapsedTime,
    /// Expertise parameter.
    pub expertise: Expertise,
    /// Knowledge-of-item parameter.
    pub knowledge: Knowledge,
    /// Window-of-opportunity parameter.
    pub window: WindowOfOpportunity,
    /// Equipment parameter.
    pub equipment: Equipment,
}

impl AttackPotential {
    /// Creates an assessment from its five parameters.
    #[must_use]
    pub fn new(
        elapsed_time: ElapsedTime,
        expertise: Expertise,
        knowledge: Knowledge,
        window: WindowOfOpportunity,
        equipment: Equipment,
    ) -> Self {
        Self {
            elapsed_time,
            expertise,
            knowledge,
            window,
            equipment,
        }
    }

    /// The summed attack-potential value.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.elapsed_time.value()
            + self.expertise.value()
            + self.knowledge.value()
            + self.window.value()
            + self.equipment.value()
    }

    /// Maps the total onto the feasibility rating per Annex G:
    /// 0–13 → High, 14–19 → Medium, 20–24 → Low, ≥25 → Very Low.
    #[must_use]
    pub fn rating(&self) -> AttackFeasibilityRating {
        match self.total() {
            0..=13 => AttackFeasibilityRating::High,
            14..=19 => AttackFeasibilityRating::Medium,
            20..=24 => AttackFeasibilityRating::Low,
            _ => AttackFeasibilityRating::VeryLow,
        }
    }
}

impl fmt::Display for AttackPotential {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attack potential {} -> {}", self.total(), self.rating())
    }
}

/// A [`FeasibilityModel`] that rates every path with a fixed attack-potential
/// assessment supplied by the analyst (the standard's model has no way to derive
/// the five parameters from the path itself — precisely the "static weights"
/// criticism the paper makes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackPotentialModel {
    assessment: AttackPotential,
}

impl AttackPotentialModel {
    /// Wraps an assessment as a feasibility model.
    #[must_use]
    pub fn new(assessment: AttackPotential) -> Self {
        Self { assessment }
    }

    /// The wrapped assessment.
    #[must_use]
    pub fn assessment(&self) -> &AttackPotential {
        &self.assessment
    }
}

impl FeasibilityModel for AttackPotentialModel {
    fn name(&self) -> &str {
        "attack-potential-based (ISO/SAE-21434 G.2)"
    }

    fn rate(&self, _path: &AttackPath) -> AttackFeasibilityRating {
        self.assessment.rating()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vehicle::attack_surface::AttackVector;

    #[test]
    fn parameter_values_match_iso18045() {
        assert_eq!(ElapsedTime::OneDay.value(), 0);
        assert_eq!(ElapsedTime::BeyondSixMonths.value(), 19);
        assert_eq!(Expertise::MultipleExperts.value(), 8);
        assert_eq!(Knowledge::StrictlyConfidential.value(), 11);
        assert_eq!(WindowOfOpportunity::Difficult.value(), 10);
        assert_eq!(Equipment::MultipleBespoke.value(), 9);
    }

    #[test]
    fn values_are_monotone_within_each_parameter() {
        fn monotone(values: &[u32]) -> bool {
            values.windows(2).all(|w| w[0] <= w[1])
        }
        assert!(monotone(&ElapsedTime::ALL.map(|v| v.value())));
        assert!(monotone(&Expertise::ALL.map(|v| v.value())));
        assert!(monotone(&Knowledge::ALL.map(|v| v.value())));
        assert!(monotone(&WindowOfOpportunity::ALL.map(|v| v.value())));
        assert!(monotone(&Equipment::ALL.map(|v| v.value())));
    }

    #[test]
    fn trivial_attack_rates_high() {
        // The owner-assisted OBD reflash: hours of work, layman following a forum
        // guide, public information, unlimited window, standard tools.
        let ap = AttackPotential::new(
            ElapsedTime::OneDay,
            Expertise::Layman,
            Knowledge::Public,
            WindowOfOpportunity::Unlimited,
            Equipment::Standard,
        );
        assert_eq!(ap.total(), 0);
        assert_eq!(ap.rating(), AttackFeasibilityRating::High);
    }

    #[test]
    fn nation_state_attack_rates_very_low() {
        let ap = AttackPotential::new(
            ElapsedTime::BeyondSixMonths,
            Expertise::MultipleExperts,
            Knowledge::StrictlyConfidential,
            WindowOfOpportunity::Difficult,
            Equipment::MultipleBespoke,
        );
        assert_eq!(ap.total(), 57);
        assert_eq!(ap.rating(), AttackFeasibilityRating::VeryLow);
    }

    #[test]
    fn band_boundaries() {
        // 13 is the top of High.
        let high = AttackPotential::new(
            ElapsedTime::OneWeek,          // 1
            Expertise::Proficient,         // 3
            Knowledge::Restricted,         // 3
            WindowOfOpportunity::Moderate, // 4
            Equipment::Standard,           // 0
        );
        assert_eq!(high.total(), 11);
        assert_eq!(high.rating(), AttackFeasibilityRating::High);

        let medium = AttackPotential::new(
            ElapsedTime::OneMonth,     // 4
            Expertise::Expert,         // 6
            Knowledge::Restricted,     // 3
            WindowOfOpportunity::Easy, // 1
            Equipment::Standard,       // 0
        );
        assert_eq!(medium.total(), 14);
        assert_eq!(medium.rating(), AttackFeasibilityRating::Medium);

        let low = AttackPotential::new(
            ElapsedTime::OneMonth,     // 4
            Expertise::Expert,         // 6
            Knowledge::Confidential,   // 7
            WindowOfOpportunity::Easy, // 1
            Equipment::Specialized,    // 4
        );
        assert_eq!(low.total(), 22);
        assert_eq!(low.rating(), AttackFeasibilityRating::Low);
    }

    #[test]
    fn model_rates_any_path_with_the_fixed_assessment() {
        let ap = AttackPotential::new(
            ElapsedTime::OneWeek,
            Expertise::Proficient,
            Knowledge::Public,
            WindowOfOpportunity::Unlimited,
            Equipment::Specialized,
        );
        let model = AttackPotentialModel::new(ap);
        let path = AttackPath::new("p").step("x", AttackVector::Physical);
        assert_eq!(model.rate(&path), ap.rating());
        assert!(model.name().contains("attack-potential"));
    }

    #[test]
    fn display_mentions_total_and_rating() {
        let ap = AttackPotential::new(
            ElapsedTime::OneDay,
            Expertise::Layman,
            Knowledge::Public,
            WindowOfOpportunity::Unlimited,
            Equipment::Standard,
        );
        let s = ap.to_string();
        assert!(s.contains('0'));
        assert!(s.contains("High"));
    }

    #[test]
    fn serde_round_trip() {
        let ap = AttackPotential::new(
            ElapsedTime::OneMonth,
            Expertise::Expert,
            Knowledge::Restricted,
            WindowOfOpportunity::Easy,
            Equipment::Specialized,
        );
        let json = serde_json::to_string(&ap).unwrap();
        assert_eq!(ap, serde_json::from_str(&json).unwrap());
    }
}
