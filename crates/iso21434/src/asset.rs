//! Assets and cybersecurity properties (ISO/SAE-21434 Clause 15.3).
//!
//! Asset identification is the first TARA activity: every item function, data
//! element or communication channel whose compromise can lead to a damage scenario
//! is enumerated together with the cybersecurity properties (confidentiality,
//! integrity, availability, …) that must hold for it.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A cybersecurity property that an asset carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CybersecurityProperty {
    /// Information is not disclosed to unauthorised parties.
    Confidentiality,
    /// Information and functions are not altered by unauthorised parties.
    Integrity,
    /// Information and functions are accessible when required.
    Availability,
    /// The origin of data or commands can be trusted.
    Authenticity,
    /// Only authorised parties can perform an action.
    Authorization,
    /// Actions can be attributed to their originator.
    NonRepudiation,
}

impl CybersecurityProperty {
    /// All properties, in a stable order.
    pub const ALL: [CybersecurityProperty; 6] = [
        CybersecurityProperty::Confidentiality,
        CybersecurityProperty::Integrity,
        CybersecurityProperty::Availability,
        CybersecurityProperty::Authenticity,
        CybersecurityProperty::Authorization,
        CybersecurityProperty::NonRepudiation,
    ];
}

impl fmt::Display for CybersecurityProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CybersecurityProperty::Confidentiality => "Confidentiality",
            CybersecurityProperty::Integrity => "Integrity",
            CybersecurityProperty::Availability => "Availability",
            CybersecurityProperty::Authenticity => "Authenticity",
            CybersecurityProperty::Authorization => "Authorization",
            CybersecurityProperty::NonRepudiation => "Non-repudiation",
        };
        f.write_str(s)
    }
}

/// A coarse classification of assets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AssetCategory {
    /// Executable firmware or software images.
    Firmware,
    /// Calibration maps and configuration parameters.
    Calibration,
    /// Cryptographic keys and certificates.
    CryptographicMaterial,
    /// Run-time data (sensor values, bus messages).
    OperationalData,
    /// Personally identifiable information.
    PersonalData,
    /// A vehicle function (e.g. torque control, emission after-treatment).
    Function,
    /// A communication channel (bus segment, diagnostic session).
    CommunicationChannel,
    /// Physical hardware (the ECU itself, sensors, actuators).
    Hardware,
}

/// An asset under analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Asset {
    name: String,
    description: String,
    category: AssetCategory,
    /// The ECU (by short name) that hosts the asset, if any.
    host_ecu: Option<String>,
    properties: Vec<CybersecurityProperty>,
}

impl Asset {
    /// Creates a new asset.
    ///
    /// # Examples
    ///
    /// ```
    /// use iso21434::{Asset, AssetCategory, CybersecurityProperty};
    /// let asset = Asset::new("ECM firmware", AssetCategory::Firmware)
    ///     .hosted_on("ECM")
    ///     .with_property(CybersecurityProperty::Integrity)
    ///     .with_property(CybersecurityProperty::Authenticity);
    /// assert_eq!(asset.properties().len(), 2);
    /// ```
    #[must_use]
    pub fn new(name: impl Into<String>, category: AssetCategory) -> Self {
        Self {
            name: name.into(),
            description: String::new(),
            category,
            host_ecu: None,
            properties: Vec::new(),
        }
    }

    /// Adds a free-text description.
    #[must_use]
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Records the ECU hosting the asset.
    #[must_use]
    pub fn hosted_on(mut self, ecu: impl Into<String>) -> Self {
        self.host_ecu = Some(ecu.into());
        self
    }

    /// Adds a cybersecurity property (duplicates are ignored).
    #[must_use]
    pub fn with_property(mut self, property: CybersecurityProperty) -> Self {
        if !self.properties.contains(&property) {
            self.properties.push(property);
        }
        self
    }

    /// The asset name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The free-text description.
    #[must_use]
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The asset category.
    #[must_use]
    pub fn category(&self) -> AssetCategory {
        self.category
    }

    /// The hosting ECU, if recorded.
    #[must_use]
    pub fn host_ecu(&self) -> Option<&str> {
        self.host_ecu.as_deref()
    }

    /// The cybersecurity properties that must hold for the asset.
    #[must_use]
    pub fn properties(&self) -> &[CybersecurityProperty] {
        &self.properties
    }

    /// Whether the asset carries the given property.
    #[must_use]
    pub fn has_property(&self, property: CybersecurityProperty) -> bool {
        self.properties.contains(&property)
    }
}

impl fmt::Display for Asset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.host_ecu {
            Some(ecu) => write!(f, "{} @ {}", self.name, ecu),
            None => f.write_str(&self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn firmware_asset() -> Asset {
        Asset::new("ECM firmware", AssetCategory::Firmware)
            .with_description("engine control firmware image")
            .hosted_on("ECM")
            .with_property(CybersecurityProperty::Integrity)
            .with_property(CybersecurityProperty::Authenticity)
    }

    #[test]
    fn builder_accumulates_properties_without_duplicates() {
        let asset = firmware_asset().with_property(CybersecurityProperty::Integrity);
        assert_eq!(asset.properties().len(), 2);
        assert!(asset.has_property(CybersecurityProperty::Integrity));
        assert!(!asset.has_property(CybersecurityProperty::Confidentiality));
    }

    #[test]
    fn host_ecu_is_recorded() {
        assert_eq!(firmware_asset().host_ecu(), Some("ECM"));
        assert_eq!(Asset::new("x", AssetCategory::Function).host_ecu(), None);
    }

    #[test]
    fn display_includes_host() {
        assert_eq!(firmware_asset().to_string(), "ECM firmware @ ECM");
        assert_eq!(
            Asset::new("VIN", AssetCategory::PersonalData).to_string(),
            "VIN"
        );
    }

    #[test]
    fn all_properties_distinct() {
        let set: std::collections::HashSet<_> = CybersecurityProperty::ALL.iter().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn serde_round_trip() {
        let asset = firmware_asset();
        let json = serde_json::to_string(&asset).unwrap();
        assert_eq!(asset, serde_json::from_str(&json).unwrap());
    }

    #[test]
    fn description_defaults_empty() {
        assert_eq!(Asset::new("x", AssetCategory::Hardware).description(), "");
    }
}
