//! Cybersecurity controls and residual-risk estimation.
//!
//! The paper closes its financial example with a design directive: "the development
//! team should create a secure anti-tampering DPF architecture to ensure product
//! security that can withstand an adversary's investment of up to 145 286 EUR".
//! This module gives that directive a data model: a catalogue of controls, each
//! with an implementation cost, the attack vectors it mitigates, the adversary
//! investment it is expected to withstand (its *resistance budget*), and the
//! feasibility reduction it buys.  A [`ControlPlan`] selects controls for a
//! cybersecurity goal and reports the residual feasibility and whether the combined
//! resistance meets a required investment bound.

use crate::feasibility::AttackFeasibilityRating;
use serde::{Deserialize, Serialize};
use std::fmt;
use vehicle::attack_surface::AttackVector;

/// A cybersecurity control (technical or organisational).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Control {
    /// Control name (e.g. "authenticated diagnostics / UDS 0x29").
    pub name: String,
    /// Implementation cost to the OEM / supplier, in EUR.
    pub implementation_cost_eur: f64,
    /// Attack vectors the control mitigates.
    pub mitigates: Vec<AttackVector>,
    /// The adversary investment (EUR) the control is designed to withstand.
    pub resistance_budget_eur: f64,
    /// How many feasibility levels the control removes from a mitigated vector
    /// (1 = one step down the High→Medium→Low→Very Low ladder).
    pub feasibility_reduction: u8,
}

impl Control {
    /// Creates a control.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        implementation_cost_eur: f64,
        mitigates: Vec<AttackVector>,
        resistance_budget_eur: f64,
        feasibility_reduction: u8,
    ) -> Self {
        Self {
            name: name.into(),
            implementation_cost_eur,
            mitigates,
            resistance_budget_eur,
            feasibility_reduction,
        }
    }

    /// Whether the control mitigates the given vector.
    #[must_use]
    pub fn mitigates_vector(&self, vector: AttackVector) -> bool {
        self.mitigates.contains(&vector)
    }
}

impl fmt::Display for Control {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (cost {:.0} EUR, withstands {:.0} EUR)",
            self.name, self.implementation_cost_eur, self.resistance_budget_eur
        )
    }
}

/// A reference catalogue of anti-tampering controls for powertrain /
/// after-treatment items, sized from public engineering practice.
#[must_use]
pub fn anti_tampering_catalogue() -> Vec<Control> {
    vec![
        Control::new(
            "Secure boot with hardware root of trust",
            180_000.0,
            vec![AttackVector::Physical, AttackVector::Local],
            250_000.0,
            2,
        ),
        Control::new(
            "Authenticated diagnostics (UDS service 0x29)",
            60_000.0,
            vec![AttackVector::Local],
            90_000.0,
            1,
        ),
        Control::new(
            "Signed calibration with anti-rollback counters",
            75_000.0,
            vec![AttackVector::Local, AttackVector::Physical],
            120_000.0,
            1,
        ),
        Control::new(
            "ECU-to-vehicle pairing (component protection)",
            50_000.0,
            vec![AttackVector::Physical],
            80_000.0,
            1,
        ),
        Control::new(
            "CAN intrusion detection with limp-home reaction",
            90_000.0,
            vec![AttackVector::Local, AttackVector::Adjacent],
            60_000.0,
            1,
        ),
        Control::new(
            "Hardened telematics stack and FOTA signing",
            140_000.0,
            vec![AttackVector::Network, AttackVector::Adjacent],
            200_000.0,
            2,
        ),
    ]
}

/// A selected set of controls for one cybersecurity goal.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ControlPlan {
    controls: Vec<Control>,
}

impl ControlPlan {
    /// Creates an empty plan.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a control.
    #[must_use]
    pub fn with_control(mut self, control: Control) -> Self {
        self.controls.push(control);
        self
    }

    /// The selected controls.
    #[must_use]
    pub fn controls(&self) -> &[Control] {
        &self.controls
    }

    /// Total implementation cost.
    #[must_use]
    pub fn total_cost(&self) -> f64 {
        self.controls
            .iter()
            .map(|c| c.implementation_cost_eur)
            .sum()
    }

    /// The combined resistance budget against attacks using the given vector
    /// (controls that do not mitigate the vector contribute nothing).
    #[must_use]
    pub fn resistance_for(&self, vector: AttackVector) -> f64 {
        self.controls
            .iter()
            .filter(|c| c.mitigates_vector(vector))
            .map(|c| c.resistance_budget_eur)
            .sum()
    }

    /// Whether the plan withstands an adversary investment bound (e.g. the FC of
    /// the PSP financial model) on the given vector.
    #[must_use]
    pub fn withstands(&self, vector: AttackVector, adversary_investment_eur: f64) -> bool {
        self.resistance_for(vector) >= adversary_investment_eur
    }

    /// The residual feasibility after applying the plan to an initial rating for
    /// attacks using the given vector: each mitigating control steps the rating
    /// down by its `feasibility_reduction`, saturating at Very Low.
    #[must_use]
    pub fn residual_feasibility(
        &self,
        vector: AttackVector,
        initial: AttackFeasibilityRating,
    ) -> AttackFeasibilityRating {
        let reduction: u8 = self
            .controls
            .iter()
            .filter(|c| c.mitigates_vector(vector))
            .map(|c| c.feasibility_reduction)
            .sum();
        AttackFeasibilityRating::from_value(initial.value().saturating_sub(reduction))
    }

    /// Greedily selects controls from a catalogue until the required resistance for
    /// the given vector is reached, preferring the cheapest resistance first.
    /// Returns `None` if the catalogue cannot reach the requirement.
    #[must_use]
    pub fn select_for(
        catalogue: &[Control],
        vector: AttackVector,
        required_resistance_eur: f64,
    ) -> Option<Self> {
        let mut candidates: Vec<&Control> = catalogue
            .iter()
            .filter(|c| c.mitigates_vector(vector) && c.resistance_budget_eur > 0.0)
            .collect();
        candidates.sort_by(|a, b| {
            let ra = a.implementation_cost_eur / a.resistance_budget_eur;
            let rb = b.implementation_cost_eur / b.resistance_budget_eur;
            ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut plan = ControlPlan::new();
        for control in candidates {
            if plan.resistance_for(vector) >= required_resistance_eur {
                break;
            }
            plan = plan.with_control(control.clone());
        }
        if plan.resistance_for(vector) >= required_resistance_eur {
            Some(plan)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_plausible() {
        let catalogue = anti_tampering_catalogue();
        assert_eq!(catalogue.len(), 6);
        assert!(catalogue.iter().all(|c| c.implementation_cost_eur > 0.0));
        assert!(catalogue.iter().all(|c| !c.mitigates.is_empty()));
    }

    #[test]
    fn resistance_accumulates_per_vector() {
        let plan = ControlPlan::new()
            .with_control(anti_tampering_catalogue()[0].clone()) // secure boot
            .with_control(anti_tampering_catalogue()[1].clone()); // authenticated diag
        assert!(plan.resistance_for(AttackVector::Local) >= 340_000.0 - 1e-9);
        assert!(plan.resistance_for(AttackVector::Physical) >= 250_000.0 - 1e-9);
        assert_eq!(plan.resistance_for(AttackVector::Network), 0.0);
        assert!(plan.total_cost() > 0.0);
    }

    #[test]
    fn paper_investment_bound_can_be_met_for_local_attacks() {
        // The paper's DPF example: the architecture must withstand ~145 286 EUR of
        // adversary investment; the attack is local (OBD / service tool).
        let plan =
            ControlPlan::select_for(&anti_tampering_catalogue(), AttackVector::Local, 145_286.0)
                .expect("catalogue suffices");
        assert!(plan.withstands(AttackVector::Local, 145_286.0));
        assert!(!plan.controls().is_empty());
    }

    #[test]
    fn unreachable_requirement_returns_none() {
        let plan = ControlPlan::select_for(
            &anti_tampering_catalogue(),
            AttackVector::Network,
            10_000_000.0,
        );
        assert!(plan.is_none());
    }

    #[test]
    fn residual_feasibility_saturates_at_very_low() {
        let plan = ControlPlan::new()
            .with_control(anti_tampering_catalogue()[0].clone())
            .with_control(anti_tampering_catalogue()[2].clone());
        let residual =
            plan.residual_feasibility(AttackVector::Physical, AttackFeasibilityRating::High);
        assert_eq!(residual, AttackFeasibilityRating::VeryLow);
        // Vectors the plan does not cover keep their initial rating.
        assert_eq!(
            plan.residual_feasibility(AttackVector::Network, AttackFeasibilityRating::Medium),
            AttackFeasibilityRating::Medium
        );
    }

    #[test]
    fn selection_prefers_cost_effective_controls() {
        let plan =
            ControlPlan::select_for(&anti_tampering_catalogue(), AttackVector::Local, 50_000.0)
                .unwrap();
        // A small requirement should not drag in the whole catalogue.
        assert!(plan.controls().len() <= 2);
    }

    #[test]
    fn display_mentions_cost_and_resistance() {
        let c = &anti_tampering_catalogue()[1];
        let s = c.to_string();
        assert!(s.contains("cost"));
        assert!(s.contains("withstands"));
    }
}
