//! Attack paths and attack steps (ISO/SAE-21434 Clause 15.6).
//!
//! An attack path is the ordered sequence of steps an attacker performs to realise
//! a threat scenario.  Each step carries the attack vector it uses; the path as a
//! whole is characterised by its *limiting* vector (the most local access any step
//! requires) because that is what the attack-vector-based feasibility model rates.

use serde::{Deserialize, Serialize};
use std::fmt;
use vehicle::attack_surface::AttackVector;

/// One step of an attack path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackStep {
    description: String,
    vector: AttackVector,
}

impl AttackStep {
    /// Creates a step.
    #[must_use]
    pub fn new(description: impl Into<String>, vector: AttackVector) -> Self {
        Self {
            description: description.into(),
            vector,
        }
    }

    /// The step description.
    #[must_use]
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The attack vector used by the step.
    #[must_use]
    pub fn vector(&self) -> AttackVector {
        self.vector
    }
}

impl fmt::Display for AttackStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.vector, self.description)
    }
}

/// An ordered attack path realising a threat scenario.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackPath {
    name: String,
    steps: Vec<AttackStep>,
}

impl AttackPath {
    /// Creates an empty attack path.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            steps: Vec::new(),
        }
    }

    /// Appends a step.
    #[must_use]
    pub fn then(mut self, step: AttackStep) -> Self {
        self.steps.push(step);
        self
    }

    /// Convenience: appends a step built from its parts.
    #[must_use]
    pub fn step(self, description: impl Into<String>, vector: AttackVector) -> Self {
        self.then(AttackStep::new(description, vector))
    }

    /// The path name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered steps.
    #[must_use]
    pub fn steps(&self) -> &[AttackStep] {
        &self.steps
    }

    /// Whether the path has no steps.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// The *entry* vector: the vector of the first step (how the attacker first
    /// touches the item).
    #[must_use]
    pub fn entry_vector(&self) -> Option<AttackVector> {
        self.steps.first().map(AttackStep::vector)
    }

    /// The *limiting* vector: the most local (highest-ordinal) access any step of
    /// the path requires.  This is the vector the attack-vector-based feasibility
    /// model rates, because the attacker must satisfy every step's access need.
    #[must_use]
    pub fn limiting_vector(&self) -> Option<AttackVector> {
        self.steps.iter().map(AttackStep::vector).max()
    }
}

impl fmt::Display for AttackPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} steps)", self.name, self.steps.len())
    }
}

impl Extend<AttackStep> for AttackPath {
    fn extend<T: IntoIterator<Item = AttackStep>>(&mut self, iter: T) {
        self.steps.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obd_reflash_path() -> AttackPath {
        AttackPath::new("OBD reflash")
            .step(
                "connect J2534 pass-thru tool to OBD port",
                AttackVector::Local,
            )
            .step(
                "unlock programming session via seed-key brute force",
                AttackVector::Local,
            )
            .step("flash modified calibration", AttackVector::Local)
    }

    fn remote_then_physical_path() -> AttackPath {
        AttackPath::new("remote foothold, physical finish")
            .step(
                "compromise telematics unit over cellular",
                AttackVector::Network,
            )
            .step("pivot to powertrain CAN via gateway", AttackVector::Network)
            .step(
                "solder bypass wire on the ECM board",
                AttackVector::Physical,
            )
    }

    #[test]
    fn empty_path_has_no_vectors() {
        let p = AttackPath::new("empty");
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.entry_vector(), None);
        assert_eq!(p.limiting_vector(), None);
    }

    #[test]
    fn entry_vector_is_first_step() {
        assert_eq!(obd_reflash_path().entry_vector(), Some(AttackVector::Local));
        assert_eq!(
            remote_then_physical_path().entry_vector(),
            Some(AttackVector::Network)
        );
    }

    #[test]
    fn limiting_vector_is_most_local_step() {
        assert_eq!(
            obd_reflash_path().limiting_vector(),
            Some(AttackVector::Local)
        );
        assert_eq!(
            remote_then_physical_path().limiting_vector(),
            Some(AttackVector::Physical)
        );
    }

    #[test]
    fn step_display_contains_vector() {
        let s = AttackStep::new("flash", AttackVector::Local).to_string();
        assert!(s.contains("Local"));
        assert!(s.contains("flash"));
    }

    #[test]
    fn extend_appends_steps() {
        let mut p = AttackPath::new("ext");
        p.extend(vec![
            AttackStep::new("a", AttackVector::Adjacent),
            AttackStep::new("b", AttackVector::Local),
        ]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.limiting_vector(), Some(AttackVector::Local));
    }

    #[test]
    fn serde_round_trip() {
        let p = obd_reflash_path();
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(p, serde_json::from_str(&json).unwrap());
    }

    #[test]
    fn display_counts_steps() {
        assert_eq!(obd_reflash_path().to_string(), "OBD reflash (3 steps)");
    }
}
