//! The end-to-end PSP workflow (paper Figure 7, blocks 1–12).
//!
//! One [`PspWorkflow::run`] call performs, in order:
//!
//! 1. take the target-application input from the configuration (block 1),
//! 2. query the social corpus with the attack-keyword database and compute the
//!    Social Attraction Index list (blocks 2–4, 6),
//! 3. run the keyword auto-learning pass so the next run starts from a richer
//!    database (block 5),
//! 4. estimate attack probabilities and split the list into insider and outsider
//!    entries (blocks 7–9),
//! 5. generate the updated attack-feasibility weight tables: the standard G.9
//!    table for outsider threats, a socially tuned table per insider threat
//!    scenario (blocks 10–12).

use crate::classify::AttackOrigin;
use crate::config::PspConfig;
use crate::engine::ScoringEngine;
use crate::keyword_db::KeywordDatabase;
use crate::learning::{learn_keywords, LearningOutcome};
use crate::sai::SaiList;
use crate::weights::{WeightGenerator, WeightMapping};
use iso21434::feasibility::attack_vector::AttackVectorTable;
use serde::{Deserialize, Serialize};
use socialsim::corpus::Corpus;
use std::collections::BTreeMap;

/// The outcome of one PSP run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PspOutcome {
    /// The configuration the run used.
    pub config: PspConfig,
    /// The computed SAI list.
    pub sai: SaiList,
    /// The keyword database after the learning pass.
    pub database: KeywordDatabase,
    /// Keywords learned during this run, with their seed keyword.
    pub learned_keywords: Vec<(String, String)>,
    /// The untouched table applied to outsider threats (Figure 8-A).
    pub outsider_table: AttackVectorTable,
    /// One tuned table per insider threat scenario (Figure 8-B).
    pub insider_tables: BTreeMap<String, AttackVectorTable>,
}

impl PspOutcome {
    /// The tuned table for an insider scenario, if it exists.
    #[must_use]
    pub fn insider_table(&self, scenario: &str) -> Option<&AttackVectorTable> {
        self.insider_tables.get(scenario)
    }

    /// The scenarios for which a tuned table was generated.
    #[must_use]
    pub fn insider_scenarios(&self) -> Vec<&str> {
        self.insider_tables.keys().map(String::as_str).collect()
    }

    /// Number of keywords learned in this run.
    #[must_use]
    pub fn learned_count(&self) -> usize {
        self.learned_keywords.len()
    }
}

/// The PSP workflow runner.
#[derive(Debug, Clone)]
pub struct PspWorkflow {
    config: PspConfig,
    database: KeywordDatabase,
    mapping: WeightMapping,
}

impl PspWorkflow {
    /// Creates a workflow from a configuration and a (seed) keyword database.
    #[must_use]
    pub fn new(config: PspConfig, database: KeywordDatabase) -> Self {
        Self {
            config,
            database,
            mapping: WeightMapping::RankBased,
        }
    }

    /// Overrides the share → rating mapping (used by the ablation bench).
    #[must_use]
    pub fn with_mapping(mut self, mapping: WeightMapping) -> Self {
        self.mapping = mapping;
        self
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &PspConfig {
        &self.config
    }

    /// Runs the workflow on a corpus.
    ///
    /// Builds a [`ScoringEngine`] for the corpus and delegates to
    /// [`run_with_engine`](Self::run_with_engine); callers that run several
    /// workflows against the same corpus should build the engine once
    /// themselves.
    #[must_use]
    pub fn run(&self, corpus: &Corpus) -> PspOutcome {
        self.run_with_engine(&ScoringEngine::new(corpus))
    }

    /// Runs the workflow against a prebuilt scoring engine (and its corpus).
    #[must_use]
    pub fn run_with_engine(&self, engine: &ScoringEngine<'_>) -> PspOutcome {
        let corpus = engine.corpus();
        let mut database = self.database.clone();

        // Block 5: keyword auto-learning (before scoring, so newly learned tags
        // contribute evidence to this run as well as future ones).
        let learning = if self.config.keyword_learning {
            learn_keywords(&mut database, corpus, self.config.learning_min_support)
        } else {
            LearningOutcome {
                learned: Vec::new(),
            }
        };

        // Blocks 2, 6, 7: SAI computation with probability estimation, one
        // indexed pass fanned out over keyword profiles.
        let sai = engine.sai_list(&database, &self.config);

        // Blocks 8–12: insider/outsider split and weight-table generation.
        let generator = WeightGenerator::with_mapping(self.mapping);
        let mut insider_tables = BTreeMap::new();
        let insider_scenarios: std::collections::BTreeSet<String> = database
            .iter()
            .filter(|p| p.origin == AttackOrigin::Insider)
            .map(|p| p.scenario.clone())
            .collect();
        for scenario in insider_scenarios {
            let table = generator.insider_table(&sai, &scenario);
            insider_tables.insert(scenario, table);
        }

        PspOutcome {
            config: self.config.clone(),
            sai,
            database,
            learned_keywords: learning.learned,
            outsider_table: generator.outsider_table(),
            insider_tables,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iso21434::feasibility::AttackFeasibilityRating;
    use socialsim::scenario;
    use socialsim::time::DateWindow;
    use vehicle::attack_surface::AttackVector;

    fn run_passenger(window: Option<DateWindow>) -> PspOutcome {
        let corpus = scenario::passenger_car_europe(42);
        let mut config = PspConfig::passenger_car_europe();
        if let Some(w) = window {
            config = config.with_window(w);
        }
        PspWorkflow::new(config, KeywordDatabase::passenger_car_seed()).run(&corpus)
    }

    #[test]
    fn outcome_contains_tables_for_every_insider_scenario() {
        let outcome = run_passenger(None);
        let scenarios = outcome.insider_scenarios();
        assert!(scenarios.contains(&"ecm-reprogramming"));
        assert!(scenarios.contains(&"emission-defeat"));
        assert!(
            !scenarios.contains(&"vehicle-theft"),
            "outsider scenarios are not tuned"
        );
    }

    #[test]
    fn outsider_table_stays_standard() {
        let outcome = run_passenger(None);
        assert!(outcome
            .outsider_table
            .same_ratings_as(&AttackVectorTable::standard()));
    }

    #[test]
    fn figure_8b_and_9b_all_time_run() {
        let outcome = run_passenger(None);
        let table = outcome.insider_table("ecm-reprogramming").unwrap();
        assert_eq!(
            table.rating(AttackVector::Physical),
            AttackFeasibilityRating::High
        );
    }

    #[test]
    fn figure_9c_recent_window_run() {
        let outcome = run_passenger(Some(DateWindow::years(2021, 2023)));
        let table = outcome.insider_table("ecm-reprogramming").unwrap();
        assert_eq!(
            table.rating(AttackVector::Local),
            AttackFeasibilityRating::High
        );
    }

    #[test]
    fn learning_can_be_disabled() {
        let corpus = scenario::passenger_car_europe(42);
        let outcome = PspWorkflow::new(
            PspConfig::passenger_car_europe().with_learning(false),
            KeywordDatabase::passenger_car_seed(),
        )
        .run(&corpus);
        assert_eq!(outcome.learned_count(), 0);
        assert_eq!(outcome.database.learned_count(), 0);
    }

    #[test]
    fn learning_grows_the_database_when_enabled() {
        let outcome = run_passenger(None);
        assert_eq!(outcome.database.learned_count(), outcome.learned_count());
        // The scene's secondary hashtags (bootmode, ecuclone, stage1, …) are already
        // seeded, so learning may add few or zero keywords; the database must in any
        // case contain at least the seed.
        assert!(outcome.database.len() >= KeywordDatabase::passenger_car_seed().len());
    }

    #[test]
    fn workflow_is_deterministic() {
        let a = run_passenger(None);
        let b = run_passenger(None);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_corpus_still_produces_standard_tables() {
        let outcome = PspWorkflow::new(
            PspConfig::excavator_europe(),
            KeywordDatabase::excavator_seed(),
        )
        .run(&Corpus::new());
        for scenario in outcome.insider_scenarios() {
            assert!(outcome
                .insider_table(scenario)
                .unwrap()
                .same_ratings_as(&AttackVectorTable::standard()));
        }
    }

    #[test]
    fn mapping_override_is_used() {
        let corpus = scenario::passenger_car_europe(42);
        let rank = PspWorkflow::new(
            PspConfig::passenger_car_europe(),
            KeywordDatabase::passenger_car_seed(),
        )
        .run(&corpus);
        let prop = PspWorkflow::new(
            PspConfig::passenger_car_europe(),
            KeywordDatabase::passenger_car_seed(),
        )
        .with_mapping(WeightMapping::Proportional)
        .run(&corpus);
        let rank_table = rank.insider_table("emission-defeat").unwrap();
        let prop_table = prop.insider_table("emission-defeat").unwrap();
        assert!(!rank_table.same_ratings_as(prop_table));
    }
}
