//! Generation of updated attack-vector weight tables (paper Figure 7, blocks 10–12
//! and Figures 8-B / 9-B / 9-C).
//!
//! For outsider threats PSP keeps the standard G.9 weights untouched
//! (paper Figure 8-A).  For insider threats it derives corrective factors from the
//! SAI: the share of social evidence attached to each attack vector re-ranks the
//! vector → rating mapping.  Two mappings are provided:
//!
//! * [`WeightMapping::RankBased`] (default) — vectors are sorted by their SAI share
//!   and assigned High / Medium / Low / Very Low in that order, which is exactly the
//!   "priority change" presentation of Figure 8-B;
//! * [`WeightMapping::Proportional`] — the rating is chosen from the share value
//!   itself (≥ 0.4 High, ≥ 0.2 Medium, > 0.05 Low, else Very Low), which keeps ties
//!   when the evidence is spread evenly.  The difference between the two is the
//!   subject of the `weights_ablation` bench.

use crate::sai::SaiList;
use iso21434::feasibility::attack_vector::AttackVectorTable;
use iso21434::feasibility::AttackFeasibilityRating;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vehicle::attack_surface::AttackVector;

/// How SAI shares are mapped onto feasibility ratings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WeightMapping {
    /// Sort vectors by SAI share and assign High, Medium, Low, Very Low by rank.
    #[default]
    RankBased,
    /// Threshold the share directly (≥ 0.4 High, ≥ 0.2 Medium, > 0.05 Low).
    Proportional,
}

/// The weight-table generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WeightGenerator {
    mapping: WeightMapping,
}

impl WeightGenerator {
    /// Creates a generator with the default (rank-based) mapping.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a generator with an explicit mapping.
    #[must_use]
    pub fn with_mapping(mapping: WeightMapping) -> Self {
        Self { mapping }
    }

    /// The mapping in use.
    #[must_use]
    pub fn mapping(&self) -> WeightMapping {
        self.mapping
    }

    /// The table PSP uses for outsider threats: the untouched standard G.9 table
    /// (paper Figure 8-A).
    #[must_use]
    pub fn outsider_table(&self) -> AttackVectorTable {
        AttackVectorTable::standard()
    }

    /// Generates the insider table for one threat scenario from the SAI evidence.
    /// Falls back to the standard table when the scenario has no evidence at all
    /// (no data means no justification for deviating from the standard).
    #[must_use]
    pub fn insider_table(&self, sai: &SaiList, scenario: &str) -> AttackVectorTable {
        let shares = sai.vector_shares(scenario);
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        if total <= 0.0 {
            return AttackVectorTable::standard();
        }
        let ratings = match self.mapping {
            WeightMapping::RankBased => rank_based(&shares),
            WeightMapping::Proportional => proportional(&shares),
        };
        let name = format!("PSP insider table ({scenario})");
        AttackVectorTable::custom(name, ratings)
            .expect("generated mapping always covers all four vectors")
    }

    /// Convenience: the corrective factors themselves (vector → share), useful for
    /// reporting next to the generated table.
    #[must_use]
    pub fn corrective_factors(&self, sai: &SaiList, scenario: &str) -> Vec<(AttackVector, f64)> {
        sai.vector_shares(scenario)
    }
}

fn rank_based(shares: &[(AttackVector, f64)]) -> BTreeMap<AttackVector, AttackFeasibilityRating> {
    let mut sorted: Vec<(AttackVector, f64)> = shares.to_vec();
    // Highest share first; ties keep the standard remote-to-local priority so a
    // scenario with no evidence for two vectors degrades gracefully.
    sorted.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    let ladder = [
        AttackFeasibilityRating::High,
        AttackFeasibilityRating::Medium,
        AttackFeasibilityRating::Low,
        AttackFeasibilityRating::VeryLow,
    ];
    sorted
        .into_iter()
        .zip(ladder)
        .map(|((vector, _), rating)| (vector, rating))
        .collect()
}

fn proportional(shares: &[(AttackVector, f64)]) -> BTreeMap<AttackVector, AttackFeasibilityRating> {
    shares
        .iter()
        .map(|(vector, share)| {
            let rating = if *share >= 0.4 {
                AttackFeasibilityRating::High
            } else if *share >= 0.2 {
                AttackFeasibilityRating::Medium
            } else if *share > 0.05 {
                AttackFeasibilityRating::Low
            } else {
                AttackFeasibilityRating::VeryLow
            };
            (*vector, rating)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PspConfig;
    use crate::keyword_db::KeywordDatabase;
    use socialsim::scenario;
    use socialsim::time::DateWindow;

    fn all_time_sai() -> SaiList {
        SaiList::compute(
            &scenario::passenger_car_europe(42),
            &KeywordDatabase::passenger_car_seed(),
            &PspConfig::passenger_car_europe(),
        )
    }

    fn recent_sai() -> SaiList {
        SaiList::compute(
            &scenario::passenger_car_europe(42),
            &KeywordDatabase::passenger_car_seed(),
            &PspConfig::passenger_car_europe().with_window(DateWindow::years(2021, 2023)),
        )
    }

    #[test]
    fn outsider_table_is_the_standard_g9() {
        let generator = WeightGenerator::new();
        assert!(generator
            .outsider_table()
            .same_ratings_as(&AttackVectorTable::standard()));
    }

    #[test]
    fn figure_8b_physical_tops_the_all_time_insider_table() {
        let generator = WeightGenerator::new();
        let table = generator.insider_table(&all_time_sai(), "ecm-reprogramming");
        assert_eq!(
            table.rating(AttackVector::Physical),
            AttackFeasibilityRating::High
        );
        assert_eq!(table.ranking()[0], AttackVector::Physical);
        assert!(!table.same_ratings_as(&AttackVectorTable::standard()));
    }

    #[test]
    fn figure_9c_local_tops_the_recent_window_table() {
        let generator = WeightGenerator::new();
        let table = generator.insider_table(&recent_sai(), "ecm-reprogramming");
        assert_eq!(
            table.rating(AttackVector::Local),
            AttackFeasibilityRating::High
        );
        assert_eq!(table.ranking()[0], AttackVector::Local);
    }

    #[test]
    fn unknown_scenario_falls_back_to_standard() {
        let generator = WeightGenerator::new();
        let table = generator.insider_table(&all_time_sai(), "no-such-scenario");
        assert!(table.same_ratings_as(&AttackVectorTable::standard()));
    }

    #[test]
    fn proportional_mapping_differs_from_rank_based_when_evidence_is_concentrated() {
        let sai = all_time_sai();
        let rank = WeightGenerator::new().insider_table(&sai, "emission-defeat");
        let prop = WeightGenerator::with_mapping(WeightMapping::Proportional)
            .insider_table(&sai, "emission-defeat");
        // All emission-defeat evidence is Local, so the proportional mapping keeps
        // the other vectors at Very Low while the rank-based mapping still hands
        // out Medium and Low by rank.
        assert_eq!(
            prop.rating(AttackVector::Local),
            AttackFeasibilityRating::High
        );
        assert_eq!(
            prop.rating(AttackVector::Physical),
            AttackFeasibilityRating::VeryLow
        );
        assert_eq!(
            rank.rating(AttackVector::Local),
            AttackFeasibilityRating::High
        );
        assert_ne!(
            rank.rating(AttackVector::Network),
            prop.rating(AttackVector::Network)
        );
    }

    #[test]
    fn corrective_factors_expose_the_shares() {
        let generator = WeightGenerator::new();
        let factors = generator.corrective_factors(&all_time_sai(), "ecm-reprogramming");
        let physical = factors
            .iter()
            .find(|(v, _)| *v == AttackVector::Physical)
            .unwrap()
            .1;
        let local = factors
            .iter()
            .find(|(v, _)| *v == AttackVector::Local)
            .unwrap()
            .1;
        assert!(physical > local, "all-time physical share must dominate");
    }

    #[test]
    fn generated_tables_always_cover_all_vectors() {
        let generator = WeightGenerator::new();
        let table = generator.insider_table(&all_time_sai(), "ecm-reprogramming");
        assert_eq!(table.rows().count(), 4);
    }

    #[test]
    fn mapping_accessor() {
        assert_eq!(WeightGenerator::new().mapping(), WeightMapping::RankBased);
        assert_eq!(
            WeightGenerator::with_mapping(WeightMapping::Proportional).mapping(),
            WeightMapping::Proportional
        );
    }
}
